//! Event-driven simulator engine: identical cycle semantics to
//! [`crate::reference`], minus the time spent simulating cycles in which
//! provably nothing can happen — and minus the iterations after the
//! machine state starts repeating.
//!
//! Four mechanisms, all exact:
//!
//! 1. **Event clock.** After processing a cycle the engine computes the
//!    earliest future cycle on which any phase could make progress — the
//!    head of the window completing (unblocks retirement and ROB space),
//!    dispatch fitting again, or the nearest pending-µ-op wake-up (see
//!    below) — and jumps `now` straight there. Every cycle the naive
//!    engine would have processed in between is a no-op by construction:
//!    retirement is blocked on the same head, dispatch on the same
//!    resource, and no pending µ-op is both ready and able to win a port
//!    any earlier (a failed same-cycle arbitration retry is covered by
//!    the `now + 1` floor on every candidate).
//! 2. **Wake-up queue.** Every pending window entry carries a *lower
//!    bound* on its next possible issue cycle ([`InFlight::earliest`]),
//!    derived only from monotone quantities — recorded producer issue
//!    times, unissued producers' own bounds (producers are older, so
//!    their bound is final when the consumer is examined), and the busy
//!    horizons of the eligible ports — and mirrored as exactly one
//!    `(earliest, key)` record in a min-heap. The issue phase examines
//!    only the entries whose record fell due (oldest first), re-arming
//!    each failure at its new bound. Because a true lower bound can be
//!    loose but never late, a wake-up can cost a no-op examination but
//!    can never delay a real issue: outcomes are untouched, only the
//!    cycles that re-examine an entry change.
//! 3. **Steady-state early exit.** At the end of any cycle in which an
//!    iteration retired, the engine fingerprints the machine state
//!    *relative to `now` and the retired-iteration count*, quotiented by
//!    future-equivalence: coordinates that can no longer influence any
//!    future phase (busy horizons and completions already due, issue
//!    times mature for even the heaviest edge, the behaviourally dead
//!    `issue_last`) are clamped to their equivalence class so stale
//!    history cannot delay a match. If the fingerprint matches an
//!    earlier sample, the execution is periodic — the future repeats the
//!    recorded past shifted by (Δ iterations, Δ cycles) — so the cycle of
//!    the final retirement follows by integer arithmetic, not simulation.
//!    The closed-form extrapolation through the drain is gated to
//!    schedules where it is provably exact: no port-blocking µ-ops
//!    (`occupancy > 1` lets a *younger* instruction delay an *older* one,
//!    so the post-dispatch drain need not stay periodic). Kernels with
//!    blocking µ-ops instead *teleport* — the whole machine state is
//!    advanced a whole number of periods, which is exact while dispatch
//!    continues — and then simulate the drain for real. The warm-up
//!    boundary needs no gate: if it has not been reached yet, its retire
//!    cycle and issued-µop count are extrapolated with the same integer
//!    arithmetic, from the per-iteration history recorded up to the
//!    match.
//! 4. **Scratch arena.** Every buffer lives in [`SimScratch`]: the issue
//!    matrix is one flat `Vec<u64>`, dependence edges are a CSR built
//!    with a counting sort, and per-instance µ-op state is a 64-bit mask
//!    in [`InFlight`] instead of a heap `Vec` — the untraced path does no
//!    per-instruction allocation at all. Back-to-back `simulate()` calls
//!    reuse everything.

use crate::{RawOutcome, SimConfig, SimResult, TraceEvent};
use incore::depgraph::DepGraph;
use uarch::{InstrClass, InstrDesc, Machine};

/// Sentinel for "not yet issued" in the flat issue matrix and in
/// [`InFlight::issue_done`] / [`InFlight::completion`].
const NONE: u64 = u64::MAX;

/// Fingerprint samples kept live, as a ring: periods on this core are
/// tiny (a handful of retire cycles), so once the schedule is periodic
/// the matching sample is always recent. Pre-steady samples (taken while
/// the out-of-order window is still filling) rotate out harmlessly.
const SAMPLE_WINDOW: usize = 64;

/// Total fingerprints taken before giving up on steady-state detection —
/// a backstop so genuinely aperiodic schedules (e.g. the monotone
/// ROB-slot leak of eliminated instructions) stop paying for sampling.
const SAMPLE_BUDGET: usize = 768;

/// Per-instruction-instance bookkeeping. µ-op issue state is an inline
/// bitmask + two cycle numbers, so the untraced path never allocates per
/// instance (instructions wider than 64 µ-ops fall back to the reference
/// engine before we get here).
#[derive(Debug, Clone, Copy)]
struct InFlight {
    iter: usize,
    idx: usize,
    /// Cycle at which the instruction was dispatched.
    dispatched: u64,
    /// Bit `ui` set ⇔ µ-op `ui` has issued.
    issued_mask: u64,
    /// Latest µ-op issue cycle so far (meaningful once `issued_mask != 0`).
    issue_last: u64,
    /// Cycle at which the last µ-op issued; [`NONE`] until fully issued.
    issue_done: u64,
    /// Cycle at which the instruction may retire; [`NONE`] until known.
    completion: u64,
    /// Lower bound on the next cycle this entry could issue a µ-op — a
    /// pure cache (never affects outcomes, only which cycles re-examine
    /// the entry). Maintained from monotone quantities only: recorded
    /// producer issue times, producers' own bounds, port busy horizons,
    /// and `now + 1` after a failed attempt.
    earliest: u64,
}

/// Reusable simulation buffers. One instance per worker thread (or one
/// per caller, via [`crate::simulate_with_scratch`]) amortizes every
/// allocation the simulator needs across an arbitrary number of runs on
/// arbitrary kernels and machines.
#[derive(Debug, Default)]
pub struct SimScratch {
    /// CSR row offsets into `in_edges`: incoming edges of instruction
    /// `i` are `in_edges[in_start[i]..in_start[i + 1]]`.
    in_start: Vec<usize>,
    /// Cursor scratch for the counting sort that fills `in_edges`.
    in_cursor: Vec<usize>,
    /// `(from, weight, wrap)` incoming dependence edges, grouped by `to`.
    in_edges: Vec<(usize, f64, bool)>,
    /// Flat `[iter][idx]` issue matrix; [`NONE`] = not yet issued.
    issue_done: Vec<u64>,
    /// Per-port busy horizon (`port_busy[p] > now` ⇔ blocked).
    port_busy: Vec<u64>,
    /// Per-port "already granted this cycle" flags.
    port_taken: Vec<bool>,
    /// In-flight window (entries before `retire_head` already retired).
    window: Vec<InFlight>,
    /// Cycle on which iteration `i` retired (filled as the run proceeds).
    retire_cycle: Vec<u64>,
    /// `issued_uops_total` at the retire event of iteration `i` — the
    /// basis for extrapolating `warmup_issued` across an early exit.
    retire_issued: Vec<u64>,
    /// Wake-up queue: one `(earliest, iter * n + idx)` record per pending
    /// (dispatched, not fully issued) window entry. The issue phase pops
    /// the records due this cycle; a failed examination re-arms the entry
    /// at its new bound. `next_event` reads the next issue candidate off
    /// the top instead of scanning the window.
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
    /// Keys popped from `heap` this cycle, sorted back to window order.
    wake: Vec<usize>,
    /// Fingerprint under construction.
    fp: Vec<i64>,
    /// Recorded fingerprints: `(hash, retired_iters, now, state)`.
    samples: Vec<(u64, usize, u64, Vec<i64>)>,
    /// Retired snapshot buffers, recycled across runs.
    snap_pool: Vec<Vec<i64>>,
}

pub(crate) fn simulate(
    machine: &Machine,
    cfg: SimConfig,
    descs: &[InstrDesc],
    graph: &DepGraph,
    s: &mut SimScratch,
    mut trace: Option<(&mut Vec<TraceEvent>, usize)>,
) -> SimResult {
    let n = descs.len();
    let total_iters = cfg.warmup + cfg.iterations;
    let np = machine.port_model.num_ports();

    // --- (Re)initialize the arena: resize + overwrite, no steady-state
    // allocations once the buffers have grown to working size.
    s.in_start.clear();
    s.in_start.resize(n + 1, 0);
    for e in &graph.edges {
        s.in_start[e.to + 1] += 1;
    }
    for i in 0..n {
        s.in_start[i + 1] += s.in_start[i];
    }
    s.in_cursor.clear();
    s.in_cursor.extend_from_slice(&s.in_start[..n]);
    s.in_edges.clear();
    s.in_edges.resize(graph.edges.len(), (0, 0.0, false));
    for e in &graph.edges {
        let slot = s.in_cursor[e.to];
        s.in_edges[slot] = (e.from, e.weight, e.wrap);
        s.in_cursor[e.to] += 1;
    }
    s.issue_done.clear();
    s.issue_done.resize(total_iters * n, NONE);
    s.port_busy.clear();
    s.port_busy.resize(np, 0);
    s.port_taken.clear();
    s.port_taken.resize(np, false);
    s.window.clear();
    s.retire_cycle.clear();
    s.retire_cycle.resize(total_iters, 0);
    s.retire_issued.clear();
    s.retire_issued.resize(total_iters, 0);
    s.heap.clear();
    for (_, _, _, snap) in s.samples.drain(..) {
        s.snap_pool.push(snap);
    }

    let sum_uops: u64 = descs.iter().map(|d| d.uop_count() as u64).sum();
    // Heaviest dependence-edge weight: once an issue time is this far in
    // the past it reads as "available" on every remaining edge.
    let wmax = graph.edges.iter().map(|e| e.weight).fold(0.0f64, f64::max);
    let extrapolatable = cfg.early_exit && total_iters > 0;
    // Closed-form extrapolation *through the drain* is exact only when no
    // µ-op holds a port across cycles: a blocking µ-op from a younger
    // instruction can delay an older one, so the schedule after the last
    // dispatch need not follow the periodic pattern. Kernels with such
    // µ-ops still skip the periodic middle — by teleporting the machine
    // state forward a whole number of periods — but then simulate the
    // drain for real.
    let blocking = descs
        .iter()
        .any(|d| d.uops.iter().any(|u| u.occupancy.ceil() as u64 > 1));
    let trace_horizon = trace.as_ref().map_or(0, |(_, m)| *m);

    // Profiling aggregates stay in locals and are emitted once at the end
    // of the run; when the recorder is off the only cost is this one load
    // plus a predictable per-site branch on the cached bool. The span
    // makes the simulator leg visible inside request trace trees.
    let profiling = obs::enabled();
    let _span = profiling.then(|| obs::span("exec:simulate"));
    let mut prof_heap_pops: u64 = 0;
    let mut prof_port_issued: Vec<u64> = if profiling { vec![0; np] } else { Vec::new() };
    let mut prof_teleport_cycles: Option<u64> = None;
    let mut prof_extrapolated_iters: u64 = 0;

    let mut next_dispatch = (0usize, 0usize); // (iter, idx)
    let mut rob_uops: u64 = 0;
    let mut sched_uops: u64 = 0;
    let mut retired_iters = 0usize;
    let mut retire_head = 0usize; // index into `window`
    let mut now: u64 = 0;
    let mut issued_uops_total: u64 = 0;
    let mut warmup_end_cycle: Option<u64> = None;
    let mut warmup_issued: u64 = 0;
    let mut sampling_dead = false;
    let mut samples_taken = 0usize;
    let mut early_exit_iter: Option<usize> = None;

    let max_cycles: u64 = 1_000_000 + (total_iters as u64) * 2_000;

    while retired_iters < total_iters && now < max_cycles {
        let retired_before = retired_iters;

        // --- Retire (in order). ---
        let mut retired = 0u32;
        while retire_head < s.window.len() && retired < machine.retire_width {
            let inst = s.window[retire_head];
            if inst.issue_done != NONE && inst.completion <= now {
                if let Some((ev, max_iters)) = trace.as_mut() {
                    if inst.iter < *max_iters {
                        ev.push(TraceEvent {
                            iter: inst.iter,
                            idx: inst.idx,
                            dispatched: inst.dispatched,
                            issued: inst.issue_done,
                            completed: inst.completion,
                            retired: now,
                        });
                    }
                }
                // NB: an eliminated instruction was charged one ROB slot
                // at dispatch but its uop_count() is 0 — the slot is never
                // released. The reference engine behaves the same way; the
                // asymmetry is kept for bit-identical equivalence (its only
                // other effect is that such kernels never fingerprint-match,
                // because `rob_uops` grows monotonically).
                rob_uops -= descs[inst.idx].uop_count() as u64;
                if inst.idx == n - 1 {
                    retired_iters = inst.iter + 1;
                    s.retire_cycle[inst.iter] = now;
                    s.retire_issued[inst.iter] = issued_uops_total;
                    if retired_iters == cfg.warmup && warmup_end_cycle.is_none() {
                        warmup_end_cycle = Some(now);
                        warmup_issued = issued_uops_total;
                    }
                }
                retire_head += 1;
                retired += 1;
            } else {
                break;
            }
        }
        // Compact the window occasionally.
        if retire_head > 4096 {
            s.window.drain(..retire_head);
            retire_head = 0;
        }

        // --- Dispatch (in order, limited by width / ROB / scheduler). ---
        let mut budget = machine.dispatch_width;
        while budget > 0 && next_dispatch.0 < total_iters {
            let (it, idx) = next_dispatch;
            let nu = descs[idx].uop_count() as u64;
            if nu.max(1) > budget as u64 {
                break; // instruction does not fit in this cycle's group
            }
            if rob_uops + nu.max(1) > machine.rob_size as u64
                || sched_uops + nu > machine.sched_size as u64
            {
                break;
            }
            if nu == 0 {
                // Eliminated instructions complete at dispatch.
                s.issue_done[it * n + idx] = now;
                s.window.push(InFlight {
                    iter: it,
                    idx,
                    dispatched: now,
                    issued_mask: 0,
                    issue_last: now,
                    issue_done: now,
                    completion: now,
                    earliest: now,
                });
                rob_uops += 1; // occupies a ROB slot until retired
            } else {
                s.window.push(InFlight {
                    iter: it,
                    idx,
                    dispatched: now,
                    issued_mask: 0,
                    issue_last: 0,
                    issue_done: NONE,
                    completion: NONE,
                    earliest: now,
                });
                s.heap.push(std::cmp::Reverse((now, it * n + idx)));
                rob_uops += nu;
                sched_uops += nu;
            }
            budget = budget.saturating_sub(nu.max(1) as u32);
            next_dispatch = if idx + 1 == n {
                (it + 1, 0)
            } else {
                (it, idx + 1)
            };
        }

        // --- Issue (oldest first). ---
        for t in s.port_taken.iter_mut() {
            *t = false;
        }
        // Entries from `retire_head` on are consecutive instructions in
        // dispatch order (a teleport shifts exactly this suffix), so the
        // entry for `(iter, idx)` sits at `iter * n + idx - base_key`.
        // Pending entries (including every woken key and every unissued
        // producer) are never retired, so lookups only land in this
        // suffix. Only the entries whose wake-up record fell due are
        // examined, oldest first — by the lower-bound property nothing
        // skipped could have issued this cycle.
        let base_key = s
            .window
            .get(retire_head)
            .map_or(0, |w| w.iter * n + w.idx - retire_head);
        s.wake.clear();
        while let Some(&std::cmp::Reverse((t, key))) = s.heap.peek() {
            if t > now {
                break;
            }
            s.heap.pop();
            s.wake.push(key);
        }
        s.wake.sort_unstable();
        if profiling {
            prof_heap_pops += s.wake.len() as u64;
        }
        for i in 0..s.wake.len() {
            let wi = s.wake[i] - base_key;
            let (w_iter, w_idx) = (s.window[wi].iter, s.window[wi].idx);
            // Readiness: all producers issued and their results available.
            // While checking, rebuild this entry's lower bound from the
            // unsatisfied producers: a recorded issue time gives the exact
            // maturity cycle; an unissued producer contributes its own
            // (already-final-for-this-cycle, since producers are older and
            // scanned first) bound, transitively shifted by the edge weight.
            let mut ready = true;
            let mut bound = 0u64;
            for &(from, weight, wrap) in &s.in_edges[s.in_start[w_idx]..s.in_start[w_idx + 1]] {
                let prod_iter = if wrap {
                    match w_iter.checked_sub(1) {
                        Some(pi) => pi,
                        None => continue, // first iteration: no producer
                    }
                } else {
                    w_iter
                };
                let t = s.issue_done[prod_iter * n + from];
                if t == NONE {
                    ready = false;
                    let ph = s.window[prod_iter * n + from - base_key].earliest;
                    bound = bound.max((ph as f64 + weight).ceil() as u64);
                } else if (t as f64 + weight) > now as f64 {
                    ready = false;
                    bound = bound.max((t as f64 + weight).ceil() as u64);
                }
            }
            if !ready {
                let at = bound.max(now + 1);
                s.window[wi].earliest = at;
                s.heap.push(std::cmp::Reverse((at, s.wake[i])));
                continue;
            }
            // Sanitizer S003: independently re-derive operand maturity for
            // an entry the issue phase deemed ready.
            #[cfg(debug_assertions)]
            {
                let mut ready_at = 0.0f64;
                for &(from, weight, wrap) in &s.in_edges[s.in_start[w_idx]..s.in_start[w_idx + 1]] {
                    let prod_iter = if wrap {
                        match w_iter.checked_sub(1) {
                            Some(pi) => pi,
                            None => continue,
                        }
                    } else {
                        w_iter
                    };
                    let t = s.issue_done[prod_iter * n + from];
                    ready_at = if t == NONE {
                        f64::INFINITY
                    } else {
                        ready_at.max(t as f64 + weight)
                    };
                }
                crate::sanitizer::check_wakeup(w_iter, w_idx, now, ready_at);
            }
            // Try to issue each pending µ-op on a free eligible port.
            let d = &descs[w_idx];
            let mut all_issued = true;
            let mut port_bound = u64::MAX;
            for (ui, u) in d.uops.iter().enumerate() {
                if s.window[wi].issued_mask & (1 << ui) != 0 {
                    continue;
                }
                // Pick the eligible free port with the earliest availability.
                let mut best: Option<usize> = None;
                for p in u.ports.iter() {
                    if s.port_busy[p] <= now && !s.port_taken[p] {
                        best = match best {
                            Some(b) if s.port_busy[b] <= s.port_busy[p] => Some(b),
                            _ => Some(p),
                        };
                    }
                }
                if let Some(p) = best {
                    #[cfg(debug_assertions)]
                    crate::sanitizer::check_port_grant(p, s.port_taken[p], s.port_busy[p], now);
                    s.port_taken[p] = true;
                    if profiling {
                        prof_port_issued[p] += 1;
                    }
                    // A blocking µ-op holds its port beyond this cycle.
                    let occ = u.occupancy.ceil() as u64;
                    if occ > 1 {
                        s.port_busy[p] = now + occ;
                    }
                    let w = &mut s.window[wi];
                    w.issued_mask |= 1 << ui;
                    w.issue_last = w.issue_last.max(now);
                    sched_uops -= 1;
                    issued_uops_total += 1;
                } else {
                    all_issued = false;
                    // Port busy horizons only ever grow, so the earliest of
                    // the eligible ports bounds this µ-op's next chance.
                    let free = u.ports.iter().map(|p| s.port_busy[p]).min().unwrap_or(0);
                    port_bound = port_bound.min(free);
                }
            }
            if all_issued {
                let w = &mut s.window[wi];
                let last = w.issue_last;
                w.issue_done = last;
                let lat = (d.latency as u64).max(1);
                w.completion = if d.class == InstrClass::Store {
                    last + 1
                } else {
                    last + lat
                };
                s.issue_done[w_iter * n + w_idx] = last;
            } else {
                let at = port_bound.max(now + 1);
                s.window[wi].earliest = at;
                s.heap.push(std::cmp::Reverse((at, s.wake[i])));
            }
        }

        // --- Steady-state detection. ---
        if extrapolatable
            && !sampling_dead
            && retired_iters > retired_before
            && retired_iters >= trace_horizon
            && retired_iters < total_iters
            && next_dispatch.0 < total_iters
        {
            fingerprint(
                s,
                n,
                now,
                retired_iters,
                next_dispatch,
                rob_uops,
                sched_uops,
                retire_head,
                wmax,
            );
            let h = hash_fp(&s.fp);
            let prior = s
                .samples
                .iter()
                .find(|(ph, _, _, snap)| *ph == h && *snap == s.fp)
                .map(|(_, pr, pc, _)| (*pr, *pc));
            if let Some((p_retired, p_cycle)) = prior {
                // Periodic: every Δk iterations cost exactly Δc cycles,
                // for as long as dispatch keeps feeding the window.
                let dk = retired_iters - p_retired;
                let dc = now - p_cycle;
                // The warm-up boundary may lie in the span being skipped:
                // its retire cycle and issued-µop count follow from the
                // same periodicity, by the same integer arithmetic the
                // reference engine would have observed.
                let warmup_at = |s: &SimScratch, upto: usize| {
                    (cfg.warmup > 0 && cfg.warmup <= upto).then(|| {
                        let mw = cfg.warmup - p_retired;
                        let periods = (mw / dk) as u64;
                        let widx = p_retired - 1 + mw % dk;
                        (
                            s.retire_cycle[widx] + periods * dc,
                            s.retire_issued[widx] + periods * dk as u64 * sum_uops,
                        )
                    })
                };
                if !blocking {
                    // No port-blocking µ-ops ⇒ younger instructions never
                    // delay older ones ⇒ the periodic retire pattern holds
                    // through the drain, and the final retirement is a
                    // closed-form expression.
                    let m = total_iters - p_retired;
                    let final_t = s.retire_cycle[p_retired - 1 + m % dk] + (m / dk) as u64 * dc;
                    if final_t < max_cycles {
                        if warmup_end_cycle.is_none() {
                            if let Some((wc, wi)) = warmup_at(s, total_iters) {
                                warmup_end_cycle = Some(wc);
                                warmup_issued = wi;
                            }
                        }
                        early_exit_iter = Some(retired_iters);
                        if profiling {
                            prof_extrapolated_iters = (total_iters - retired_iters) as u64;
                        }
                        retired_iters = total_iters;
                        // Every dispatched µ-op issues before the final
                        // retirement, so the grand total is exact.
                        issued_uops_total = total_iters as u64 * sum_uops;
                        now = final_t + 1;
                        break;
                    }
                    // The run would hit the watchdog mid-pattern; the
                    // formula above cannot describe a truncated run, so
                    // keep simulating (and stop paying for fingerprints).
                } else {
                    // Teleport: advance the whole machine state by `j`
                    // whole periods — exact while dispatch continues, for
                    // any kernel — then simulate the drain for real. A
                    // mid-iteration cursor needs its iteration to remain
                    // in range after the jump.
                    let j = (total_iters - next_dispatch.0 - usize::from(next_dispatch.1 > 0)) / dk;
                    let jdc = j as u64 * dc;
                    let jdk = j * dk;
                    if j >= 1 && now + jdc < max_cycles {
                        // Sanitizer S004: `s.fp` still holds the pre-jump
                        // fingerprint; the post-jump state must reproduce
                        // it bit for bit (all coordinates are relative).
                        #[cfg(debug_assertions)]
                        let fp_pre = s.fp.clone();
                        if warmup_end_cycle.is_none() {
                            if let Some((wc, wi)) = warmup_at(s, retired_iters + jdk) {
                                warmup_end_cycle = Some(wc);
                                warmup_issued = wi;
                            }
                        }
                        // Issue-matrix rows still reachable after the jump
                        // (highest first: source and destination overlap).
                        let lo = retired_iters - 1;
                        let hi = next_dispatch.0.min(total_iters - 1 - jdk);
                        for it in (lo..=hi).rev() {
                            for i in 0..n {
                                let t = s.issue_done[it * n + i];
                                s.issue_done[(it + jdk) * n + i] =
                                    if t == NONE { NONE } else { t + jdc };
                            }
                        }
                        for w in &mut s.window[retire_head..] {
                            w.iter += jdk;
                            w.dispatched += jdc;
                            w.earliest += jdc;
                            if w.issued_mask != 0 || w.issue_done != NONE {
                                w.issue_last += jdc;
                            }
                            if w.issue_done != NONE {
                                w.issue_done += jdc;
                                w.completion += jdc;
                            }
                        }
                        // Horizons at or before `now` stay in the past.
                        for p in s.port_busy.iter_mut() {
                            *p += jdc;
                        }
                        // Wake-up records hold pre-jump keys and times;
                        // rebuild them from the shifted window.
                        s.heap.clear();
                        for w in &s.window[retire_head..] {
                            if w.issue_done == NONE {
                                s.heap
                                    .push(std::cmp::Reverse((w.earliest, w.iter * n + w.idx)));
                            }
                        }
                        early_exit_iter = Some(retired_iters);
                        if profiling {
                            prof_teleport_cycles = Some(jdc);
                            prof_extrapolated_iters = jdk as u64;
                        }
                        retired_iters += jdk;
                        next_dispatch.0 += jdk;
                        issued_uops_total += jdk as u64 * sum_uops;
                        now += jdc;
                        #[cfg(debug_assertions)]
                        if next_dispatch.0 < total_iters {
                            fingerprint(
                                s,
                                n,
                                now,
                                retired_iters,
                                next_dispatch,
                                rob_uops,
                                sched_uops,
                                retire_head,
                                wmax,
                            );
                            crate::sanitizer::check_teleport(&fp_pre, &mut s.fp);
                        }
                    }
                    // One jump per run: afterwards the periodic middle is
                    // gone and only the drain remains.
                }
                sampling_dead = true;
            } else if samples_taken < SAMPLE_BUDGET {
                samples_taken += 1;
                if s.samples.len() == SAMPLE_WINDOW {
                    // Rotate the oldest sample out; in a periodic schedule
                    // the matching sample is at most one period old.
                    let (_, _, _, snap) = s.samples.remove(0);
                    s.snap_pool.push(snap);
                }
                let mut snap = s.snap_pool.pop().unwrap_or_default();
                snap.clear();
                snap.extend_from_slice(&s.fp);
                s.samples.push((h, retired_iters, now, snap));
            } else {
                sampling_dead = true;
            }
        }

        if retired_iters >= total_iters {
            now += 1; // the naive loop increments before seeing the exit
            break;
        }

        // --- Jump to the next cycle on which anything can happen. ---
        let next_now = next_event(
            s,
            machine,
            descs,
            now,
            total_iters,
            next_dispatch,
            rob_uops,
            sched_uops,
            retire_head,
        )
        .min(max_cycles);
        // Sanitizer S001: the `now + 1` floor in `next_event` plus the
        // `now < max_cycles` loop guard make this jump strictly forward.
        #[cfg(debug_assertions)]
        crate::sanitizer::check_clock_advance(now, next_now);
        now = next_now;
    }

    if profiling {
        obs::counter("sim.calls", 1);
        obs::counter("sim.cycles", now);
        obs::counter("sim.heap.pops", prof_heap_pops);
        obs::counter("sim.samples.taken", samples_taken as u64);
        obs::counter(
            if early_exit_iter.is_some() {
                "sim.steady.hit"
            } else {
                "sim.steady.miss"
            },
            1,
        );
        obs::counter("sim.iters.extrapolated", prof_extrapolated_iters);
        if let Some(jdc) = prof_teleport_cycles {
            obs::observe("sim.teleport.cycles", jdc);
        }
        for (p, &cnt) in prof_port_issued.iter().enumerate() {
            let name = machine.port_model.ports[p].name;
            obs::counter(&format!("sim.port.{name}.issued"), cnt);
            // Per-port occupancy (issue slots used per 100 cycles), one
            // observation per simulated kernel.
            if let Some(pct) = (cnt * 100).checked_div(now) {
                obs::observe(&format!("sim.port.{name}.occupancy_pct"), pct);
            }
        }
    }

    crate::finish(
        cfg,
        total_iters,
        RawOutcome {
            now,
            retired_iters,
            issued_uops_total,
            warmup_end_cycle,
            warmup_issued,
            early_exit_iter,
        },
    )
}

/// Earliest future cycle on which retire, dispatch or issue could make
/// progress. Returns `u64::MAX` when the machine is provably wedged (the
/// caller clamps to the watchdog limit).
#[allow(clippy::too_many_arguments)]
fn next_event(
    s: &SimScratch,
    machine: &Machine,
    descs: &[InstrDesc],
    now: u64,
    total_iters: usize,
    next_dispatch: (usize, usize),
    rob_uops: u64,
    sched_uops: u64,
    retire_head: usize,
) -> u64 {
    let floor = now + 1;
    // Dispatch: would the next instruction fit next cycle? (Mirrors the
    // dispatch-phase gates with a full-width budget.)
    if next_dispatch.0 < total_iters {
        let nu = descs[next_dispatch.1].uop_count() as u64;
        if nu.max(1) <= machine.dispatch_width as u64
            && rob_uops + nu.max(1) <= machine.rob_size as u64
            && sched_uops + nu <= machine.sched_size as u64
        {
            return floor;
        }
    }
    let mut next = u64::MAX;
    // Retirement: only the window head can unblock it.
    if let Some(head) = s.window.get(retire_head) {
        if head.issue_done != NONE {
            next = head.completion.max(floor);
            if next == floor {
                return floor;
            }
        }
    }
    // Issue: every pending entry has exactly one wake-up record holding a
    // lower bound on its next possible issue cycle ([`InFlight::earliest`]),
    // re-armed whenever the entry is examined — so the next issue event is
    // the top of the heap. A bound can be loose (the woken cycle then
    // re-arms it, at worst costing a no-op cycle) but is never late, so no
    // real issue is skipped.
    if let Some(&std::cmp::Reverse((t, _))) = s.heap.peek() {
        next = next.min(t.max(floor));
    }
    next
}

/// A fingerprint word for an issue-matrix row whose every value has
/// issued and matured: the whole row collapses to this one sentinel.
/// Never collides with per-value words (`i64::MIN`, [`FP_MATURE`], or
/// `t - now ≤ 0`), so the variable-width encoding is uniquely decodable.
const FP_ROW_MATURE: i64 = i64::MAX;
/// A fingerprint word for a single matured issue-matrix value.
const FP_MATURE: i64 = i64::MAX - 1;
/// A fingerprint word for an issue-matrix row with no issues yet.
const FP_ROW_EMPTY: i64 = i64::MAX - 2;

/// Record the machine state relative to (`now`, `retired`) into `s.fp`,
/// *quotiented by future-equivalence*: two equal fingerprints ⇒ the
/// executions from those two points are identical modulo the
/// (Δ iterations, Δ cycles) shift. Coordinates that can no longer
/// influence any future phase are clamped to their equivalence class —
/// a busy horizon or completion due by the next simulated cycle behaves
/// like any other, and an issue time mature for even the heaviest edge
/// always reads as "operand available" — so dead history cannot delay a
/// match. `InFlight::issue_last` is absent entirely: it never exceeds
/// `now`, and the µ-op issue that would read it overwrites it with its
/// own (strictly later) cycle first.
#[allow(clippy::too_many_arguments)]
fn fingerprint(
    s: &mut SimScratch,
    n: usize,
    now: u64,
    retired: usize,
    next_dispatch: (usize, usize),
    rob_uops: u64,
    sched_uops: u64,
    retire_head: usize,
    wmax: f64,
) {
    let base = now as i64;
    let rb = retired as i64;
    // First cycle the simulation will see again; anything available by
    // then is available at every future read.
    let horizon = now + 1;
    s.fp.clear();
    s.fp.push(next_dispatch.0 as i64 - rb);
    s.fp.push(next_dispatch.1 as i64);
    s.fp.push(rob_uops as i64);
    s.fp.push(sched_uops as i64);
    for &p in &s.port_busy {
        s.fp.push(p.max(horizon) as i64 - base);
    }
    s.fp.push((s.window.len() - retire_head) as i64);
    // The window is the consecutive run of instructions ending just
    // before the dispatch cursor, so every entry's (iter, idx) follows
    // from the cursor and the window length already recorded — only µ-op
    // state is pushed per entry. The unissued tail (most of the window
    // under a long dependence chain) carries no state at all; its length
    // is implied by the `live` prefix count.
    let live = s.window[retire_head..]
        .iter()
        .rposition(|w| w.issued_mask != 0 || w.issue_done != NONE)
        .map_or(0, |p| p + 1);
    s.fp.push(live as i64);
    for w in &s.window[retire_head..retire_head + live] {
        s.fp.push(w.issued_mask as i64);
        // Consumers read issue times through the matrix, so the entry's
        // own state only matters as "issued or not" (the sentinel) plus
        // the completion cycle, and that only until it falls due.
        s.fp.push(if w.issue_done != NONE {
            w.completion.max(horizon) as i64 - base
        } else {
            i64::MIN
        });
    }
    // The slice of the issue matrix still reachable by future readiness
    // checks: wrap producers of the oldest unretired iteration through
    // the partially-dispatched iteration. (Rows past `next_dispatch.0`
    // are untouched; rows before `retired - 1` can never be read again.)
    let lo = retired.saturating_sub(1);
    for it in lo..=next_dispatch.0 {
        let row = &s.issue_done[it * n..(it + 1) * n];
        if row.iter().all(|&t| t == NONE) {
            s.fp.push(FP_ROW_EMPTY);
        } else if row
            .iter()
            .all(|&t| t != NONE && t as f64 + wmax <= horizon as f64)
        {
            s.fp.push(FP_ROW_MATURE);
        } else {
            for &t in row {
                s.fp.push(if t == NONE {
                    i64::MIN
                } else if t as f64 + wmax <= horizon as f64 {
                    FP_MATURE
                } else {
                    t as i64 - base
                });
            }
        }
    }
}

/// FNV-1a over the fingerprint words — cheap pre-filter before the exact
/// `Vec` comparison (matches are confirmed, never trusted from the hash).
fn hash_fp(fp: &[i64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in fp {
        h ^= v as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
