//! Cycle-level out-of-order core simulator — the repository's stand-in for
//! the paper's physical testbed (see DESIGN.md, "Hardware-gate
//! substitutions").
//!
//! The simulator executes a loop kernel on a core configured from the same
//! [`uarch::Machine`] description the analytical models use, but unlike the
//! models it implements the *real* constraints of an out-of-order engine:
//!
//! * in-order dispatch limited by the rename/dispatch width,
//! * a finite reorder buffer and scheduler window,
//! * discrete (per-cycle, per-port) issue arbitration instead of idealized
//!   fractional port pressure,
//! * oldest-first selection among ready µ-ops,
//! * dependency wake-up at producer-defined latencies (including the
//!   1-cycle address-writeback fast path and zero-latency forwarding of
//!   rename-eliminated idioms),
//! * in-order retirement limited by the retire width.
//!
//! Because these constraints are a superset of what the analytical in-core
//! model considers, simulated "measurements" are systematically ≥ the
//! model's optimistic lower bound — mirroring the relationship between
//! hardware measurements and OSACA predictions in the paper (Fig. 3).
//!
//! Loads always hit L1 (the validation corpus is in-core by construction);
//! memory-hierarchy effects are the `memhier` crate's business.
//!
//! # Example
//!
//! ```
//! use isa::{parse_kernel, Isa};
//! use exec::{simulate, SimConfig};
//! use uarch::Machine;
//!
//! let k = parse_kernel(".L1:\n addq $1, %rax\n cmpq %rcx, %rax\n jne .L1\n", Isa::X86).unwrap();
//! let r = simulate(&Machine::golden_cove(), &k, SimConfig::default());
//! assert!(r.cycles_per_iter >= 1.0);
//! ```

pub mod trace;

use incore::depgraph::DepGraph;
use isa::Kernel;
use uarch::{InstrClass, Machine};

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Measured iterations (after warm-up).
    pub iterations: usize,
    /// Iterations run before measurement starts, to reach steady state.
    pub warmup: usize,
    /// Enable documented silicon behaviours that the analytical in-core
    /// model deliberately ignores (see [`apply_quirks`]). These reproduce
    /// the paper's known model-vs-measurement outliers in Fig. 3.
    pub quirks: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            iterations: 200,
            warmup: 50,
            quirks: true,
        }
    }
}

/// Silicon behaviours beyond the port/latency model:
///
/// * **Neoverse V2 FMA accumulator forwarding** — the V2 forwards an FMA
///   result into the accumulator input of a dependent FMA after 2 cycles
///   instead of the full 4-cycle latency (Arm SOG "late accumulator
///   forwarding"). OSACA's model charges the full latency, which is why the
///   paper's Gauss-Seidel kernels on V2 are the one family OSACA
///   over-predicts (Fig. 3, left-side bars).
/// * **Zen 4 scalar FP divide** — sustained divide throughput measures
///   slightly better (≈4 cy/divide) than the documented 5 cy the model
///   uses; the paper notes exactly this for the π kernel on Zen 4.
fn apply_quirks(
    machine: &Machine,
    kernel: &Kernel,
    descs: &mut [uarch::InstrDesc],
    graph: &mut DepGraph,
) {
    match machine.arch {
        uarch::Arch::NeoverseV2 => {
            for e in &mut graph.edges {
                let prod_fma = descs[e.from].class == InstrClass::VecFma;
                let cons_fma = descs[e.to].class == InstrClass::VecFma;
                if prod_fma && cons_fma {
                    // Forward only into the accumulator operand: the edge
                    // register must be the consumer's destination too.
                    let cons = &kernel.instructions[e.to];
                    let dest_is_via = isa::dataflow::dataflow(cons)
                        .writes
                        .iter()
                        .any(|w| w.id() == e.via);
                    if dest_is_via {
                        e.weight = e.weight.min(2.0);
                    }
                }
            }
        }
        uarch::Arch::Zen4 => {
            for (d, inst) in descs.iter_mut().zip(&kernel.instructions) {
                // Scalar divides only — the packed divider matches its
                // documented throughput.
                if d.class == InstrClass::VecDiv
                    && inst.max_vec_width() <= 128
                    && uarch::instr::is_scalar_fp(inst)
                {
                    for u in &mut d.uops {
                        if u.occupancy >= 5.0 {
                            u.occupancy *= 0.8;
                        }
                    }
                }
            }
        }
        uarch::Arch::GoldenCove => {}
    }
}

/// Simulation outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Steady-state cycles per loop iteration.
    pub cycles_per_iter: f64,
    /// Total simulated cycles including warm-up.
    pub total_cycles: u64,
    /// µ-ops issued per cycle over the measured window.
    pub uops_per_cycle: f64,
}

/// Per-instruction-instance bookkeeping.
#[derive(Debug, Clone)]
struct InFlight {
    iter: usize,
    idx: usize,
    /// Cycle at which the instruction was dispatched.
    dispatched: u64,
    /// Issue time of each µ-op (`None` = not yet issued).
    uop_issue: Vec<Option<u64>>,
    /// Cycle at which the last µ-op issued (valid once all issued).
    issue_done: Option<u64>,
    /// Cycle at which the instruction may retire.
    completion: u64,
}

/// Lifecycle of one instruction instance, for the pipeline trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    pub iter: usize,
    pub idx: usize,
    pub dispatched: u64,
    /// Cycle the last µ-op issued.
    pub issued: u64,
    /// Cycle the result was available.
    pub completed: u64,
    /// Cycle the instruction retired (in order).
    pub retired: u64,
}

/// The cycle-level simulator as a [`uarch::Predictor`] — the workspace's
/// measurement stand-in (`is_reference`), anchoring relative prediction
/// error in validation runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreSimulator {
    pub config: SimConfig,
}

impl uarch::Predictor for CoreSimulator {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn predict(&self, machine: &Machine, kernel: &Kernel) -> uarch::Prediction {
        let r = simulate(machine, kernel, self.config);
        uarch::Prediction {
            cycles_per_iter: r.cycles_per_iter,
            bottleneck: uarch::Bottleneck::Measured,
            port_pressure: Vec::new(),
            uops_per_iter: r.uops_per_cycle * r.cycles_per_iter,
        }
    }

    fn is_reference(&self) -> bool {
        true
    }
}

/// Simulate a kernel and return steady-state cycles/iteration.
pub fn simulate(machine: &Machine, kernel: &Kernel, cfg: SimConfig) -> SimResult {
    simulate_impl(machine, kernel, cfg, None).0
}

/// Simulate and also return the pipeline trace of the first
/// `trace_iters` iterations (dispatch → issue → complete → retire per
/// instruction instance).
pub fn simulate_traced(
    machine: &Machine,
    kernel: &Kernel,
    cfg: SimConfig,
    trace_iters: usize,
) -> (SimResult, Vec<TraceEvent>) {
    let mut events = Vec::new();
    let (r, ()) = simulate_impl(machine, kernel, cfg, Some((&mut events, trace_iters)));
    events.sort_by_key(|e| (e.iter, e.idx));
    (r, events)
}

fn simulate_impl(
    machine: &Machine,
    kernel: &Kernel,
    cfg: SimConfig,
    mut trace: Option<(&mut Vec<TraceEvent>, usize)>,
) -> (SimResult, ()) {
    let n = kernel.instructions.len();
    if n == 0 {
        return (
            SimResult {
                cycles_per_iter: 0.0,
                total_cycles: 0,
                uops_per_cycle: 0.0,
            },
            (),
        );
    }
    let mut descs = machine.describe_kernel(kernel);
    let mut graph = DepGraph::build(machine, kernel, &descs);
    if cfg.quirks {
        apply_quirks(machine, kernel, &mut descs, &mut graph);
    }
    let descs = descs;
    let graph = graph;
    // Incoming edges per instruction index.
    let mut incoming: Vec<Vec<(usize, f64, bool)>> = vec![Vec::new(); n];
    for e in &graph.edges {
        incoming[e.to].push((e.from, e.weight, e.wrap));
    }

    let total_iters = cfg.warmup + cfg.iterations;
    let np = machine.port_model.num_ports();
    let mut port_busy_until = vec![0u64; np];

    // issue_done time of every completed-issue instance, indexed [iter][idx].
    let mut issue_done: Vec<Vec<Option<u64>>> = vec![vec![None; n]; total_iters];

    let mut window: Vec<InFlight> = Vec::new();
    let mut next_dispatch = (0usize, 0usize); // (iter, idx)
    let mut rob_uops: u64 = 0;
    let mut sched_uops: u64 = 0;
    let mut retired_iters = 0usize;
    let mut retire_head = 0usize; // index into `window`
    let mut now: u64 = 0;
    let mut issued_uops_total: u64 = 0;
    let mut warmup_end_cycle: Option<u64> = None;
    let mut warmup_issued: u64 = 0;

    let max_cycles: u64 = 1_000_000 + (total_iters as u64) * 2_000;

    while retired_iters < total_iters && now < max_cycles {
        // --- Retire (in order). ---
        let mut retired = 0u32;
        while retire_head < window.len() && retired < machine.retire_width {
            let inst = &window[retire_head];
            if inst.issue_done.is_some() && inst.completion <= now {
                if let Some((ev, max_iters)) = trace.as_mut() {
                    if inst.iter < *max_iters {
                        ev.push(TraceEvent {
                            iter: inst.iter,
                            idx: inst.idx,
                            dispatched: inst.dispatched,
                            issued: inst.issue_done.unwrap_or(inst.dispatched),
                            completed: inst.completion,
                            retired: now,
                        });
                    }
                }
                rob_uops -= descs[inst.idx].uop_count() as u64;
                if inst.idx == n - 1 {
                    retired_iters = inst.iter + 1;
                    if retired_iters == cfg.warmup && warmup_end_cycle.is_none() {
                        warmup_end_cycle = Some(now);
                        warmup_issued = issued_uops_total;
                    }
                }
                retire_head += 1;
                retired += 1;
            } else {
                break;
            }
        }
        // Compact the window occasionally.
        if retire_head > 4096 {
            window.drain(..retire_head);
            retire_head = 0;
        }

        // --- Dispatch (in order, limited by width / ROB / scheduler). ---
        let mut budget = machine.dispatch_width;
        while budget > 0 && next_dispatch.0 < total_iters {
            let (it, idx) = next_dispatch;
            let d = &descs[idx];
            let nu = d.uop_count() as u64;
            if nu.max(1) > budget as u64 {
                break; // instruction does not fit in this cycle's group
            }
            if rob_uops + nu.max(1) > machine.rob_size as u64
                || sched_uops + nu > machine.sched_size as u64
            {
                break;
            }
            // Eliminated instructions complete at dispatch.
            if nu == 0 {
                issue_done[it][idx] = Some(now);
                window.push(InFlight {
                    iter: it,
                    idx,
                    dispatched: now,
                    uop_issue: Vec::new(),
                    issue_done: Some(now),
                    completion: now,
                });
                rob_uops += 1; // occupies a ROB slot until retired
            } else {
                window.push(InFlight {
                    iter: it,
                    idx,
                    dispatched: now,
                    uop_issue: vec![None; nu as usize],
                    issue_done: None,
                    completion: u64::MAX,
                });
                rob_uops += nu;
                sched_uops += nu;
            }
            budget = budget.saturating_sub(nu.max(1) as u32);
            next_dispatch = if idx + 1 == n {
                (it + 1, 0)
            } else {
                (it, idx + 1)
            };
        }

        // --- Issue (oldest first). ---
        let mut port_taken_this_cycle = vec![false; np];
        for w in window.iter_mut().skip(retire_head) {
            if w.issue_done.is_some() && w.uop_issue.is_empty() {
                continue; // eliminated
            }
            if w.issue_done.is_some() {
                continue; // fully issued
            }
            // Readiness: all producers issued and their results available.
            let mut ready = true;
            for &(from, weight, wrap) in &incoming[w.idx] {
                let prod_iter = if wrap {
                    match w.iter.checked_sub(1) {
                        Some(pi) => pi,
                        None => continue, // first iteration: no producer
                    }
                } else {
                    w.iter
                };
                match issue_done[prod_iter][from] {
                    Some(t) => {
                        if (t as f64 + weight) > now as f64 {
                            ready = false;
                            break;
                        }
                    }
                    None => {
                        ready = false;
                        break;
                    }
                }
            }
            if !ready {
                continue;
            }
            // Try to issue each pending µ-op on a free eligible port.
            let d = &descs[w.idx];
            let mut all_issued = true;
            for (ui, u) in d.uops.iter().enumerate() {
                if w.uop_issue[ui].is_some() {
                    continue;
                }
                // Pick the eligible free port with the earliest availability.
                let mut best: Option<usize> = None;
                for p in u.ports.iter() {
                    if port_busy_until[p] <= now && !port_taken_this_cycle[p] {
                        best = match best {
                            Some(b) if port_busy_until[b] <= port_busy_until[p] => Some(b),
                            _ => Some(p),
                        };
                    }
                }
                if let Some(p) = best {
                    port_taken_this_cycle[p] = true;
                    // A blocking µ-op holds its port beyond this cycle.
                    let occ = u.occupancy.ceil() as u64;
                    if occ > 1 {
                        port_busy_until[p] = now + occ;
                    }
                    w.uop_issue[ui] = Some(now);
                    sched_uops -= 1;
                    issued_uops_total += 1;
                } else {
                    all_issued = false;
                }
            }
            if all_issued {
                let last = w.uop_issue.iter().map(|t| t.unwrap()).max().unwrap_or(now);
                w.issue_done = Some(last);
                issue_done[w.iter][w.idx] = Some(last);
                let lat = (descs[w.idx].latency as u64).max(1);
                let completes = if descs[w.idx].class == InstrClass::Store {
                    last + 1
                } else {
                    last + lat
                };
                w.completion = completes;
            }
        }

        now += 1;
    }

    let start = warmup_end_cycle.unwrap_or(0);
    let measured_iters = (retired_iters.saturating_sub(cfg.warmup)).max(1) as f64;
    let measured_cycles = (now - start) as f64;
    (
        SimResult {
            cycles_per_iter: measured_cycles / measured_iters,
            total_cycles: now,
            uops_per_cycle: (issued_uops_total - warmup_issued) as f64 / measured_cycles.max(1.0),
        },
        (),
    )
}

/// Convenience: steady-state cycles per iteration with default config.
pub fn cycles_per_iteration(machine: &Machine, kernel: &Kernel) -> f64 {
    simulate(machine, kernel, SimConfig::default()).cycles_per_iter
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::{parse_kernel, Isa};
    use uarch::Machine;

    fn run_x86(asm: &str, m: &Machine) -> f64 {
        let k = parse_kernel(asm, Isa::X86).unwrap();
        cycles_per_iteration(m, &k)
    }

    fn run_a64(asm: &str, m: &Machine) -> f64 {
        let k = parse_kernel(asm, Isa::AArch64).unwrap();
        cycles_per_iteration(m, &k)
    }

    #[test]
    fn serial_fma_chain_measures_latency() {
        // The accumulator chain forces ~4 cycles/iteration (FMA latency).
        let m = Machine::golden_cove();
        let c = run_x86(
            ".L1:\n vfmadd231pd %zmm1, %zmm2, %zmm3\n subq $1, %rax\n jne .L1\n",
            &m,
        );
        assert!((c - 4.0).abs() < 0.3, "cycles/iter = {c}");
    }

    #[test]
    fn independent_fmas_measure_throughput() {
        // 8 accumulators on 2 × 512-bit pipes → ~4 cycles per iteration
        // (2 FMAs/cycle), Table III.
        let m = Machine::golden_cove();
        let mut asm = String::from(".L1:\n");
        for i in 3..11 {
            asm.push_str(&format!("    vfmadd231pd %zmm1, %zmm2, %zmm{i}\n"));
        }
        asm.push_str("    subq $1, %rax\n    jne .L1\n");
        let c = run_x86(&asm, &m);
        assert!((c - 4.0).abs() < 0.5, "cycles/iter = {c}");
    }

    #[test]
    fn neoverse_add_throughput() {
        // 8 independent NEON adds on 4 pipes → ~2 cycles/iteration.
        let m = Machine::neoverse_v2();
        let mut asm = String::from(".L1:\n");
        for i in 0..8 {
            asm.push_str(&format!("    fadd v{i}.2d, v8.2d, v9.2d\n"));
        }
        asm.push_str("    subs x0, x0, #1\n    b.ne .L1\n");
        let c = run_a64(&asm, &m);
        assert!(c >= 2.0 - 1e-9 && c < 2.8, "cycles/iter = {c}");
    }

    #[test]
    fn divider_blocks_port() {
        // Four independent zmm divides at 16-cycle reciprocal throughput
        // serialize on the single divider port: ≥ 64 cycles/iteration.
        let m = Machine::golden_cove();
        let mut asm = String::from(".L1:\n");
        for i in 4..8 {
            asm.push_str(&format!("    vdivpd %zmm1, %zmm2, %zmm{i}\n"));
        }
        asm.push_str("    subq $1, %rax\n    jne .L1\n");
        let c = run_x86(&asm, &m);
        assert!(c >= 60.0, "cycles/iter = {c}");
    }

    #[test]
    fn zen4_double_pumped_fma_slower_than_glc() {
        let mut asm = String::from(".L1:\n");
        for i in 3..11 {
            asm.push_str(&format!("    vfmadd231pd %zmm1, %zmm2, %zmm{i}\n"));
        }
        asm.push_str("    subq $1, %rax\n    jne .L1\n");
        let glc = run_x86(&asm, &Machine::golden_cove());
        let zen = run_x86(&asm, &Machine::zen4());
        // Zen 4 needs two 256-bit µ-ops per zmm FMA → about twice the time.
        assert!(zen > glc * 1.6, "glc={glc} zen={zen}");
    }

    #[test]
    fn measurement_never_faster_than_model() {
        // The simulator includes strictly more constraints than the
        // analytical lower bound.
        let kernels = [
            ".L1:\n vmovupd (%rsi,%rax), %zmm0\n vaddpd %zmm0, %zmm1, %zmm2\n vmovupd %zmm2, (%rdi,%rax)\n addq $64, %rax\n cmpq %rcx, %rax\n jne .L1\n",
            ".L1:\n vmulpd %zmm4, %zmm1, %zmm2\n vaddpd %zmm2, %zmm3, %zmm4\n subq $1, %rax\n jne .L1\n",
        ];
        let m = Machine::golden_cove();
        for asm in kernels {
            let k = parse_kernel(asm, Isa::X86).unwrap();
            let sim = cycles_per_iteration(&m, &k);
            let model = incore::analyze(&m, &k).prediction;
            assert!(sim >= model - 0.05, "sim={sim} model={model} for {asm}");
        }
    }

    #[test]
    fn empty_kernel() {
        let k = isa::Kernel {
            instructions: vec![],
            isa: Isa::X86,
            loop_label: None,
        };
        let r = simulate(&Machine::zen4(), &k, SimConfig::default());
        assert_eq!(r.cycles_per_iter, 0.0);
    }

    #[test]
    fn store_throughput_zen4_one_per_cycle() {
        let m = Machine::zen4();
        let c = run_x86(
            ".L1:\n vmovupd %ymm0, (%rdi)\n vmovupd %ymm1, 32(%rdi)\n addq $64, %rdi\n cmpq %rsi, %rdi\n jne .L1\n",
            &m,
        );
        // Single store-data port → ≥ 2 cycles for two stores.
        assert!(c >= 2.0 - 1e-9, "cycles/iter = {c}");
        assert!(c < 3.0, "cycles/iter = {c}");
    }
}
