//! Cycle-level out-of-order core simulator — the repository's stand-in for
//! the paper's physical testbed (see DESIGN.md, "Hardware-gate
//! substitutions").
//!
//! The simulator executes a loop kernel on a core configured from the same
//! [`uarch::Machine`] description the analytical models use, but unlike the
//! models it implements the *real* constraints of an out-of-order engine:
//!
//! * in-order dispatch limited by the rename/dispatch width,
//! * a finite reorder buffer and scheduler window,
//! * discrete (per-cycle, per-port) issue arbitration instead of idealized
//!   fractional port pressure,
//! * oldest-first selection among ready µ-ops,
//! * dependency wake-up at producer-defined latencies (including the
//!   1-cycle address-writeback fast path and zero-latency forwarding of
//!   rename-eliminated idioms),
//! * in-order retirement limited by the retire width.
//!
//! Because these constraints are a superset of what the analytical in-core
//! model considers, simulated "measurements" are systematically ≥ the
//! model's optimistic lower bound — mirroring the relationship between
//! hardware measurements and OSACA predictions in the paper (Fig. 3).
//!
//! Loads always hit L1 (the validation corpus is in-core by construction);
//! memory-hierarchy effects are the `memhier` crate's business.
//!
//! # Execution engines
//!
//! Two interchangeable engines implement the identical cycle semantics:
//!
//! * [`event`] (default) — jumps the clock straight to the next cycle on
//!   which anything can happen (a completion, a wake-up, a port becoming
//!   free, a dispatch unblocking), fingerprints the machine state every
//!   time an iteration retires, and once the relative state provably
//!   repeats it exits early, extrapolating the remaining iterations
//!   **exactly** (the schedule is periodic, so this is arithmetic, not
//!   approximation). All per-run buffers live in a reusable [`SimScratch`]
//!   arena so back-to-back calls allocate ~nothing.
//! * [`reference`] — the original tick-by-tick loop, retained verbatim as
//!   the equivalence oracle. Select it with
//!   [`SimConfig::reference`]` = true`.
//!
//! Both paths produce bit-identical [`SimResult`]s on every corpus kernel;
//! `tests/sim_equivalence.rs` at the workspace root enforces this.
//!
//! # Example
//!
//! ```
//! use isa::{parse_kernel, Isa};
//! use exec::{simulate, SimConfig};
//! use uarch::Machine;
//!
//! let k = parse_kernel(".L1:\n addq $1, %rax\n cmpq %rcx, %rax\n jne .L1\n", Isa::X86).unwrap();
//! let r = simulate(&Machine::golden_cove(), &k, SimConfig::default());
//! assert!(r.cycles_per_iter >= 1.0);
//! ```

pub mod event;
pub mod reference;
pub mod sanitizer;
pub mod trace;

pub use event::SimScratch;

use incore::depgraph::DepGraph;
use isa::Kernel;
use uarch::{InstrClass, InstrDesc, Machine};

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Measured iterations (after warm-up).
    pub iterations: usize,
    /// Iterations run before measurement starts, to reach steady state.
    pub warmup: usize,
    /// Enable documented silicon behaviours that the analytical in-core
    /// model deliberately ignores (see [`apply_quirks`]). These reproduce
    /// the paper's known model-vs-measurement outliers in Fig. 3.
    pub quirks: bool,
    /// Let the event-driven engine stop as soon as the per-iteration issue
    /// schedule provably repeats, extrapolating the remaining iterations
    /// exactly. Disable to force every iteration to be simulated.
    pub early_exit: bool,
    /// Run the retained naive tick-by-tick engine instead of the
    /// event-driven one. Slower; exists as the equivalence oracle for
    /// tests and the benchmark harness.
    pub reference: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            iterations: 200,
            warmup: 50,
            quirks: true,
            early_exit: true,
            reference: false,
        }
    }
}

/// Silicon behaviours beyond the port/latency model:
///
/// * **Neoverse V2 FMA accumulator forwarding** — the V2 forwards an FMA
///   result into the accumulator input of a dependent FMA after 2 cycles
///   instead of the full 4-cycle latency (Arm SOG "late accumulator
///   forwarding"). OSACA's model charges the full latency, which is why the
///   paper's Gauss-Seidel kernels on V2 are the one family OSACA
///   over-predicts (Fig. 3, left-side bars).
/// * **Zen 4 scalar FP divide** — sustained divide throughput measures
///   slightly better (≈4 cy/divide) than the documented 5 cy the model
///   uses; the paper notes exactly this for the π kernel on Zen 4.
fn apply_quirks(
    machine: &Machine,
    kernel: &Kernel,
    descs: &mut [uarch::InstrDesc],
    graph: &mut DepGraph,
) {
    match machine.arch {
        uarch::Arch::NeoverseV2 => {
            for e in &mut graph.edges {
                let prod_fma = descs[e.from].class == InstrClass::VecFma;
                let cons_fma = descs[e.to].class == InstrClass::VecFma;
                if prod_fma && cons_fma {
                    // Forward only into the accumulator operand: the edge
                    // register must be the consumer's destination too.
                    let cons = &kernel.instructions[e.to];
                    let dest_is_via = isa::dataflow::dataflow(cons)
                        .writes
                        .iter()
                        .any(|w| w.id() == e.via);
                    if dest_is_via {
                        e.weight = e.weight.min(2.0);
                    }
                }
            }
        }
        uarch::Arch::Zen4 => {
            for (d, inst) in descs.iter_mut().zip(&kernel.instructions) {
                // Scalar divides only — the packed divider matches its
                // documented throughput.
                if d.class == InstrClass::VecDiv
                    && inst.max_vec_width() <= 128
                    && uarch::instr::is_scalar_fp(inst)
                {
                    for u in &mut d.uops {
                        if u.occupancy >= 5.0 {
                            u.occupancy *= 0.8;
                        }
                    }
                }
            }
        }
        uarch::Arch::GoldenCove => {}
    }
}

/// Decode the kernel on this machine and build its dependence graph, with
/// quirks applied per `cfg`. Both execution engines start from this.
pub(crate) fn prepare(
    machine: &Machine,
    kernel: &Kernel,
    cfg: SimConfig,
) -> (Vec<InstrDesc>, DepGraph) {
    let mut descs = machine.describe_kernel(kernel);
    let mut graph = DepGraph::build(machine, kernel, &descs);
    if cfg.quirks {
        apply_quirks(machine, kernel, &mut descs, &mut graph);
    }
    (descs, graph)
}

/// Simulation outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Steady-state cycles per loop iteration.
    pub cycles_per_iter: f64,
    /// Total simulated cycles including warm-up.
    pub total_cycles: u64,
    /// µ-ops issued per cycle over the measured window.
    pub uops_per_cycle: f64,
    /// The max-cycles watchdog fired before every iteration retired; the
    /// other fields describe the truncated run.
    pub truncated: bool,
    /// Iterations actually retired in simulation before the steady-state
    /// early exit extrapolated the rest (`None` = ran to completion).
    /// Engine bookkeeping only — never affects the numeric fields.
    pub early_exit_iter: Option<usize>,
}

impl SimResult {
    pub(crate) fn empty() -> Self {
        SimResult {
            cycles_per_iter: 0.0,
            total_cycles: 0,
            uops_per_cycle: 0.0,
            truncated: false,
            early_exit_iter: None,
        }
    }
}

/// Raw counters at loop exit, shared by both engines; [`finish`] turns
/// them into a [`SimResult`] with identical arithmetic.
pub(crate) struct RawOutcome {
    pub now: u64,
    pub retired_iters: usize,
    pub issued_uops_total: u64,
    pub warmup_end_cycle: Option<u64>,
    pub warmup_issued: u64,
    pub early_exit_iter: Option<usize>,
}

pub(crate) fn finish(cfg: SimConfig, total_iters: usize, o: RawOutcome) -> SimResult {
    let start = o.warmup_end_cycle.unwrap_or(0);
    let measured_iters = (o.retired_iters.saturating_sub(cfg.warmup)).max(1) as f64;
    let measured_cycles = (o.now - start) as f64;
    SimResult {
        cycles_per_iter: measured_cycles / measured_iters,
        total_cycles: o.now,
        uops_per_cycle: (o.issued_uops_total - o.warmup_issued) as f64 / measured_cycles.max(1.0),
        truncated: o.retired_iters < total_iters,
        early_exit_iter: o.early_exit_iter,
    }
}

/// Lifecycle of one instruction instance, for the pipeline trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    pub iter: usize,
    pub idx: usize,
    pub dispatched: u64,
    /// Cycle the last µ-op issued.
    pub issued: u64,
    /// Cycle the result was available.
    pub completed: u64,
    /// Cycle the instruction retired (in order).
    pub retired: u64,
}

/// The cycle-level simulator as a [`uarch::Predictor`] — the workspace's
/// measurement stand-in (`is_reference`), anchoring relative prediction
/// error in validation runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreSimulator {
    pub config: SimConfig,
}

impl uarch::Predictor for CoreSimulator {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn predict(&self, machine: &Machine, kernel: &Kernel) -> uarch::Prediction {
        let r = simulate(machine, kernel, self.config);
        uarch::Prediction {
            cycles_per_iter: r.cycles_per_iter,
            bottleneck: uarch::Bottleneck::Measured,
            port_pressure: Vec::new(),
            uops_per_iter: r.uops_per_cycle * r.cycles_per_iter,
        }
    }

    fn is_reference(&self) -> bool {
        true
    }
}

thread_local! {
    static SCRATCH: std::cell::RefCell<SimScratch> = std::cell::RefCell::new(SimScratch::default());
}

/// The event engine packs per-µ-op issue state into one 64-bit mask; any
/// instruction wider than that (never produced by the builtin decoders,
/// but machine files are open-ended) falls back to the reference engine.
fn needs_reference(cfg: SimConfig, descs: &[InstrDesc]) -> bool {
    cfg.reference || descs.iter().any(|d| d.uop_count() > 64)
}

fn simulate_dispatch(
    machine: &Machine,
    kernel: &Kernel,
    cfg: SimConfig,
    scratch: Option<&mut SimScratch>,
    trace: Option<(&mut Vec<TraceEvent>, usize)>,
) -> SimResult {
    if kernel.instructions.is_empty() {
        return SimResult::empty();
    }
    let (descs, graph) = prepare(machine, kernel, cfg);
    if needs_reference(cfg, &descs) {
        reference::simulate(machine, cfg, &descs, &graph, trace)
    } else {
        match scratch {
            Some(s) => event::simulate(machine, cfg, &descs, &graph, s, trace),
            None => SCRATCH.with(|c| {
                event::simulate(machine, cfg, &descs, &graph, &mut c.borrow_mut(), trace)
            }),
        }
    }
}

/// Simulate a kernel and return steady-state cycles/iteration. Uses a
/// thread-local [`SimScratch`], so repeated calls on one thread reuse all
/// simulation buffers.
pub fn simulate(machine: &Machine, kernel: &Kernel, cfg: SimConfig) -> SimResult {
    simulate_dispatch(machine, kernel, cfg, None, None)
}

/// [`simulate`] with a caller-owned scratch arena — for callers that
/// manage their own worker state or want allocation behaviour to be
/// explicit. (Ignored when `cfg.reference` selects the naive engine.)
pub fn simulate_with_scratch(
    machine: &Machine,
    kernel: &Kernel,
    cfg: SimConfig,
    scratch: &mut SimScratch,
) -> SimResult {
    simulate_dispatch(machine, kernel, cfg, Some(scratch), None)
}

/// Simulate and also return the pipeline trace of the first
/// `trace_iters` iterations (dispatch → issue → complete → retire per
/// instruction instance).
pub fn simulate_traced(
    machine: &Machine,
    kernel: &Kernel,
    cfg: SimConfig,
    trace_iters: usize,
) -> (SimResult, Vec<TraceEvent>) {
    let mut events = Vec::new();
    let r = simulate_dispatch(machine, kernel, cfg, None, Some((&mut events, trace_iters)));
    events.sort_by_key(|e| (e.iter, e.idx));
    (r, events)
}

/// Convenience: steady-state cycles per iteration with default config.
pub fn cycles_per_iteration(machine: &Machine, kernel: &Kernel) -> f64 {
    simulate(machine, kernel, SimConfig::default()).cycles_per_iter
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::{parse_kernel, Isa};
    use uarch::Machine;

    fn run_x86(asm: &str, m: &Machine) -> f64 {
        let k = parse_kernel(asm, Isa::X86).unwrap();
        cycles_per_iteration(m, &k)
    }

    fn run_a64(asm: &str, m: &Machine) -> f64 {
        let k = parse_kernel(asm, Isa::AArch64).unwrap();
        cycles_per_iteration(m, &k)
    }

    /// Both engines must agree bit-for-bit on everything observable
    /// (`early_exit_iter` is engine bookkeeping, not an observable).
    fn assert_engines_agree(m: &Machine, asm: &str, isa: Isa, cfg: SimConfig) {
        let k = parse_kernel(asm, isa).unwrap();
        let ev = simulate(
            m,
            &k,
            SimConfig {
                reference: false,
                ..cfg
            },
        );
        let rf = simulate(
            m,
            &k,
            SimConfig {
                reference: true,
                ..cfg
            },
        );
        assert_eq!(
            ev.cycles_per_iter.to_bits(),
            rf.cycles_per_iter.to_bits(),
            "{asm}"
        );
        assert_eq!(ev.total_cycles, rf.total_cycles, "{asm}");
        assert_eq!(
            ev.uops_per_cycle.to_bits(),
            rf.uops_per_cycle.to_bits(),
            "{asm}"
        );
        assert_eq!(ev.truncated, rf.truncated, "{asm}");
    }

    #[test]
    fn serial_fma_chain_measures_latency() {
        // The accumulator chain forces ~4 cycles/iteration (FMA latency).
        let m = Machine::golden_cove();
        let c = run_x86(
            ".L1:\n vfmadd231pd %zmm1, %zmm2, %zmm3\n subq $1, %rax\n jne .L1\n",
            &m,
        );
        assert!((c - 4.0).abs() < 0.3, "cycles/iter = {c}");
    }

    #[test]
    fn independent_fmas_measure_throughput() {
        // 8 accumulators on 2 × 512-bit pipes → ~4 cycles per iteration
        // (2 FMAs/cycle), Table III.
        let m = Machine::golden_cove();
        let mut asm = String::from(".L1:\n");
        for i in 3..11 {
            asm.push_str(&format!("    vfmadd231pd %zmm1, %zmm2, %zmm{i}\n"));
        }
        asm.push_str("    subq $1, %rax\n    jne .L1\n");
        let c = run_x86(&asm, &m);
        assert!((c - 4.0).abs() < 0.5, "cycles/iter = {c}");
    }

    #[test]
    fn neoverse_add_throughput() {
        // 8 independent NEON adds on 4 pipes → ~2 cycles/iteration.
        let m = Machine::neoverse_v2();
        let mut asm = String::from(".L1:\n");
        for i in 0..8 {
            asm.push_str(&format!("    fadd v{i}.2d, v8.2d, v9.2d\n"));
        }
        asm.push_str("    subs x0, x0, #1\n    b.ne .L1\n");
        let c = run_a64(&asm, &m);
        assert!((2.0 - 1e-9..2.8).contains(&c), "cycles/iter = {c}");
    }

    #[test]
    fn divider_blocks_port() {
        // Four independent zmm divides at 16-cycle reciprocal throughput
        // serialize on the single divider port: ≥ 64 cycles/iteration.
        let m = Machine::golden_cove();
        let mut asm = String::from(".L1:\n");
        for i in 4..8 {
            asm.push_str(&format!("    vdivpd %zmm1, %zmm2, %zmm{i}\n"));
        }
        asm.push_str("    subq $1, %rax\n    jne .L1\n");
        let c = run_x86(&asm, &m);
        assert!(c >= 60.0, "cycles/iter = {c}");
    }

    #[test]
    fn zen4_double_pumped_fma_slower_than_glc() {
        let mut asm = String::from(".L1:\n");
        for i in 3..11 {
            asm.push_str(&format!("    vfmadd231pd %zmm1, %zmm2, %zmm{i}\n"));
        }
        asm.push_str("    subq $1, %rax\n    jne .L1\n");
        let glc = run_x86(&asm, &Machine::golden_cove());
        let zen = run_x86(&asm, &Machine::zen4());
        // Zen 4 needs two 256-bit µ-ops per zmm FMA → about twice the time.
        assert!(zen > glc * 1.6, "glc={glc} zen={zen}");
    }

    #[test]
    fn measurement_never_faster_than_model() {
        // The simulator includes strictly more constraints than the
        // analytical lower bound.
        let kernels = [
            ".L1:\n vmovupd (%rsi,%rax), %zmm0\n vaddpd %zmm0, %zmm1, %zmm2\n vmovupd %zmm2, (%rdi,%rax)\n addq $64, %rax\n cmpq %rcx, %rax\n jne .L1\n",
            ".L1:\n vmulpd %zmm4, %zmm1, %zmm2\n vaddpd %zmm2, %zmm3, %zmm4\n subq $1, %rax\n jne .L1\n",
        ];
        let m = Machine::golden_cove();
        for asm in kernels {
            let k = parse_kernel(asm, Isa::X86).unwrap();
            let sim = cycles_per_iteration(&m, &k);
            let model = incore::analyze(&m, &k).prediction;
            assert!(sim >= model - 0.05, "sim={sim} model={model} for {asm}");
        }
    }

    #[test]
    fn empty_kernel() {
        let k = isa::Kernel {
            instructions: vec![],
            isa: Isa::X86,
            loop_label: None,
        };
        let r = simulate(&Machine::zen4(), &k, SimConfig::default());
        assert_eq!(r.cycles_per_iter, 0.0);
        assert!(!r.truncated);
    }

    #[test]
    fn store_throughput_zen4_one_per_cycle() {
        let m = Machine::zen4();
        let c = run_x86(
            ".L1:\n vmovupd %ymm0, (%rdi)\n vmovupd %ymm1, 32(%rdi)\n addq $64, %rdi\n cmpq %rsi, %rdi\n jne .L1\n",
            &m,
        );
        // Single store-data port → ≥ 2 cycles for two stores.
        assert!(c >= 2.0 - 1e-9, "cycles/iter = {c}");
        assert!(c < 3.0, "cycles/iter = {c}");
    }

    #[test]
    fn steady_state_early_exit_triggers_and_is_exact() {
        // A throughput-bound kernel settles into a periodic schedule well
        // within the default budget: the event engine must take the early
        // exit and still agree bit-for-bit with the naive engine.
        let m = Machine::golden_cove();
        let asm = ".L1:\n vaddpd %zmm1, %zmm2, %zmm3\n vmulpd %zmm4, %zmm5, %zmm6\n subq $1, %rax\n jne .L1\n";
        let k = parse_kernel(asm, Isa::X86).unwrap();
        let cfg = SimConfig::default();
        let ev = simulate(&m, &k, cfg);
        let exited_at = ev.early_exit_iter.expect("steady kernel should early-exit");
        assert!(
            exited_at < cfg.warmup + cfg.iterations,
            "no iterations were saved"
        );
        assert_engines_agree(&m, asm, Isa::X86, cfg);
    }

    #[test]
    fn no_early_exit_simulates_every_iteration() {
        let m = Machine::zen4();
        let asm = ".L1:\n vaddpd %ymm1, %ymm2, %ymm3\n subq $1, %rax\n jne .L1\n";
        let k = parse_kernel(asm, Isa::X86).unwrap();
        let cfg = SimConfig {
            early_exit: false,
            ..SimConfig::default()
        };
        let full = simulate(&m, &k, cfg);
        assert_eq!(full.early_exit_iter, None);
        let fast = simulate(&m, &k, SimConfig::default());
        assert_eq!(
            full.cycles_per_iter.to_bits(),
            fast.cycles_per_iter.to_bits()
        );
        assert_eq!(full.total_cycles, fast.total_cycles);
    }

    #[test]
    fn watchdog_truncates_stalled_kernels_on_all_machines() {
        // With a zero dispatch width nothing ever enters the window, so no
        // retirement progress is possible; both engines must stop at the
        // watchdog and report a truncated run instead of spinning.
        for mut m in uarch::all_machines() {
            m.dispatch_width = 0;
            let (asm, isa) = match m.isa {
                isa::Isa::X86 => (".L1:\n addq $1, %rax\n jne .L1\n", Isa::X86),
                isa::Isa::AArch64 => (".L1:\n add x0, x0, #1\n b.ne .L1\n", Isa::AArch64),
            };
            let k = parse_kernel(asm, isa).unwrap();
            let cfg = SimConfig {
                iterations: 3,
                warmup: 1,
                ..SimConfig::default()
            };
            let max_cycles = 1_000_000 + 4 * 2_000;
            for reference in [false, true] {
                let r = simulate(&m, &k, SimConfig { reference, ..cfg });
                assert!(r.truncated, "{} reference={reference}", m.part);
                assert_eq!(r.total_cycles, max_cycles, "{}", m.part);
            }
        }
    }

    #[test]
    fn watchdog_on_retirement_stall_with_narrow_dispatch() {
        // A 2-µ-op store behind a 1-wide dispatch never fits the group,
        // so dispatch stalls forever with real (nonzero) hardware widths.
        let mut m = Machine::golden_cove();
        m.dispatch_width = 1;
        let k = parse_kernel(".L1:\n vmovupd %ymm0, (%rdi)\n jne .L1\n", Isa::X86).unwrap();
        let cfg = SimConfig {
            iterations: 2,
            warmup: 0,
            ..SimConfig::default()
        };
        let ev = simulate(&m, &k, cfg);
        let rf = simulate(
            &m,
            &k,
            SimConfig {
                reference: true,
                ..cfg
            },
        );
        assert!(ev.truncated && rf.truncated);
        assert_eq!(ev.total_cycles, rf.total_cycles);
    }

    #[test]
    fn engines_agree_on_spot_kernels() {
        let x86 = [
            ".L1:\n vfmadd231pd %zmm1, %zmm2, %zmm3\n subq $1, %rax\n jne .L1\n",
            ".L1:\n vmovupd (%rsi,%rax), %zmm0\n vaddpd %zmm0, %zmm1, %zmm2\n vmovupd %zmm2, (%rdi,%rax)\n addq $64, %rax\n cmpq %rcx, %rax\n jne .L1\n",
            ".L1:\n vdivpd %zmm1, %zmm2, %zmm4\n vdivpd %zmm1, %zmm2, %zmm5\n subq $1, %rax\n jne .L1\n",
            ".L1:\n xorq %rax, %rax\n movq %rbx, %rcx\n subq $1, %rdx\n jne .L1\n",
        ];
        let cfgs = [
            SimConfig::default(),
            SimConfig {
                iterations: 7,
                warmup: 3,
                ..SimConfig::default()
            },
            SimConfig {
                iterations: 30,
                warmup: 0,
                quirks: false,
                ..SimConfig::default()
            },
        ];
        for asm in x86 {
            for cfg in cfgs {
                assert_engines_agree(&Machine::golden_cove(), asm, Isa::X86, cfg);
                assert_engines_agree(&Machine::zen4(), asm, Isa::X86, cfg);
            }
        }
        let a64 = ".L1:\n fmla v0.2d, v1.2d, v2.2d\n fadd v3.2d, v4.2d, v5.2d\n subs x0, x0, #1\n b.ne .L1\n";
        for cfg in cfgs {
            assert_engines_agree(&Machine::neoverse_v2(), a64, Isa::AArch64, cfg);
        }
    }

    #[test]
    fn traces_agree_between_engines() {
        let m = Machine::golden_cove();
        let asm = ".L1:\n vmulpd %zmm4, %zmm1, %zmm2\n vaddpd %zmm2, %zmm3, %zmm4\n subq $1, %rax\n jne .L1\n";
        let k = parse_kernel(asm, Isa::X86).unwrap();
        let cfg = SimConfig {
            iterations: 12,
            warmup: 4,
            ..SimConfig::default()
        };
        let (ev, ev_trace) = simulate_traced(&m, &k, cfg, 6);
        let (rf, rf_trace) = simulate_traced(
            &m,
            &k,
            SimConfig {
                reference: true,
                ..cfg
            },
            6,
        );
        assert_eq!(ev_trace, rf_trace);
        assert_eq!(ev.cycles_per_iter.to_bits(), rf.cycles_per_iter.to_bits());
    }

    #[test]
    fn caller_scratch_is_reusable_across_machines_and_kernels() {
        let mut scratch = SimScratch::default();
        let blocks = [
            (
                Machine::golden_cove(),
                ".L1:\n vaddpd %zmm1, %zmm2, %zmm3\n subq $1, %rax\n jne .L1\n",
            ),
            (
                Machine::zen4(),
                ".L1:\n vfmadd231pd %ymm1, %ymm2, %ymm3\n subq $1, %rax\n jne .L1\n",
            ),
            (
                Machine::golden_cove(),
                ".L1:\n vdivpd %zmm1, %zmm2, %zmm4\n subq $1, %rax\n jne .L1\n",
            ),
        ];
        for (m, asm) in &blocks {
            let k = parse_kernel(asm, Isa::X86).unwrap();
            let fresh = simulate(m, &k, SimConfig::default());
            let reused = simulate_with_scratch(m, &k, SimConfig::default(), &mut scratch);
            assert_eq!(fresh, reused);
            // And again, to exercise re-initialization of dirty buffers.
            let again = simulate_with_scratch(m, &k, SimConfig::default(), &mut scratch);
            assert_eq!(fresh, again);
        }
    }
}
