//! Seeded-violation tests: prove that each sanitizer check (S001–S004)
//! actually fires when its invariant is broken, by injecting a one-shot
//! fault into the *observed* values of the corresponding check while the
//! real simulator state stays correct.
//!
//! The checks exist only in debug builds, so this whole suite is gated on
//! `debug_assertions` (a release `cargo test` compiles it to nothing).
#![cfg(debug_assertions)]

use exec::sanitizer::{capture, inject, Fault, Violation};
use exec::{simulate, SimConfig};
use isa::{parse_kernel, Isa};
use uarch::Machine;

/// A pipelined FMA loop: exercises clock jumps, port grants, wake-ups.
const FMA: &str = ".L1:\n vfmadd231pd %zmm1, %zmm2, %zmm3\n subq $1, %rax\n jne .L1\n";

/// A blocking-divider loop: the steady-state early exit must *teleport*
/// (occupancy > 1 gates off the closed-form drain), exercising S004.
const DIV: &str = ".L1:\n vdivpd %zmm1, %zmm2, %zmm4\n subq $1, %rax\n jne .L1\n";

fn run(asm: &str) -> exec::SimResult {
    let k = parse_kernel(asm, Isa::X86).unwrap();
    simulate(&Machine::golden_cove(), &k, SimConfig::default())
}

#[test]
fn clean_runs_report_no_violations() {
    for asm in [FMA, DIV] {
        let (r, v) = capture(|| run(asm));
        assert!(v.is_empty(), "{asm}: {v:?}");
        assert!(r.cycles_per_iter > 0.0);
    }
}

#[test]
fn s001_fires_on_injected_clock_stall() {
    let (r, v) = capture(|| {
        inject(Fault::ClockStall);
        run(FMA)
    });
    assert!(
        v.iter()
            .any(|x| matches!(x, Violation::ClockNotMonotone { before, after } if after <= before)),
        "{v:?}"
    );
    // The fault perturbed only the checker's view: results are untouched.
    let clean = run(FMA);
    assert_eq!(r, clean);
}

#[test]
fn s002_fires_on_injected_double_grant() {
    let (_, v) = capture(|| {
        inject(Fault::PortDoubleGrant);
        run(FMA)
    });
    assert_eq!(
        v.iter().filter(|x| x.code() == "S002").count(),
        1,
        "one-shot fault must fire exactly once: {v:?}"
    );
    assert!(
        v.iter()
            .any(|x| matches!(x, Violation::PortOvercommit { taken: true, .. })),
        "{v:?}"
    );
}

#[test]
fn s003_fires_on_injected_early_wakeup() {
    let (_, v) = capture(|| {
        inject(Fault::EarlyWakeup);
        run(FMA)
    });
    assert!(
        v.iter().any(
            |x| matches!(x, Violation::EarlyWakeup { cycle, ready_at, .. } if ready_at > cycle)
        ),
        "{v:?}"
    );
}

#[test]
fn s004_fires_on_injected_teleport_skew() {
    // First establish the kernel really teleports: a run with the fault
    // armed must consume it (the check ran), and the violation names S004.
    let (r, v) = capture(|| {
        inject(Fault::TeleportSkew);
        run(DIV)
    });
    assert!(
        v.iter()
            .any(|x| matches!(x, Violation::TeleportSkew { .. })),
        "expected the divider loop to take the teleport path and the seeded \
         fingerprint skew to be caught: {v:?}"
    );
    assert!(r.early_exit_iter.is_some(), "teleport implies early exit");
}

#[test]
fn s004_holds_on_real_teleports_across_machines() {
    // The real (unseeded) S004 check runs on every teleport in this suite;
    // drive it over blocking kernels on all three machines.
    let blocks = [
        (Machine::golden_cove(), DIV, Isa::X86),
        (
            Machine::zen4(),
            ".L1:\n vdivpd %ymm1, %ymm2, %ymm4\n subq $1, %rax\n jne .L1\n",
            Isa::X86,
        ),
        (
            Machine::neoverse_v2(),
            ".L1:\n fdiv v0.2d, v1.2d, v2.2d\n subs x5, x5, #1\n b.ne .L1\n",
            Isa::AArch64,
        ),
    ];
    for (m, asm, isa) in blocks {
        let k = parse_kernel(asm, isa).unwrap();
        let (r, v) = capture(|| simulate(&m, &k, SimConfig::default()));
        assert!(v.is_empty(), "{}: {v:?}", m.arch.label());
        assert!(r.total_cycles > 0);
    }
}
