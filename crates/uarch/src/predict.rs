//! The unified predictor contract.
//!
//! Three independent tools in this workspace can put a number on "cycles
//! per iteration" for a kernel on a machine: the OSACA-style analytical
//! in-core model (`incore`), the LLVM-MCA-style baseline (`mca`), and the
//! cycle-level out-of-order simulator (`exec`, the hardware stand-in).
//! Historically each had its own ad-hoc entry point; [`Predictor`] gives
//! them one signature so batch pipelines, divergence lints, and CLI
//! front ends can fan out over *any* set of predictors without knowing
//! which concrete tool is behind each one.
//!
//! The trait lives here (and not in a predictor crate) because `uarch` is
//! the one layer every predictor already depends on: the contract is
//! "machine description + parsed kernel in, [`Prediction`] out".

use crate::Machine;
use isa::Kernel;

/// What a predictor says limits the kernel's steady-state throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bottleneck {
    /// The busiest execution port(s).
    PortPressure,
    /// A loop-carried dependency chain.
    Dependency,
    /// The dispatch/rename width.
    FrontEnd,
    /// The number is a measurement (simulator/hardware), not attributed
    /// to a single analytical bound.
    Measured,
    /// The predictor does not attribute its number to a cause.
    Unattributed,
}

impl Bottleneck {
    pub fn label(self) -> &'static str {
        match self {
            Bottleneck::PortPressure => "port-pressure",
            Bottleneck::Dependency => "dependency",
            Bottleneck::FrontEnd => "front-end",
            Bottleneck::Measured => "measured",
            Bottleneck::Unattributed => "unattributed",
        }
    }
}

impl std::fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A predictor's verdict on one kernel × machine pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Steady-state block throughput in cycles per loop iteration.
    pub cycles_per_iter: f64,
    /// What the predictor thinks binds that number.
    pub bottleneck: Bottleneck,
    /// Cycles of work per port, indexed like `machine.port_model.ports`.
    /// Empty when the predictor has no per-port view.
    pub port_pressure: Vec<f64>,
    /// µ-ops per iteration after the predictor's decomposition.
    pub uops_per_iter: f64,
}

/// A block-throughput predictor: one machine + one kernel in, one
/// [`Prediction`] out.
///
/// Implementations must be pure with respect to their inputs (no hidden
/// per-call state), which is what lets the batch engine evaluate a corpus
/// in parallel and memoize freely.
pub trait Predictor: Send + Sync {
    /// Stable identifier used in reports and JSON (`"incore"`, `"mca"`,
    /// `"sim"`, ...).
    fn name(&self) -> &'static str;

    /// Predict the block throughput of `kernel` on `machine`.
    fn predict(&self, machine: &Machine, kernel: &Kernel) -> Prediction;

    /// Whether this predictor stands in for a measurement (ground truth)
    /// rather than an analytical model. Exactly one reference predictor
    /// anchors relative prediction error in a validation run.
    fn is_reference(&self) -> bool {
        false
    }

    /// [`predict`](Predictor::predict) plus the wall-clock time the call
    /// took. Batch pipelines use this to attribute run time to each
    /// predictor (e.g. the `timings` block of `validate --json`) without
    /// every implementation having to care about clocks; the timing is
    /// observational only and must never influence the prediction.
    fn predict_timed(
        &self,
        machine: &Machine,
        kernel: &Kernel,
    ) -> (Prediction, std::time::Duration) {
        let start = std::time::Instant::now();
        let p = self.predict(machine, kernel);
        (p, start.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predict_timed_wraps_predict() {
        struct Fixed;
        impl Predictor for Fixed {
            fn name(&self) -> &'static str {
                "fixed"
            }
            fn predict(&self, _m: &Machine, _k: &Kernel) -> Prediction {
                Prediction {
                    cycles_per_iter: 2.5,
                    bottleneck: Bottleneck::Unattributed,
                    port_pressure: Vec::new(),
                    uops_per_iter: 1.0,
                }
            }
        }
        let k = Kernel {
            instructions: vec![],
            isa: isa::Isa::X86,
            loop_label: None,
        };
        let (p, t) = Fixed.predict_timed(&Machine::golden_cove(), &k);
        assert_eq!(p.cycles_per_iter, 2.5);
        assert!(t.as_nanos() > 0 || t.is_zero()); // a Duration, possibly 0 on coarse clocks
    }

    #[test]
    fn bottleneck_labels_are_stable() {
        assert_eq!(Bottleneck::PortPressure.label(), "port-pressure");
        assert_eq!(Bottleneck::Dependency.label(), "dependency");
        assert_eq!(Bottleneck::FrontEnd.label(), "front-end");
        assert_eq!(Bottleneck::Measured.label(), "measured");
        assert_eq!(Bottleneck::Unattributed.to_string(), "unattributed");
    }
}
