//! Database-coverage tests: a broad sample of real compiler output must
//! resolve without the heuristic fallback on every machine of its ISA.

#![cfg(test)]

use crate::Machine;

const X86_SAMPLE: &[&str] = &[
    // integer
    "addq %rax, %rbx",
    "subl $4, %ecx",
    "andq $-32, %rsp",
    "imulq %rdx, %rax",
    "idivq %rcx",
    "leaq 16(%rax,%rbx,8), %rcx",
    "shlq $3, %rax",
    "sarq $1, %rdx",
    "cmpq %r8, %r9",
    "testl %eax, %eax",
    "cmovgq %rax, %rbx",
    "sete %al",
    "popcntq %rax, %rbx",
    "lzcntq %rax, %rbx",
    "tzcntl %eax, %ebx",
    "bswapq %rax",
    "btq $3, %rax",
    "shldq $4, %rax, %rbx",
    "cqo",
    "andnq %rax, %rbx, %rcx",
    "movzbl %al, %eax",
    "pushq %rbp",
    "popq %rbp",
    // scalar FP
    "addsd %xmm1, %xmm0",
    "vaddsd %xmm1, %xmm2, %xmm3",
    "vmulsd %xmm1, %xmm2, %xmm3",
    "vdivsd %xmm1, %xmm2, %xmm3",
    "vsqrtsd %xmm1, %xmm1, %xmm2",
    "vfmadd231sd %xmm1, %xmm2, %xmm3",
    "ucomisd %xmm0, %xmm1",
    "vcvtsi2sdq %rax, %xmm0, %xmm1",
    "cvttsd2si %xmm0, %rax",
    "vroundsd $9, %xmm1, %xmm2, %xmm3",
    "vmaxsd %xmm1, %xmm2, %xmm3",
    // packed FP, all widths
    "vaddpd %xmm1, %xmm2, %xmm3",
    "vaddpd %ymm1, %ymm2, %ymm3",
    "vaddpd %zmm1, %zmm2, %zmm3",
    "vmulpd %ymm1, %ymm2, %ymm3",
    "vdivpd %ymm1, %ymm2, %ymm3",
    "vsqrtpd %ymm1, %ymm2",
    "vfmadd132pd %zmm1, %zmm2, %zmm3",
    "vfnmadd231pd %ymm1, %ymm2, %ymm3",
    "vandpd %ymm1, %ymm2, %ymm3",
    "vandnpd %ymm1, %ymm2, %ymm3",
    "vxorps %ymm1, %ymm2, %ymm3",
    "vblendvpd %ymm0, %ymm1, %ymm2, %ymm3",
    "vcmppd $1, %ymm1, %ymm2, %ymm3",
    "vroundpd $0, %ymm1, %ymm2",
    "vhaddpd %ymm1, %ymm2, %ymm3",
    // shuffles / moves
    "vunpcklpd %ymm1, %ymm2, %ymm3",
    "vshufpd $1, %ymm1, %ymm2, %ymm3",
    "vpermilpd $5, %ymm1, %ymm2",
    "vinsertf128 $1, %xmm1, %ymm2, %ymm3",
    "vextractf128 $1, %ymm1, %xmm2",
    "vbroadcastsd %xmm1, %ymm2",
    "vmovddup %xmm1, %xmm2",
    "movsd %xmm1, %xmm2",
    "vmovq %rax, %xmm0",
    "vmovmskpd %ymm1, %eax",
    // packed int
    "vpaddq %ymm1, %ymm2, %ymm3",
    "vpsubd %ymm1, %ymm2, %ymm3",
    "vpmulld %ymm1, %ymm2, %ymm3",
    "vpsllq $3, %ymm1, %ymm2",
    "vpcmpeqq %ymm1, %ymm2, %ymm3",
    "vpmovzxdq %xmm1, %ymm2",
    "vpbroadcastq %xmm1, %ymm2",
    "vpabsd %ymm1, %ymm2",
    // memory forms
    "movq (%rax), %rbx",
    "movq %rbx, 8(%rax)",
    "vmovupd (%rax), %ymm1",
    "vmovupd %ymm1, (%rax)",
    "vmovntpd %ymm1, (%rax)",
    "vaddpd (%rax), %ymm1, %ymm2",
    "addq $1, (%rax)",
    "vbroadcastsd (%rax), %ymm1",
    // masks
    "kmovw %eax, %k1",
    "kandw %k1, %k2, %k3",
    "kshiftrw $4, %k1, %k2",
    // branches
    "jne .L1",
    "jmp .L2",
    "call foo",
    "ret",
];

const A64_SAMPLE: &[&str] = &[
    // integer
    "add x0, x1, x2",
    "add x0, x1, x2, lsl #3",
    "subs x0, x1, #16",
    "madd x0, x1, x2, x3",
    "umulh x0, x1, x2",
    "sdiv x0, x1, x2",
    "lsl x0, x1, #3",
    "ubfx x0, x1, #8, #8",
    "cmp x0, x1",
    "csel x0, x1, x2, ne",
    "cset x0, gt",
    "rbit x0, x1",
    "clz x0, x1",
    "rev x0, x1",
    "adc x0, x1, x2",
    "smaddl x0, w1, w2, x3",
    "crc32x w0, w1, x2",
    "mov x0, #42",
    "movk x0, #1, lsl #16",
    "adrp x0, sym",
    // scalar FP
    "fadd d0, d1, d2",
    "fmul d0, d1, d2",
    "fdiv d0, d1, d2",
    "fsqrt d0, d1",
    "fmadd d0, d1, d2, d3",
    "fneg d0, d1",
    "fabs d0, d1",
    "fcvtzs x0, d1",
    "scvtf d0, x1",
    "fcmp d0, d1",
    "fcsel d0, d1, d2, gt",
    "fmov d0, #1.0",
    // NEON
    "fadd v0.2d, v1.2d, v2.2d",
    "fmla v0.2d, v1.2d, v2.2d",
    "fdiv v0.2d, v1.2d, v2.2d",
    "fmax v0.2d, v1.2d, v2.2d",
    "faddp v0.2d, v1.2d, v2.2d",
    "fabs v0.2d, v1.2d",
    "add v0.2d, v1.2d, v2.2d",
    "and v0.16b, v1.16b, v2.16b",
    "bsl v0.16b, v1.16b, v2.16b",
    "dup v0.2d, v1.2d",
    "movi v0.2d, #0",
    "zip1 v0.2d, v1.2d, v2.2d",
    "ext v0.16b, v1.16b, v2.16b, #8",
    "xtn v0.2s, v1.2d",
    "shl v0.2d, v1.2d, #2",
    "faddv s0, p0, z1.s",
    "fmaxv d0, v1.2d",
    "addv b0, v1.8b",
    "umov x0, v1.2d",
    "frecpe v0.2d, v1.2d",
    // SVE
    "whilelo p0.d, x3, x4",
    "ptrue p0.d",
    "cntd x0",
    "incd x4",
    "fadd z0.d, z1.d, z2.d",
    "fmla z0.d, p0/m, z1.d, z2.d",
    "index z0.d, #0, #1",
    "cmpgt p1.d, p0/z, z1.d, z2.d",
    "sel z0.d, p0, z1.d, z2.d",
    "uzp1 z0.d, z1.d, z2.d",
    "lasta d0, p0, z1.d",
    "movprfx z0, z1",
    // memory
    "ldr x0, [x1]",
    "ldr q0, [x1, x2]",
    "ldr d0, [x1, #8]",
    "ldp q0, q1, [x2]",
    "str q0, [x1], #16",
    "stp x0, x1, [sp, #-16]!",
    "stnp q0, q1, [x1]",
    "ld1d {z0.d}, p0/z, [x0, x1, lsl #3]",
    "st1d {z0.d}, p0, [x0, x1, lsl #3]",
    "ld1d {z0.d}, p0/z, [x0, z1.d]",
    "prfm pldl1keep, [x0]",
    // branches
    "b .L1",
    "b.ne .L1",
    "cbnz x0, .L1",
    "tbz x0, #3, .L1",
    "ret",
];

fn assert_covered(machine: &Machine, samples: &[&str]) {
    let mut missing = Vec::new();
    for s in samples {
        let parsed = match machine.isa {
            isa::Isa::X86 => isa::parse::parse_line_x86(s, 1),
            isa::Isa::AArch64 => isa::parse::parse_line_aarch64(s, 1),
        };
        let inst = parsed
            .unwrap_or_else(|e| panic!("sample `{s}` failed to parse: {e}"))
            .unwrap_or_else(|| panic!("sample `{s}` produced no instruction"));
        let d = machine.describe(&inst);
        if d.from_fallback {
            missing.push(*s);
        }
    }
    assert!(
        missing.is_empty(),
        "{}: {} instructions not covered:\n  {}",
        machine.arch.label(),
        missing.len(),
        missing.join("\n  ")
    );
}

#[test]
fn golden_cove_covers_x86_sample() {
    assert_covered(&Machine::golden_cove(), X86_SAMPLE);
}

#[test]
fn zen4_covers_x86_sample() {
    assert_covered(&Machine::zen4(), X86_SAMPLE);
}

#[test]
fn neoverse_v2_covers_aarch64_sample() {
    assert_covered(&Machine::neoverse_v2(), A64_SAMPLE);
}

#[test]
fn latencies_are_plausible_everywhere() {
    for m in crate::all_machines() {
        let samples = if m.isa == isa::Isa::X86 {
            X86_SAMPLE
        } else {
            A64_SAMPLE
        };
        for s in samples {
            let inst = match m.isa {
                isa::Isa::X86 => isa::parse::parse_line_x86(s, 1).unwrap().unwrap(),
                isa::Isa::AArch64 => isa::parse::parse_line_aarch64(s, 1).unwrap().unwrap(),
            };
            let d = m.describe(&inst);
            assert!(
                d.latency <= 30,
                "{s} on {}: latency {}",
                m.arch.label(),
                d.latency
            );
            for uop in &d.uops {
                assert!(!uop.ports.is_empty(), "{s}: µ-op without ports");
                assert!(
                    uop.occupancy >= 1.0 || d.uops.is_empty(),
                    "{s}: occupancy < 1"
                );
            }
        }
    }
}
