//! Machine files: JSON import/export of complete machine models.
//!
//! The paper chose OSACA because it "provides the user with the possibility
//! of adding new microarchitectures into the existing framework relatively
//! easily" — OSACA machine models are editable YAML files. This module is
//! the equivalent mechanism here: every [`Machine`] can be exported to a
//! self-contained JSON document ([`Machine::to_json`]) and a (possibly
//! hand-edited) document can be loaded back ([`Machine::from_json`]),
//! making it possible to model a new core — or tweak an existing one —
//! without touching Rust code.
//!
//! Custom machines declare which of the three base microarchitecture
//! families they belong to (`"neoverse-v2"`, `"golden-cove"`, `"zen4"`);
//! the family selects ISA conventions and the node-level policy defaults.

use crate::instr::{Entry, InstrClass, Uop, WidthClass};
use crate::machine::{Arch, CacheLevel, Machine, MemorySpec};
use crate::ports::{Port, PortCap, PortModel, PortSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error loading a machine spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "machine spec error: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineSpec {
    pub arch: String,
    /// Registry identity of derived models. Absent on the three shipped
    /// family models (their identity is implied by `arch`), so their
    /// exports are unchanged from earlier schema revisions.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub id: Option<String>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub name: Option<String>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub chip: Option<String>,
    pub part: String,
    pub ports: Vec<PortSpec>,
    pub dispatch_width: u32,
    pub retire_width: u32,
    pub rob_size: u32,
    pub sched_size: u32,
    pub move_elimination: bool,
    pub load_ports: Vec<String>,
    pub load_ports_wide: Vec<String>,
    pub store_agu_ports: Vec<String>,
    pub store_data_ports: Vec<String>,
    pub l1_load_latency: u32,
    pub load_width_bits: u16,
    pub store_width_bits: u16,
    pub cores: u32,
    pub base_freq_ghz: f64,
    pub max_freq_ghz: f64,
    pub simd_width_bits: u16,
    /// Widest ISA vector width the model decodes; absent when it equals
    /// the family default (128 on neoverse-v2, 512 on the x86 families).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub max_isa_vec_bits: Option<u16>,
    pub int_units: u32,
    pub fp_vec_units: u32,
    pub caches: Vec<CacheSpec>,
    pub memory: MemorySpecSpec,
    pub tdp_w: f64,
    pub numa_domains: u32,
    pub fma_dp_flops_per_cycle: u32,
    pub extra_add_dp_flops_per_cycle: u32,
    pub instructions: Vec<EntrySpec>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PortSpec {
    pub name: String,
    pub caps: Vec<String>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheSpec {
    pub name: String,
    pub size_kib: u64,
    pub line_bytes: u32,
    pub assoc: u32,
    pub shared: bool,
    pub latency_cy: u32,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemorySpecSpec {
    pub size_gb: u32,
    pub mem_type: String,
    pub theor_bw_gbs: f64,
    pub efficiency: f64,
    pub latency_ns: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EntrySpec {
    pub mnemonics: Vec<String>,
    pub width: String,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub mem: Option<bool>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub vector_index: Option<bool>,
    pub uops: Vec<UopSpec>,
    pub latency: u32,
    pub rthroughput: f64,
    pub class: String,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UopSpec {
    pub ports: Vec<String>,
    pub occupancy: f64,
}

fn cap_name(c: PortCap) -> &'static str {
    match c {
        PortCap::IntAlu => "int-alu",
        PortCap::IntMul => "int-mul",
        PortCap::Branch => "branch",
        PortCap::VecAlu => "vec-alu",
        PortCap::VecFma => "vec-fma",
        PortCap::VecDiv => "vec-div",
        PortCap::Load => "load",
        PortCap::StoreAgu => "store-agu",
        PortCap::StoreData => "store-data",
        PortCap::PredOp => "pred-op",
    }
}

fn cap_from(s: &str) -> Result<PortCap, SpecError> {
    Ok(match s {
        "int-alu" => PortCap::IntAlu,
        "int-mul" => PortCap::IntMul,
        "branch" => PortCap::Branch,
        "vec-alu" => PortCap::VecAlu,
        "vec-fma" => PortCap::VecFma,
        "vec-div" => PortCap::VecDiv,
        "load" => PortCap::Load,
        "store-agu" => PortCap::StoreAgu,
        "store-data" => PortCap::StoreData,
        "pred-op" => PortCap::PredOp,
        other => return Err(SpecError(format!("unknown port capability `{other}`"))),
    })
}

fn width_name(w: WidthClass) -> &'static str {
    match w {
        WidthClass::Any => "any",
        WidthClass::Scalar => "scalar",
        WidthClass::V128 => "v128",
        WidthClass::V256 => "v256",
        WidthClass::V512 => "v512",
        WidthClass::ScalarFp => "scalar-fp",
    }
}

fn width_from(s: &str) -> Result<WidthClass, SpecError> {
    Ok(match s {
        "any" => WidthClass::Any,
        "scalar" => WidthClass::Scalar,
        "v128" => WidthClass::V128,
        "v256" => WidthClass::V256,
        "v512" => WidthClass::V512,
        "scalar-fp" => WidthClass::ScalarFp,
        other => return Err(SpecError(format!("unknown width class `{other}`"))),
    })
}

fn class_name(c: InstrClass) -> &'static str {
    match c {
        InstrClass::IntAlu => "int-alu",
        InstrClass::IntMul => "int-mul",
        InstrClass::IntDiv => "int-div",
        InstrClass::VecAlu => "vec-alu",
        InstrClass::VecMul => "vec-mul",
        InstrClass::VecFma => "vec-fma",
        InstrClass::VecDiv => "vec-div",
        InstrClass::Load => "load",
        InstrClass::Store => "store",
        InstrClass::Branch => "branch",
        InstrClass::Move => "move",
        InstrClass::Eliminated => "eliminated",
        InstrClass::Other => "other",
    }
}

fn class_from(s: &str) -> Result<InstrClass, SpecError> {
    Ok(match s {
        "int-alu" => InstrClass::IntAlu,
        "int-mul" => InstrClass::IntMul,
        "int-div" => InstrClass::IntDiv,
        "vec-alu" => InstrClass::VecAlu,
        "vec-mul" => InstrClass::VecMul,
        "vec-fma" => InstrClass::VecFma,
        "vec-div" => InstrClass::VecDiv,
        "load" => InstrClass::Load,
        "store" => InstrClass::Store,
        "branch" => InstrClass::Branch,
        "move" => InstrClass::Move,
        "eliminated" => InstrClass::Eliminated,
        "other" => InstrClass::Other,
        other => return Err(SpecError(format!("unknown instruction class `{other}`"))),
    })
}

fn arch_name(a: Arch) -> &'static str {
    match a {
        Arch::NeoverseV2 => "neoverse-v2",
        Arch::GoldenCove => "golden-cove",
        Arch::Zen4 => "zen4",
    }
}

/// Family default for [`Machine::max_isa_vec_bits`]: NEON is 128-bit on
/// neoverse-v2; both x86 families decode AVX-512.
fn family_max_vec_bits(a: Arch) -> u16 {
    match a {
        Arch::NeoverseV2 => 128,
        Arch::GoldenCove | Arch::Zen4 => 512,
    }
}

fn arch_from(s: &str) -> Result<Arch, SpecError> {
    Ok(match s {
        "neoverse-v2" => Arch::NeoverseV2,
        "golden-cove" => Arch::GoldenCove,
        "zen4" => Arch::Zen4,
        other => {
            return Err(SpecError(format!(
                "unknown microarchitecture family `{other}` (use neoverse-v2, golden-cove, or zen4)"
            )))
        }
    })
}

impl MachineSpec {
    /// Build a spec from a live machine model.
    pub fn from_machine(m: &Machine) -> MachineSpec {
        let port_names = |set: PortSet| -> Vec<String> {
            set.iter()
                .map(|i| m.port_model.ports[i].name.to_string())
                .collect()
        };
        let defaulted = |value: &'static str, default: &str| -> Option<String> {
            (value != default).then(|| value.to_string())
        };
        MachineSpec {
            arch: arch_name(m.arch).to_string(),
            id: defaulted(m.id, arch_name(m.arch)),
            name: defaulted(m.name, m.arch.label()),
            chip: defaulted(m.chip, m.arch.chip()),
            part: m.part.to_string(),
            ports: m
                .port_model
                .ports
                .iter()
                .map(|p| PortSpec {
                    name: p.name.to_string(),
                    caps: p.caps.iter().map(|c| cap_name(*c).to_string()).collect(),
                })
                .collect(),
            dispatch_width: m.dispatch_width,
            retire_width: m.retire_width,
            rob_size: m.rob_size,
            sched_size: m.sched_size,
            move_elimination: m.move_elimination,
            load_ports: port_names(m.load_ports),
            load_ports_wide: port_names(m.load_ports_wide),
            store_agu_ports: port_names(m.store_agu_ports),
            store_data_ports: port_names(m.store_data_ports),
            l1_load_latency: m.l1_load_latency,
            load_width_bits: m.load_width_bits,
            store_width_bits: m.store_width_bits,
            cores: m.cores,
            base_freq_ghz: m.base_freq_ghz,
            max_freq_ghz: m.max_freq_ghz,
            simd_width_bits: m.simd_width_bits,
            max_isa_vec_bits: (m.max_isa_vec_bits != family_max_vec_bits(m.arch))
                .then_some(m.max_isa_vec_bits),
            int_units: m.int_units,
            fp_vec_units: m.fp_vec_units,
            caches: m
                .caches
                .iter()
                .map(|c| CacheSpec {
                    name: c.name.to_string(),
                    size_kib: c.size_kib,
                    line_bytes: c.line_bytes,
                    assoc: c.assoc,
                    shared: c.shared,
                    latency_cy: c.latency_cy,
                })
                .collect(),
            memory: MemorySpecSpec {
                size_gb: m.memory.size_gb,
                mem_type: m.memory.mem_type.to_string(),
                theor_bw_gbs: m.memory.theor_bw_gbs,
                efficiency: m.memory.efficiency,
                latency_ns: m.memory.latency_ns,
            },
            tdp_w: m.tdp_w,
            numa_domains: m.numa_domains,
            fma_dp_flops_per_cycle: m.fma_dp_flops_per_cycle,
            extra_add_dp_flops_per_cycle: m.extra_add_dp_flops_per_cycle,
            instructions: m
                .table
                .iter()
                .map(|e| EntrySpec {
                    mnemonics: e.mnemonics.iter().map(|s| s.to_string()).collect(),
                    width: width_name(e.width).to_string(),
                    mem: e.mem,
                    vector_index: e.vector_index,
                    uops: e
                        .uops
                        .iter()
                        .map(|u| UopSpec {
                            ports: port_names(u.ports),
                            occupancy: u.occupancy,
                        })
                        .collect(),
                    latency: e.latency,
                    rthroughput: e.rthroughput,
                    class: class_name(e.class).to_string(),
                })
                .collect(),
        }
    }

    /// Materialize the spec as a machine model. String data (mnemonics,
    /// part names) is interned with `Box::leak` — machine models are loaded
    /// once and live for the program's lifetime, as in OSACA.
    pub fn to_machine(&self) -> Result<Machine, SpecError> {
        let arch = arch_from(&self.arch)?;
        let ports: Vec<Port> = self
            .ports
            .iter()
            .map(|p| {
                Ok(Port {
                    name: leak(&p.name),
                    caps: p
                        .caps
                        .iter()
                        .map(|c| cap_from(c))
                        .collect::<Result<_, _>>()?,
                })
            })
            .collect::<Result<_, SpecError>>()?;
        let port_model = PortModel { ports };
        let resolve_set = |names: &[String]| -> Result<PortSet, SpecError> {
            let mut s = PortSet::EMPTY;
            for n in names {
                let i = port_model
                    .index_of(n)
                    .ok_or_else(|| SpecError(format!("unknown port `{n}`")))?;
                s = s.union(PortSet::single(i));
            }
            Ok(s)
        };

        let mut table = Vec::with_capacity(self.instructions.len());
        for e in &self.instructions {
            let mnemonics: &'static [&'static str] = Box::leak(
                e.mnemonics
                    .iter()
                    .map(|m| leak(m))
                    .collect::<Vec<&'static str>>()
                    .into_boxed_slice(),
            );
            let mut uops = Vec::with_capacity(e.uops.len());
            for u in &e.uops {
                let ports = resolve_set(&u.ports)?;
                if ports.is_empty() {
                    return Err(SpecError(format!(
                        "entry for {:?} has a µ-op with no ports",
                        e.mnemonics
                    )));
                }
                uops.push(Uop {
                    ports,
                    occupancy: u.occupancy,
                });
            }
            table.push(Entry {
                mnemonics,
                width: width_from(&e.width)?,
                mem: e.mem,
                vector_index: e.vector_index,
                uops,
                latency: e.latency,
                rthroughput: e.rthroughput,
                class: class_from(&e.class)?,
            });
        }

        if self.caches.is_empty() {
            return Err(SpecError("at least one cache level is required".into()));
        }
        if self.dispatch_width == 0 {
            return Err(SpecError("dispatch_width must be positive".into()));
        }

        let or_default = |value: &Option<String>, default: &'static str| -> &'static str {
            match value {
                Some(s) => leak(s),
                None => default,
            }
        };
        Ok(Machine {
            arch,
            id: or_default(&self.id, arch_name(arch)),
            name: or_default(&self.name, arch.label()),
            chip: or_default(&self.chip, arch.chip()),
            part: leak(&self.part),
            isa: match arch {
                Arch::NeoverseV2 => isa::Isa::AArch64,
                _ => isa::Isa::X86,
            },
            max_isa_vec_bits: self.max_isa_vec_bits.unwrap_or(family_max_vec_bits(arch)),
            load_ports: resolve_set(&self.load_ports)?,
            load_ports_wide: resolve_set(&self.load_ports_wide)?,
            store_agu_ports: resolve_set(&self.store_agu_ports)?,
            store_data_ports: resolve_set(&self.store_data_ports)?,
            port_model,
            table,
            dispatch_width: self.dispatch_width,
            retire_width: self.retire_width,
            rob_size: self.rob_size,
            sched_size: self.sched_size,
            move_elimination: self.move_elimination,
            l1_load_latency: self.l1_load_latency,
            load_width_bits: self.load_width_bits,
            store_width_bits: self.store_width_bits,
            cores: self.cores,
            base_freq_ghz: self.base_freq_ghz,
            max_freq_ghz: self.max_freq_ghz,
            simd_width_bits: self.simd_width_bits,
            int_units: self.int_units,
            fp_vec_units: self.fp_vec_units,
            caches: self
                .caches
                .iter()
                .map(|c| CacheLevel {
                    name: leak(&c.name),
                    size_kib: c.size_kib,
                    line_bytes: c.line_bytes,
                    assoc: c.assoc,
                    shared: c.shared,
                    latency_cy: c.latency_cy,
                })
                .collect(),
            memory: MemorySpec {
                size_gb: self.memory.size_gb,
                mem_type: leak(&self.memory.mem_type),
                theor_bw_gbs: self.memory.theor_bw_gbs,
                efficiency: self.memory.efficiency,
                latency_ns: self.memory.latency_ns,
            },
            tdp_w: self.tdp_w,
            numa_domains: self.numa_domains,
            fma_dp_flops_per_cycle: self.fma_dp_flops_per_cycle,
            extra_add_dp_flops_per_cycle: self.extra_add_dp_flops_per_cycle,
        })
    }
}

fn leak(s: &str) -> &'static str {
    Box::leak(s.to_string().into_boxed_str())
}

impl Machine {
    /// Export this machine model as a pretty-printed JSON machine file.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&MachineSpec::from_machine(self))
            .expect("machine spec serializes")
    }

    /// Load a machine model from a JSON machine file.
    pub fn from_json(json: &str) -> Result<Machine, SpecError> {
        let spec: MachineSpec =
            serde_json::from_str(json).map_err(|e| SpecError(format!("invalid JSON: {e}")))?;
        spec.to_machine()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A loaded machine must behave identically to the built-in one.
    #[test]
    fn roundtrip_preserves_behaviour() {
        for original in crate::all_machines() {
            let json = original.to_json();
            let loaded = Machine::from_json(&json).expect("roundtrip load");
            assert_eq!(loaded.arch, original.arch);
            assert_eq!(
                loaded.port_model.num_ports(),
                original.port_model.num_ports()
            );
            assert_eq!(loaded.table.len(), original.table.len());
            assert_eq!(loaded.table2_row(), original.table2_row());

            // Describe a sample instruction identically.
            let line = match original.isa {
                isa::Isa::X86 => "vfmadd231pd %zmm1, %zmm2, %zmm3",
                isa::Isa::AArch64 => "fmla v0.2d, v1.2d, v2.2d",
            };
            let inst = match original.isa {
                isa::Isa::X86 => isa::parse::parse_line_x86(line, 1).unwrap().unwrap(),
                isa::Isa::AArch64 => isa::parse::parse_line_aarch64(line, 1).unwrap().unwrap(),
            };
            assert_eq!(original.describe(&inst), loaded.describe(&inst));
        }
    }

    #[test]
    fn edited_machine_file_changes_the_model() {
        // Double Golden Cove's FMA latency in the JSON and observe the
        // analyzer honoring it — the OSACA machine-file workflow.
        let m = Machine::golden_cove();
        let mut spec = MachineSpec::from_machine(&m);
        for e in &mut spec.instructions {
            if e.mnemonics.iter().any(|n| n == "vfmadd231pd") && e.width == "v512" {
                e.latency = 8;
            }
        }
        let edited = spec.to_machine().unwrap();
        let inst = isa::parse::parse_line_x86("vfmadd231pd %zmm1, %zmm2, %zmm3", 1)
            .unwrap()
            .unwrap();
        assert_eq!(edited.describe(&inst).latency, 8);
        assert_eq!(m.describe(&inst).latency, 4);
    }

    #[test]
    fn bad_specs_are_rejected() {
        let m = Machine::zen4();
        let mut spec = MachineSpec::from_machine(&m);
        spec.arch = "m99".into();
        assert!(spec.to_machine().is_err());

        let mut spec2 = MachineSpec::from_machine(&m);
        spec2.load_ports = vec!["NOPE".into()];
        assert!(spec2.to_machine().is_err());

        let mut spec3 = MachineSpec::from_machine(&m);
        spec3.caches.clear();
        assert!(spec3.to_machine().is_err());

        assert!(Machine::from_json("{not json").is_err());
    }

    #[test]
    fn json_is_human_oriented() {
        let json = Machine::neoverse_v2().to_json();
        // Named ports and kebab-case tags, not numeric indices.
        assert!(json.contains("\"V0\""));
        assert!(json.contains("vec-fma"));
        assert!(json.contains("neoverse-v2"));
        assert!(json.contains("\"fmla\""));
    }

    #[test]
    fn custom_variant_machine() {
        // A hypothetical Golden Cove with 3 FMA ports: the analyzer's
        // throughput bound drops accordingly.
        let m = Machine::golden_cove();
        let mut spec = MachineSpec::from_machine(&m);
        for e in &mut spec.instructions {
            if e.width == "v512" && e.class == "vec-fma" {
                for u in &mut e.uops {
                    u.ports = vec!["0".into(), "1".into(), "5".into()];
                }
                e.rthroughput = 1.0 / 3.0;
            }
        }
        let custom = spec.to_machine().unwrap();
        let mut asm = String::from(".L1:\n");
        for i in 3..12 {
            asm.push_str(&format!("    vfmadd231pd %zmm1, %zmm2, %zmm{i}\n"));
        }
        asm.push_str("    subq $1, %rax\n    jne .L1\n");
        let k = isa::parse_kernel(&asm, isa::Isa::X86).unwrap();
        let d_orig = m.describe(&k.instructions[0]);
        let d_cust = custom.describe(&k.instructions[0]);
        assert_eq!(d_orig.uops[0].ports.count(), 2);
        assert_eq!(d_cust.uops[0].ports.count(), 3);
    }
}
