//! The machine-model registry: every model the tooling can name, keyed by
//! a stable id.
//!
//! Entries hold a *builder* function rather than a finished [`Machine`],
//! so callers (notably `incore-cli machines`) can read a model's lineage
//! — the base family model plus the composition deltas applied on top —
//! without re-deriving it. Ordering is fixed: the three paper models in
//! the paper's presentation order, then derived models in the order they
//! were added. That ordering is the determinism contract behind the
//! `machines --json` golden snapshot and the CI artifact.
//!
//! The registry is intentionally *not* [`crate::all_machines`]: that
//! function remains the paper's trio (the validation corpus, Table I–III
//! reproduction, and the default lint/validate grids), while the registry
//! also carries derived models that exist beyond the paper's scope.

use crate::compose::MachineBuilder;
use crate::machine::Machine;
use crate::models::{cascade_lake::cascade_lake, zen2_rome::zen2_rome};

/// One registry entry: a stable id, a one-line summary, and the builder
/// that derives the model.
pub struct ModelEntry {
    pub id: &'static str,
    pub summary: &'static str,
    /// Rebuilds the model's composition; `(entry.build)()` exposes base
    /// and deltas, `.build()` the finished machine.
    pub build: fn() -> MachineBuilder,
}

/// A what-if Golden Cove: the 512-entry ROB doubled, scheduler scaled to
/// match. Probes how much of the SPR corpus is reorder-window-bound.
fn golden_cove_rob1024() -> MachineBuilder {
    crate::compose::golden_cove()
        .derive(
            "golden-cove-rob1024",
            "Golden Cove (1K ROB)",
            "SPR+",
            "what-if: Xeon Platinum 8470, doubled OoO window",
        )
        .with_wider_rob(1024)
        .with_sched_size(410)
}

static REGISTRY: &[ModelEntry] = &[
    ModelEntry {
        id: "neoverse-v2",
        summary: "Arm Neoverse V2 — Nvidia Grace CPU Superchip (paper)",
        build: crate::compose::neoverse_v2,
    },
    ModelEntry {
        id: "golden-cove",
        summary: "Intel Golden Cove — Xeon Platinum 8470, Sapphire Rapids (paper)",
        build: crate::compose::golden_cove,
    },
    ModelEntry {
        id: "zen4",
        summary: "AMD Zen 4 — EPYC 9684X, Genoa-X (paper)",
        build: crate::compose::zen4,
    },
    ModelEntry {
        id: "zen2-rome",
        summary: "AMD Zen 2 — EPYC 7742, Rome (Velten et al., arXiv:2204.03290)",
        build: zen2_rome,
    },
    ModelEntry {
        id: "cascade-lake",
        summary: "Intel Cascade Lake SP — Xeon Gold 6248 (Velten et al., arXiv:2204.03290)",
        build: cascade_lake,
    },
    ModelEntry {
        id: "golden-cove-rob1024",
        summary: "what-if: Golden Cove with a 1024-entry ROB",
        build: golden_cove_rob1024,
    },
];

/// All registry entries, in deterministic presentation order.
pub fn entries() -> &'static [ModelEntry] {
    REGISTRY
}

/// Look up one entry by id.
pub fn find(id: &str) -> Option<&'static ModelEntry> {
    REGISTRY.iter().find(|e| e.id == id)
}

/// Build the machine registered under `id`.
pub fn machine(id: &str) -> Option<Machine> {
    find(id).map(|e| (e.build)().build())
}

/// Every registered id, in registry order.
pub fn ids() -> Vec<&'static str> {
    REGISTRY.iter().map(|e| e.id).collect()
}

/// Build every registered machine, in registry order.
pub fn machines() -> Vec<Machine> {
    REGISTRY.iter().map(|e| (e.build)().build()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_stable_and_lead_with_the_paper_trio() {
        let ids = ids();
        assert_eq!(&ids[..3], &["neoverse-v2", "golden-cove", "zen4"]);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "duplicate registry id");
        for (entry, m) in entries().iter().zip(machines()) {
            assert_eq!(entry.id, m.id, "entry id must match the built model");
        }
    }

    #[test]
    fn family_entries_match_all_machines_exactly() {
        for (m, built) in crate::all_machines().iter().zip(machines()) {
            assert_eq!(m.id, built.id);
            assert_eq!(m.to_json(), built.to_json());
        }
    }

    #[test]
    fn derived_models_stay_small_deltas() {
        for entry in entries().iter().skip(3) {
            let b = (entry.build)();
            assert!(
                !b.deltas().is_empty(),
                "{}: a derived entry must record lineage",
                entry.id
            );
            assert_ne!(b.id(), b.base());
        }
    }

    #[test]
    fn rome_drops_avx512_and_keeps_the_zen_table() {
        let rome = machine("zen2-rome").unwrap();
        assert_eq!(rome.arch, crate::Arch::Zen4);
        assert_eq!(rome.max_isa_vec_bits, 256);
        assert_eq!(rome.chip, "Rome");
        let inst = isa::parse::parse_line_x86("vfmadd231pd %ymm1, %ymm2, %ymm3", 1)
            .unwrap()
            .unwrap();
        let d = rome.describe(&inst);
        assert!(!d.from_fallback, "256-bit FMA must come from the table");
        assert_eq!(d.latency, Machine::zen4().describe(&inst).latency);
    }

    #[test]
    fn cascade_lake_is_an_eight_port_golden_cove() {
        let clx = machine("cascade-lake").unwrap();
        assert_eq!(clx.port_model.num_ports(), 8);
        assert_eq!(clx.load_ports.count(), 2);
        assert_eq!(clx.store_data_ports.count(), 1);
        assert_eq!(clx.dispatch_width, 4);
        // The AVX-512 FMA table survives the port remap.
        let inst = isa::parse::parse_line_x86("vfmadd231pd %zmm1, %zmm2, %zmm3", 1)
            .unwrap()
            .unwrap();
        let d = clx.describe(&inst);
        assert!(!d.from_fallback);
        assert_eq!(d.uops[0].ports.count(), 2, "FMA stays on ports 0/5");
    }
}
