//! Incremental composition of machine models.
//!
//! The paper's pitch — one in-core model parameterized per
//! microarchitecture — only pays off if adding a microarchitecture is
//! cheap. [`MachineBuilder`] makes a new model a *delta* against one of
//! the three shipped family models rather than a module fork:
//!
//! ```
//! use uarch::compose::{golden_cove, zen4, Feature};
//!
//! // A what-if Golden Cove with a doubled reorder buffer.
//! let wide = golden_cove()
//!     .derive("glc-wide", "Golden Cove (wide)", "SPR+", "what-if")
//!     .with_wider_rob(1024)
//!     .build();
//! assert_eq!(wide.rob_size, 1024);
//!
//! // Zen 2 "Rome" starts from Zen 4 and drops AVX-512.
//! let rome = zen4()
//!     .derive("rome", "Zen 2", "Rome", "AMD EPYC 7742")
//!     .without_feature(Feature::Avx512)
//!     .build();
//! assert_eq!(rome.max_isa_vec_bits, 256);
//! ```
//!
//! Every mutation records a human-readable delta; [`MachineBuilder::deltas`]
//! is what `incore-cli machines` prints as a model's lineage. A builder
//! with no deltas returns its base machine unchanged — that is the
//! bit-identity contract the registry relies on for the three originals.

use crate::instr::Entry;
use crate::machine::{Machine, MemorySpec};
use crate::ports::PortSet;

/// An ISA/execution feature a derived model can drop wholesale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feature {
    /// Fused multiply-add units: removes every `vec-fma`-class entry from
    /// the timing table (FMA forms then hit the admission gate's M008
    /// coverage error — the no-FMA fixture is built this way).
    Fma,
    /// 512-bit vectors: removes every `v512` table entry and clamps
    /// [`Machine::max_isa_vec_bits`] to 256 so the corpus generator stops
    /// emitting AVX-512 encodings (Zen 2, pre-AVX-512 Intel cores).
    Avx512,
}

/// Incrementally derives a [`Machine`] from a base family model.
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    machine: Machine,
    base: &'static str,
    deltas: Vec<String>,
}

/// Start from the shipped Neoverse V2 model.
pub fn neoverse_v2() -> MachineBuilder {
    MachineBuilder::from_base(Machine::neoverse_v2())
}

/// Start from the shipped Golden Cove model.
pub fn golden_cove() -> MachineBuilder {
    MachineBuilder::from_base(Machine::golden_cove())
}

/// Start from the shipped Zen 4 model.
pub fn zen4() -> MachineBuilder {
    MachineBuilder::from_base(Machine::zen4())
}

impl MachineBuilder {
    fn from_base(machine: Machine) -> Self {
        MachineBuilder {
            base: machine.id,
            machine,
            deltas: Vec::new(),
        }
    }

    fn note(&mut self, delta: String) {
        self.deltas.push(delta);
    }

    /// Give the derived model its own registry identity. Identity is not a
    /// behavioural delta, so it is not recorded in the lineage.
    pub fn derive(
        mut self,
        id: &'static str,
        name: &'static str,
        chip: &'static str,
        part: &'static str,
    ) -> Self {
        self.machine.id = id;
        self.machine.name = name;
        self.machine.chip = chip;
        self.machine.part = part;
        self
    }

    /// The registry id of the family model this builder started from.
    pub fn base(&self) -> &'static str {
        self.base
    }

    /// The derived model's registry id (the base id until [`derive`]d).
    ///
    /// [`derive`]: MachineBuilder::derive
    pub fn id(&self) -> &'static str {
        self.machine.id
    }

    /// Human-readable behavioural deltas applied so far, in order.
    pub fn deltas(&self) -> &[String] {
        &self.deltas
    }

    pub fn with_rob(mut self, entries: u32) -> Self {
        self.note(format!("rob {} → {}", self.machine.rob_size, entries));
        self.machine.rob_size = entries;
        self
    }

    /// [`with_rob`](Self::with_rob), asserting the ROB actually grows —
    /// for what-if scaling experiments.
    pub fn with_wider_rob(self, entries: u32) -> Self {
        assert!(
            entries > self.machine.rob_size,
            "with_wider_rob({entries}) does not widen the {}-entry ROB",
            self.machine.rob_size
        );
        self.with_rob(entries)
    }

    pub fn with_sched_size(mut self, entries: u32) -> Self {
        self.note(format!("sched {} → {}", self.machine.sched_size, entries));
        self.machine.sched_size = entries;
        self
    }

    pub fn with_dispatch_width(mut self, uops: u32) -> Self {
        self.note(format!(
            "dispatch {} → {}",
            self.machine.dispatch_width, uops
        ));
        self.machine.dispatch_width = uops;
        self
    }

    pub fn with_retire_width(mut self, uops: u32) -> Self {
        self.note(format!("retire {} → {}", self.machine.retire_width, uops));
        self.machine.retire_width = uops;
        self
    }

    pub fn with_cores(mut self, cores: u32) -> Self {
        self.note(format!("cores {} → {}", self.machine.cores, cores));
        self.machine.cores = cores;
        self
    }

    pub fn with_frequency(mut self, base_ghz: f64, max_ghz: f64) -> Self {
        self.note(format!("freq {base_ghz}/{max_ghz} GHz"));
        self.machine.base_freq_ghz = base_ghz;
        self.machine.max_freq_ghz = max_ghz;
        self
    }

    pub fn with_units(mut self, int_units: u32, fp_vec_units: u32) -> Self {
        self.note(format!("units {int_units} int / {fp_vec_units} FP"));
        self.machine.int_units = int_units;
        self.machine.fp_vec_units = fp_vec_units;
        self
    }

    pub fn with_store_width_bits(mut self, bits: u16) -> Self {
        self.note(format!(
            "store width {} → {} b",
            self.machine.store_width_bits, bits
        ));
        self.machine.store_width_bits = bits;
        self
    }

    pub fn with_flops_per_cycle(mut self, fma: u32, extra_add: u32) -> Self {
        self.note(format!("flops/cy {fma} FMA + {extra_add} ADD"));
        self.machine.fma_dp_flops_per_cycle = fma;
        self.machine.extra_add_dp_flops_per_cycle = extra_add;
        self
    }

    pub fn with_tdp(mut self, watts: f64) -> Self {
        self.note(format!("tdp {} → {} W", self.machine.tdp_w, watts));
        self.machine.tdp_w = watts;
        self
    }

    pub fn with_numa_domains(mut self, domains: u32) -> Self {
        self.note(format!("numa domains {}", domains));
        self.machine.numa_domains = domains;
        self
    }

    /// Resize one cache level (found by name) in place.
    pub fn resize_cache(mut self, name: &str, size_kib: u64, assoc: u32, latency_cy: u32) -> Self {
        let level = self
            .machine
            .caches
            .iter_mut()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("no cache level named `{name}` to resize"));
        level.size_kib = size_kib;
        level.assoc = assoc;
        level.latency_cy = latency_cy;
        self.note(format!(
            "{name} {size_kib} KiB {assoc}-way lat {latency_cy}"
        ));
        self
    }

    /// Replace the main-memory subsystem.
    pub fn with_memory(mut self, memory: MemorySpec) -> Self {
        self.note(format!(
            "memory {} {:.1} GB/s × {:.0}%",
            memory.mem_type,
            memory.theor_bw_gbs,
            memory.efficiency * 100.0
        ));
        self.machine.memory = memory;
        self
    }

    /// Drop an ISA/execution feature (see [`Feature`]).
    pub fn without_feature(mut self, feature: Feature) -> Self {
        match feature {
            Feature::Fma => {
                let before = self.machine.table.len();
                self.machine
                    .table
                    .retain(|e| e.class != crate::instr::InstrClass::VecFma);
                self.note(format!(
                    "no FMA ({} table entries dropped)",
                    before - self.machine.table.len()
                ));
            }
            Feature::Avx512 => {
                let before = self.machine.table.len();
                self.machine
                    .table
                    .retain(|e| e.width != crate::instr::WidthClass::V512);
                self.machine.max_isa_vec_bits = self.machine.max_isa_vec_bits.min(256);
                self.note(format!(
                    "no AVX-512 ({} table entries dropped, max vec 256 b)",
                    before - self.machine.table.len()
                ));
            }
        }
        self
    }

    /// Remove an execution port by name, remapping every port set in the
    /// model (timing-table µ-ops and the load/store pipe sets) onto the
    /// compacted indices. Entries whose port sets shrink get their stated
    /// reciprocal throughput raised to the new port-pressure lower bound.
    ///
    /// Panics if the removal would leave a µ-op or memory pipe with no
    /// port to issue on — drop the affected entries first.
    pub fn without_port(mut self, name: &str) -> Self {
        let m = &mut self.machine;
        let removed = m
            .port_model
            .index_of(name)
            .unwrap_or_else(|| panic!("no port named `{name}` to remove"));
        let remap = |set: PortSet| -> PortSet {
            let mut out = PortSet::EMPTY;
            for i in set.iter() {
                if i != removed {
                    out = out.union(PortSet::single(if i > removed { i - 1 } else { i }));
                }
            }
            out
        };
        let remap_pipe = |set: PortSet, what: &str| -> PortSet {
            let out = remap(set);
            assert!(!out.is_empty(), "removing port `{name}` empties {what}");
            out
        };
        m.load_ports = remap_pipe(m.load_ports, "the load ports");
        m.load_ports_wide = remap_pipe(m.load_ports_wide, "the wide-load ports");
        m.store_agu_ports = remap_pipe(m.store_agu_ports, "the store AGU ports");
        m.store_data_ports = remap_pipe(m.store_data_ports, "the store data ports");
        for entry in &mut m.table {
            let mut changed = false;
            for uop in &mut entry.uops {
                let mapped = remap(uop.ports);
                assert!(
                    !mapped.is_empty(),
                    "removing port `{name}` leaves an entry for {:?} unissuable",
                    entry.mnemonics
                );
                changed |= mapped != uop.ports;
                uop.ports = mapped;
            }
            if changed {
                entry.rthroughput = entry.rthroughput.max(port_pressure_bound(entry));
            }
        }
        m.port_model.ports.remove(removed);
        self.note(format!("port {name} removed"));
        self
    }

    /// Keep only the table entries matching `keep`. The `what` string
    /// documents the cut in the lineage.
    pub fn retain_entries(mut self, what: &str, keep: impl Fn(&Entry) -> bool) -> Self {
        let before = self.machine.table.len();
        self.machine.table.retain(|e| keep(e));
        self.note(format!(
            "{what} ({} table entries dropped)",
            before - self.machine.table.len()
        ));
        self
    }

    /// Rewrite table entries in place. The `what` string documents the
    /// edit in the lineage.
    pub fn map_entries(mut self, what: &str, f: impl Fn(&mut Entry)) -> Self {
        for e in &mut self.machine.table {
            f(e);
        }
        self.note(what.to_string());
        self
    }

    /// Finalize the model. Structural invariants (a machine the schedulers
    /// cannot even issue on) panic here; semantic fitness is the admission
    /// gate's job (`incore-cli lint --admission`, M008–M010).
    pub fn build(self) -> Machine {
        let m = self.machine;
        assert!(m.dispatch_width > 0, "{}: dispatch width is zero", m.id);
        assert!(!m.caches.is_empty(), "{}: no cache levels", m.id);
        assert!(
            !m.load_ports.is_empty() && !m.store_data_ports.is_empty(),
            "{}: missing memory pipes",
            m.id
        );
        m
    }
}

/// Port-pressure lower bound on an entry's reciprocal throughput: µ-op
/// occupancy summed per distinct port set, divided by the set's width.
fn port_pressure_bound(entry: &Entry) -> f64 {
    let mut bound: f64 = 0.0;
    let mut sets: Vec<(PortSet, f64)> = Vec::new();
    for uop in &entry.uops {
        match sets.iter_mut().find(|(s, _)| *s == uop.ports) {
            Some((_, occ)) => *occ += uop.occupancy,
            None => sets.push((uop.ports, uop.occupancy)),
        }
    }
    for (set, occ) in sets {
        bound = bound.max(occ / set.count().max(1) as f64);
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{InstrClass, WidthClass};

    #[test]
    fn no_fma_fixture_equals_the_composed_export_byte_for_byte() {
        // The checked-in admission-gate fixture is generated by the
        // composition API, not maintained by hand: Golden Cove minus its
        // FMA entries, exported as a machine file.
        let json = golden_cove()
            .without_feature(Feature::Fma)
            .build()
            .to_json();
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../fixtures/machines/golden_cove_no_fma.json"
        );
        if std::env::var_os("UPDATE_FIXTURES").is_some() {
            std::fs::write(path, &json).expect("fixture written");
        }
        let golden = std::fs::read_to_string(path).expect("fixture exists");
        assert_eq!(
            json, golden,
            "fixture drifted from the composed model; regenerate with UPDATE_FIXTURES=1"
        );
    }

    #[test]
    fn no_delta_builder_is_bit_identical_to_base() {
        for (builder, direct) in [
            (neoverse_v2(), Machine::neoverse_v2()),
            (golden_cove(), Machine::golden_cove()),
            (zen4(), Machine::zen4()),
        ] {
            assert!(builder.deltas().is_empty());
            assert_eq!(builder.build().to_json(), direct.to_json());
        }
    }

    #[test]
    fn without_fma_strips_every_fma_entry() {
        let m = golden_cove().without_feature(Feature::Fma).build();
        assert!(m.table.iter().all(|e| e.class != InstrClass::VecFma));
        assert!(m.table.len() < Machine::golden_cove().table.len());
    }

    #[test]
    fn without_avx512_drops_v512_and_clamps_decode_width() {
        let m = zen4().without_feature(Feature::Avx512).build();
        assert!(m.table.iter().all(|e| e.width != WidthClass::V512));
        assert_eq!(m.max_isa_vec_bits, 256);
    }

    #[test]
    fn port_removal_remaps_every_set() {
        // Golden Cove minus its third load AGU (port 11): two loads/cy
        // and no port index may dangle past the compacted model.
        let base = Machine::golden_cove();
        let m = golden_cove().without_port("11").build();
        assert_eq!(m.port_model.num_ports(), base.port_model.num_ports() - 1);
        assert_eq!(m.load_ports.count(), 2);
        let n = m.port_model.num_ports();
        for e in &m.table {
            for uop in &e.uops {
                assert!(uop.ports.iter().all(|i| i < n), "{:?}", e.mnemonics);
                assert!(!uop.ports.is_empty());
            }
        }
    }

    #[test]
    fn port_removal_raises_rthroughput_to_the_pressure_bound() {
        // Stores on Golden Cove: STA {7,8} → {7}, STD {4,9} → {4}; a
        // store entry's µ-ops now bound rthroughput at 1 per store.
        let m = golden_cove().without_port("8").without_port("9").build();
        assert_eq!(m.store_agu_ports.count(), 1);
        assert_eq!(m.store_data_ports.count(), 1);
    }

    #[test]
    fn lineage_records_each_delta_in_order() {
        let b = zen4()
            .derive("z", "Z", "Z", "test")
            .with_rob(224)
            .with_cores(64);
        assert_eq!(b.base(), "zen4");
        assert_eq!(b.id(), "z");
        assert_eq!(b.deltas(), ["rob 320 → 224", "cores 96 → 64"]);
    }

    #[test]
    #[should_panic(expected = "does not widen")]
    fn wider_rob_must_widen() {
        let _ = golden_cove().with_wider_rob(512);
    }
}
