//! Arm Neoverse V2 (Nvidia Grace CPU Superchip).
//!
//! Port layout (17 ports, Fig. 1 / Table II): two branch ports (B0/B1),
//! four single-cycle integer ports (S0–S3), two multi-cycle integer ports
//! (M0/M1, which also execute simple ALU ops), four 128-bit FP/SIMD ports
//! (V0–V3, all FMA-capable), three load pipes (L0–L2, of which L0/L1 double
//! as store AGUs) and two store-data ports (SD0/SD1). SVE runs at a vector
//! length of 128 bits.

use super::{e, mem_entry, u, ub};
use crate::instr::{InstrClass::*, WidthClass::*};
use crate::machine::{Arch, CacheLevel, Machine, MemorySpec};
use crate::ports::{Port, PortCap, PortModel, PortSet};

const B0: usize = 0;
const B1: usize = 1;
const S0: usize = 2;
const S1: usize = 3;
const S2: usize = 4;
const S3: usize = 5;
const M0: usize = 6;
const M1: usize = 7;
const V0: usize = 8;
const V1: usize = 9;
const V2P: usize = 10;
const V3: usize = 11;
const L0: usize = 12;
const L1: usize = 13;
const L2: usize = 14;
const SD0: usize = 15;
const SD1: usize = 16;

const BR: PortSet = PortSet::of(&[B0, B1]);
const INT: PortSet = PortSet::of(&[S0, S1, S2, S3, M0, M1]);
const MC: PortSet = PortSet::of(&[M0, M1]);
const VEC: PortSet = PortSet::of(&[V0, V1, V2P, V3]);
const V01: PortSet = PortSet::of(&[V0, V1]);
const FDIV: PortSet = PortSet::of(&[V0]);
const LD: PortSet = PortSet::of(&[L0, L1, L2]);
const STA: PortSet = PortSet::of(&[L0, L1]);
const STD: PortSet = PortSet::of(&[SD0, SD1]);

impl Machine {
    /// The Neoverse V2 model (Nvidia Grace CPU Superchip).
    pub fn neoverse_v2() -> Machine {
        Machine {
            arch: Arch::NeoverseV2,
            id: "neoverse-v2",
            name: "Neoverse V2",
            chip: "GCS",
            part: "Nvidia Grace CPU Superchip",
            isa: isa::Isa::AArch64,
            max_isa_vec_bits: 128,
            port_model: port_model(),
            table: table(),
            dispatch_width: 8,
            retire_width: 8,
            rob_size: 320,
            sched_size: 160,
            move_elimination: true,
            load_ports: LD,
            load_ports_wide: LD,
            store_agu_ports: STA,
            store_data_ports: STD,
            l1_load_latency: 6,
            load_width_bits: 128,
            store_width_bits: 128,
            cores: 72,
            base_freq_ghz: 3.4,
            max_freq_ghz: 3.4,
            simd_width_bits: 128,
            int_units: 6, // 2 multi-cycle + 4 single-cycle
            fp_vec_units: 4,
            caches: vec![
                CacheLevel {
                    name: "L1d",
                    size_kib: 64,
                    line_bytes: 64,
                    assoc: 4,
                    shared: false,
                    latency_cy: 4,
                },
                CacheLevel {
                    name: "L2",
                    size_kib: 1024,
                    line_bytes: 64,
                    assoc: 8,
                    shared: false,
                    latency_cy: 12,
                },
                CacheLevel {
                    name: "L3",
                    size_kib: 114 * 1024,
                    line_bytes: 64,
                    assoc: 12,
                    shared: true,
                    latency_cy: 45,
                },
            ],
            memory: MemorySpec {
                size_gb: 240,
                mem_type: "LPDDR5X",
                theor_bw_gbs: 546.0,
                efficiency: 0.855, // measured 467 GB/s
                latency_ns: 130.0,
            },
            tdp_w: 250.0,
            numa_domains: 1,
            fma_dp_flops_per_cycle: 16, // 4 × 128-bit FMA = 4 × 2 lanes × 2 flops
            extra_add_dp_flops_per_cycle: 0,
        }
    }
}

fn port_model() -> PortModel {
    use PortCap::*;
    PortModel {
        ports: vec![
            Port {
                name: "B0",
                caps: vec![Branch],
            },
            Port {
                name: "B1",
                caps: vec![Branch],
            },
            Port {
                name: "S0",
                caps: vec![IntAlu],
            },
            Port {
                name: "S1",
                caps: vec![IntAlu],
            },
            Port {
                name: "S2",
                caps: vec![IntAlu],
            },
            Port {
                name: "S3",
                caps: vec![IntAlu],
            },
            Port {
                name: "M0",
                caps: vec![IntAlu, IntMul, PredOp],
            },
            Port {
                name: "M1",
                caps: vec![IntAlu, IntMul],
            },
            Port {
                name: "V0",
                caps: vec![VecAlu, VecFma, VecDiv, PredOp],
            },
            Port {
                name: "V1",
                caps: vec![VecAlu, VecFma, PredOp],
            },
            Port {
                name: "V2",
                caps: vec![VecAlu, VecFma],
            },
            Port {
                name: "V3",
                caps: vec![VecAlu, VecFma],
            },
            Port {
                name: "L0",
                caps: vec![Load, StoreAgu],
            },
            Port {
                name: "L1",
                caps: vec![Load, StoreAgu],
            },
            Port {
                name: "L2",
                caps: vec![Load],
            },
            Port {
                name: "SD0",
                caps: vec![StoreData],
            },
            Port {
                name: "SD1",
                caps: vec![StoreData],
            },
        ],
    }
}

/// Latencies per the paper's Table III (VEC/scalar ADD 2, MUL 3, FMA 4;
/// VEC DIV latency 5, scalar DIV 12). All four V-ports execute FP math at
/// 128 bits, giving 8 DP/cy packed and 4/cy scalar throughput.
fn table() -> Vec<crate::instr::Entry> {
    let mut t = Vec::new();

    // --- Pure loads / stores. ---
    t.push(mem_entry(
        &[
            "ldr", "ldp", "ldur", "ldnp", "ld1", "ld2", "ld1d", "ld1w", "ld1rd", "ld1rw", "ldff1d",
            "ldnt1d", "str", "stp", "stur", "stnp", "st1", "st2", "st1d", "st1w", "stnt1d", "prfm",
            "prfd",
        ],
        Load,
    ));

    // SVE gather (vector-indexed ld1d): Table III — 1/4 cache line per
    // cycle, latency 9. At VL=128 a gather touches up to 2 lines → 8 cycles
    // of gather-pipe time. Must precede the plain-load entry; matching keys
    // on the vector index register.
    t.insert(0, {
        let mut g = e(
            &["ld1d", "ld1w", "ldff1d"],
            Any,
            Some(true),
            ub(PortSet::of(&[L2]), 8.0),
            9,
            8.0,
            Load,
        );
        g.vector_index = Some(true);
        g
    });

    // --- Packed FP (NEON and SVE at VL=128). ---
    let addish: &'static [&'static str] = &[
        "fadd", "fsub", "fmax", "fmin", "fmaxnm", "fminnm", "fabd", "faddp",
    ];
    t.push(e(addish, V128, None, u(VEC), 2, 0.25, VecAlu));
    t.push(e(&["fmul", "fmulx"], V128, None, u(VEC), 3, 0.25, VecMul));
    t.push(e(
        &["fmla", "fmls", "fmad", "fmsb", "fnmla", "fnmls"],
        V128,
        None,
        u(VEC),
        4,
        0.25,
        VecFma,
    ));
    // Divide: 0.4 DP elements/cy → 5 cy per 2-lane instruction, latency 5
    // (Table III lists the best case; fdiv is unpipelined on V0).
    t.push(e(
        &["fdiv", "fdivr"],
        V128,
        None,
        ub(FDIV, 5.0),
        5,
        5.0,
        VecDiv,
    ));
    t.push(e(&["fsqrt"], V128, None, ub(FDIV, 7.0), 13, 7.0, VecDiv));
    t.push(e(
        &["fneg", "fabs", "frintm", "frintp", "frintz", "frinta"],
        V128,
        None,
        u(VEC),
        2,
        0.25,
        VecAlu,
    ));
    // movprfx is usually fused with the destructive op that follows; a
    // non-fused execution still costs one V-port slot.
    t.push(e(&["movprfx"], Any, None, u(VEC), 2, 0.25, Move));
    t.push(e(
        &[
            "fcmgt", "fcmge", "fcmeq", "fcmlt", "fcmle", "facgt", "facge",
        ],
        V128,
        None,
        u(V01),
        2,
        0.5,
        VecAlu,
    ));

    // --- Scalar FP (d/s registers; Table III: 4/cy on all four V ports). ---
    t.push(e(addish, ScalarFp, None, u(VEC), 2, 0.25, VecAlu));
    t.push(e(
        &["fmul", "fnmul"],
        ScalarFp,
        None,
        u(VEC),
        3,
        0.25,
        VecMul,
    ));
    t.push(e(
        &["fmadd", "fmsub", "fnmadd", "fnmsub", "fmla", "fmls"],
        ScalarFp,
        None,
        u(VEC),
        4,
        0.25,
        VecFma,
    ));
    // Scalar divide: 0.4/cy → 2.5 cy occupancy, latency 12.
    t.push(e(&["fdiv"], ScalarFp, None, ub(FDIV, 2.5), 12, 2.5, VecDiv));
    t.push(e(
        &["fsqrt"],
        ScalarFp,
        None,
        ub(FDIV, 4.0),
        12,
        4.0,
        VecDiv,
    ));
    t.push(e(
        &[
            "fneg", "fabs", "fcvt", "fcvtzs", "fcvtzu", "scvtf", "ucvtf", "frintm", "frintz",
        ],
        ScalarFp,
        None,
        u(VEC),
        3,
        0.25,
        VecAlu,
    ));
    t.push(e(
        &["fcmp", "fcmpe", "fccmp"],
        Any,
        None,
        u(V01),
        2,
        0.5,
        VecAlu,
    ));
    t.push(e(&["fcsel"], Any, None, u(V01), 2, 0.5, VecAlu));

    // --- Vector integer / logical / permute (NEON & SVE). ---
    t.push(e(
        &[
            "add", "sub", "and", "orr", "eor", "bic", "cmeq", "cmgt", "cmge", "addp", "uaddlv",
            "smax", "smin", "umax", "umin", "mul", "mla", "mls", "sdot", "udot",
        ],
        V128,
        None,
        u(VEC),
        2,
        0.25,
        VecAlu,
    ));
    t.push(e(
        &[
            "dup", "movi", "mvni", "ins", "zip1", "zip2", "uzp1", "uzp2", "trn1", "trn2", "ext",
            "rev64", "tbl", "splice", "sel",
        ],
        V128,
        None,
        u(V01),
        2,
        0.5,
        VecAlu,
    ));
    t.push(e(&["fmov", "mov"], V128, None, u(VEC), 2, 0.25, Move));
    t.push(e(&["fmov"], ScalarFp, None, u(VEC), 2, 0.25, Move));
    t.push(e(
        &[
            "scvtf", "ucvtf", "fcvtzs", "fcvtzu", "fcvtn", "fcvtl", "fcvt",
        ],
        V128,
        None,
        u(V01),
        3,
        0.5,
        VecAlu,
    ));

    // --- SVE predicate machinery. ---
    t.push(e(
        &["whilelo", "whilelt", "whilele", "whilels"],
        Any,
        None,
        u(PortSet::of(&[M0])),
        2,
        1.0,
        Other,
    ));
    t.push(e(
        &["ptrue", "pfalse", "ptest", "pnext", "punpklo", "punpkhi"],
        Any,
        None,
        u(PortSet::of(&[M0])),
        2,
        1.0,
        Other,
    ));
    t.push(e(
        &[
            "cntd", "cntw", "cnth", "cntb", "incd", "incw", "inch", "incb", "decd", "decw", "rdvl",
        ],
        Any,
        None,
        u(MC),
        2,
        0.5,
        IntAlu,
    ));
    t.push(e(&["index"], Any, None, u(V01), 4, 0.5, VecAlu));

    // --- Scalar integer. ---
    // Simple single-cycle ALU: 6 ports (S0–S3 plus the M ports).
    t.push(e(
        &[
            "add", "sub", "and", "orr", "eor", "bic", "orn", "eon", "neg", "mvn", "mov", "movz",
            "movk", "movn", "sxtw", "uxtw", "sxth", "uxth", "adr", "adrp",
        ],
        Scalar,
        None,
        u(INT),
        1,
        1.0 / 6.0,
        IntAlu,
    ));
    t.push(e(
        &["adds", "subs", "ands", "bics", "cmp", "cmn", "tst"],
        Scalar,
        None,
        u(INT),
        1,
        1.0 / 6.0,
        IntAlu,
    ));
    // Shifts and shifted-operand forms go to the multi-cycle ports.
    t.push(e(
        &[
            "lsl", "lsr", "asr", "ror", "lslv", "lsrv", "asrv", "ubfm", "sbfm", "ubfx", "sbfx",
            "ubfiz", "sbfiz", "bfi", "extr",
        ],
        Scalar,
        None,
        u(MC),
        2,
        0.5,
        IntAlu,
    ));
    t.push(e(
        &[
            "madd", "msub", "mul", "mneg", "smull", "umull", "smulh", "umulh",
        ],
        Scalar,
        None,
        u(MC),
        3,
        0.5,
        IntMul,
    ));
    t.push(e(
        &["sdiv", "udiv"],
        Scalar,
        None,
        ub(PortSet::of(&[M0]), 7.0),
        12,
        7.0,
        IntDiv,
    ));
    t.push(e(
        &["csel", "csinc", "csinv", "csneg", "cset", "csetm", "cinc"],
        Scalar,
        None,
        u(INT),
        1,
        1.0 / 6.0,
        IntAlu,
    ));
    t.push(e(
        &["ccmp", "ccmn"],
        Scalar,
        None,
        u(INT),
        1,
        1.0 / 6.0,
        IntAlu,
    ));

    // --- Branches. ---
    t.push(e(
        &["b", "br", "cbz", "cbnz", "tbz", "tbnz"],
        Any,
        None,
        u(BR),
        1,
        0.5,
        Branch,
    ));
    t.push(e(
        &["bl", "blr", "ret"],
        Any,
        None,
        u(PortSet::of(&[B0])),
        1,
        1.0,
        Branch,
    ));

    // --- Extended integer coverage. ---
    t.push(e(
        &["rbit", "clz", "cls", "rev", "rev16", "rev32"],
        Scalar,
        None,
        u(INT),
        1,
        1.0 / 6.0,
        IntAlu,
    ));
    t.push(e(
        &["smaddl", "umaddl", "smsubl", "umsubl"],
        Scalar,
        None,
        u(MC),
        3,
        0.5,
        IntMul,
    ));
    t.push(e(
        &["crc32b", "crc32h", "crc32w", "crc32x"],
        Scalar,
        None,
        u(PortSet::of(&[M0])),
        2,
        1.0,
        IntAlu,
    ));
    t.push(e(
        &["adc", "sbc", "adcs", "sbcs", "ngc"],
        Scalar,
        None,
        u(INT),
        1,
        1.0 / 6.0,
        IntAlu,
    ));
    t.push(e(
        &["tst", "mvn", "bfc", "bfxil"],
        Scalar,
        None,
        u(INT),
        1,
        1.0 / 6.0,
        IntAlu,
    ));

    // --- Extended NEON/SVE coverage. ---
    t.push(e(
        &[
            "faddv", "fmaxv", "fminv", "fmaxnmv", "fminnmv", "addv", "smaxv", "uminv",
        ],
        V128,
        None,
        u(V01),
        4,
        0.5,
        VecAlu,
    ));
    t.push(e(
        &["fadda"],
        V128,
        None,
        ub(PortSet::of(&[V0]), 4.0),
        8,
        4.0,
        VecAlu,
    ));
    t.push(e(
        &[
            "shl", "sshr", "ushr", "sshl", "ushl", "shrn", "shll", "sli", "sri",
        ],
        V128,
        None,
        u(V01),
        2,
        0.5,
        VecAlu,
    ));
    t.push(e(
        &["lsl", "lsr", "asr"],
        V128,
        None,
        u(V01),
        2,
        0.5,
        VecAlu,
    ));
    t.push(e(
        &["frecpe", "frsqrte", "frecps", "frsqrts"],
        Any,
        None,
        u(PortSet::of(&[V0])),
        4,
        1.0,
        VecAlu,
    ));
    t.push(e(
        &["abs", "neg", "sqabs", "sqneg"],
        V128,
        None,
        u(VEC),
        2,
        0.25,
        VecAlu,
    ));
    t.push(e(
        &["bsl", "bit", "bif", "bic", "orn"],
        V128,
        None,
        u(VEC),
        2,
        0.25,
        VecAlu,
    ));
    t.push(e(
        &["xtn", "xtn2", "sxtl", "uxtl", "sxtl2", "uxtl2"],
        V128,
        None,
        u(V01),
        2,
        0.5,
        VecAlu,
    ));
    t.push(e(
        &["saddlp", "uaddlp", "sadalp", "uadalp", "saddlv", "uaddlv"],
        V128,
        None,
        u(V01),
        3,
        0.5,
        VecAlu,
    ));
    t.push(e(
        &["umov", "smov"],
        Any,
        None,
        u(PortSet::of(&[V1])),
        2,
        1.0,
        Other,
    ));
    // SVE predicate / compare / select extras.
    t.push(e(
        &[
            "cmpgt", "cmpge", "cmpeq", "cmpne", "cmplt", "cmple", "cmphi", "cmplo",
        ],
        V128,
        None,
        u(V01),
        4,
        0.5,
        VecAlu,
    ));
    t.push(e(
        &["nand", "nor", "bics"],
        Any,
        None,
        u(PortSet::of(&[M0])),
        1,
        1.0,
        Other,
    ));
    t.push(e(
        &["brka", "brkb", "brkn", "pfirst", "plast"],
        Any,
        None,
        u(PortSet::of(&[M0])),
        2,
        1.0,
        Other,
    ));
    t.push(e(
        &["compact", "lasta", "lastb", "clasta", "clastb"],
        V128,
        None,
        u(V01),
        3,
        0.5,
        VecAlu,
    ));
    t.push(e(
        &[
            "uzp1", "uzp2", "zip1", "zip2", "trn1", "trn2", "revb", "revh", "revw",
        ],
        Any,
        None,
        u(V01),
        2,
        0.5,
        VecAlu,
    ));
    t.push(e(
        &["mad", "msb", "mla", "mls", "mul"],
        V128,
        None,
        u(VEC),
        4,
        0.25,
        VecMul,
    ));
    t.push(e(
        &["sminv", "umaxv", "andv", "orv", "eorv"],
        V128,
        None,
        u(V01),
        4,
        0.5,
        VecAlu,
    ));

    t
}

#[cfg(test)]
mod tests {
    use crate::machine::Machine;
    use isa::parse::parse_line_aarch64;

    fn desc(m: &Machine, s: &str) -> crate::instr::InstrDesc {
        m.describe(&parse_line_aarch64(s, 1).unwrap().unwrap())
    }

    #[test]
    fn table3_latencies() {
        let m = Machine::neoverse_v2();
        assert_eq!(desc(&m, "fadd v0.2d, v1.2d, v2.2d").latency, 2);
        assert_eq!(desc(&m, "fmul v0.2d, v1.2d, v2.2d").latency, 3);
        assert_eq!(desc(&m, "fmla v0.2d, v1.2d, v2.2d").latency, 4);
        assert_eq!(desc(&m, "fdiv v0.2d, v1.2d, v2.2d").latency, 5);
        assert_eq!(desc(&m, "fadd d0, d1, d2").latency, 2);
        assert_eq!(desc(&m, "fmul d0, d1, d2").latency, 3);
        assert_eq!(desc(&m, "fmadd d0, d1, d2, d3").latency, 4);
        assert_eq!(desc(&m, "fdiv d0, d1, d2").latency, 12);
    }

    #[test]
    fn table3_throughputs() {
        let m = Machine::neoverse_v2();
        // 8 DP/cy packed = 4 instructions/cy at 2 lanes.
        assert_eq!(desc(&m, "fadd v0.2d, v1.2d, v2.2d").rthroughput, 0.25);
        // 4 scalar FP/cy.
        assert_eq!(desc(&m, "fadd d0, d1, d2").rthroughput, 0.25);
        // Divide: 0.4 elem/cy → 5 cy per packed, 2.5 per scalar instruction.
        assert_eq!(desc(&m, "fdiv v0.2d, v1.2d, v2.2d").rthroughput, 5.0);
        assert_eq!(desc(&m, "fdiv d0, d1, d2").rthroughput, 2.5);
        // Scalar int add: 6 ports.
        assert!((desc(&m, "add x0, x1, x2").rthroughput - 1.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn sve_predicated_math() {
        let m = Machine::neoverse_v2();
        let d = desc(&m, "fmla z0.d, p0/m, z1.d, z2.d");
        assert_eq!(d.latency, 4);
        assert_eq!(d.rthroughput, 0.25);
        assert!(!d.from_fallback);
    }

    #[test]
    fn load_store_recipes() {
        let m = Machine::neoverse_v2();
        let ld = desc(&m, "ldr q0, [x0, #16]");
        assert_eq!(ld.uop_count(), 1);
        assert_eq!(ld.latency, 6);
        // ldp q,q moves 32 B = two 128-bit pipes.
        assert_eq!(desc(&m, "ldp q0, q1, [x0]").uop_count(), 2);
        // Stores: AGU (on L0/L1) + data.
        let st = desc(&m, "str q0, [x0]");
        assert_eq!(st.uop_count(), 2);
        assert_eq!(desc(&m, "stp q0, q1, [x0]").uop_count(), 4);
        // SVE loads at VL=128 are single-pipe.
        assert_eq!(
            desc(&m, "ld1d {z0.d}, p0/z, [x0, x1, lsl #3]").uop_count(),
            1
        );
    }

    #[test]
    fn whilelo_and_branch() {
        let m = Machine::neoverse_v2();
        assert!(!desc(&m, "whilelo p0.d, x3, x4").from_fallback);
        assert!(!desc(&m, "b.ne .L2").from_fallback);
        assert!(!desc(&m, "cbnz x3, .L2").from_fallback);
    }

    #[test]
    fn no_fallback_for_streaming_kernel_ops() {
        let m = Machine::neoverse_v2();
        for s in [
            "add x3, x3, #16",
            "cmp x3, x4",
            "subs x5, x5, #1",
            "madd x0, x1, x2, x3",
            "fadd v0.2d, v0.2d, v1.2d",
            "ldr q0, [x1, x3]",
            "str q0, [x0, x3]",
        ] {
            assert!(!desc(&m, s).from_fallback, "fallback used for {s}");
        }
    }
}
