//! AMD Zen 4 (EPYC 9684X, "Genoa-X").
//!
//! Port layout (13 ports, Table II): four integer ALUs (I0–I3), a branch
//! port, three AGUs (two load, one store), four 256-bit FP pipes — FMA on
//! F0/F1, FADD on F2/F3 — and one store-data port. AVX-512 is supported but
//! double-pumped: every 512-bit operation issues as two 256-bit µ-ops.

use super::{e, mem_entry, u, u2, ub};
use crate::instr::{InstrClass::*, WidthClass::*};
use crate::machine::{Arch, CacheLevel, Machine, MemorySpec};
use crate::ports::{Port, PortCap, PortModel, PortSet};

const I0: usize = 0;
const I1: usize = 1;
const I2: usize = 2;
const I3: usize = 3;
const BRP: usize = 4;
const AG0: usize = 5;
const AG1: usize = 6;
const AG2: usize = 7;
const F0: usize = 8;
const F1: usize = 9;
const F2: usize = 10;
const F3: usize = 11;
const STD_P: usize = 12;

const ALU: PortSet = PortSet::of(&[I0, I1, I2, I3]);
const FMA: PortSet = PortSet::of(&[F0, F1]);
const FADD: PortSet = PortSet::of(&[F2, F3]);
const FANY: PortSet = PortSet::of(&[F0, F1, F2, F3]);
const SHUF: PortSet = PortSet::of(&[F1, F2]);
const FDIV: PortSet = PortSet::of(&[F1]);
const BR: PortSet = PortSet::of(&[BRP, I0]);
const LD: PortSet = PortSet::of(&[AG0, AG1]);
const STA: PortSet = PortSet::of(&[AG2]);
const STD: PortSet = PortSet::of(&[STD_P]);
const IMUL: PortSet = PortSet::of(&[I1]);
const IDIV: PortSet = PortSet::of(&[I3]);

impl Machine {
    /// The Zen 4 model (Genoa-X, EPYC 9684X).
    pub fn zen4() -> Machine {
        Machine {
            arch: Arch::Zen4,
            id: "zen4",
            name: "Zen 4",
            chip: "Genoa",
            part: "AMD EPYC 9684X",
            isa: isa::Isa::X86,
            max_isa_vec_bits: 512,
            port_model: port_model(),
            table: table(),
            dispatch_width: 6,
            retire_width: 8,
            rob_size: 320,
            sched_size: 128,
            move_elimination: true,
            load_ports: LD,
            load_ports_wide: LD,
            store_agu_ports: STA,
            store_data_ports: STD,
            l1_load_latency: 7,
            load_width_bits: 256,
            store_width_bits: 256,
            cores: 96,
            base_freq_ghz: 2.55,
            max_freq_ghz: 3.7,
            simd_width_bits: 256,
            int_units: 4,
            fp_vec_units: 4,
            caches: vec![
                CacheLevel {
                    name: "L1d",
                    size_kib: 32,
                    line_bytes: 64,
                    assoc: 8,
                    shared: false,
                    latency_cy: 4,
                },
                CacheLevel {
                    name: "L2",
                    size_kib: 1024,
                    line_bytes: 64,
                    assoc: 8,
                    shared: false,
                    latency_cy: 14,
                },
                // Genoa-X: 3D V-Cache, 1152 MB per socket.
                CacheLevel {
                    name: "L3",
                    size_kib: 1152 * 1024,
                    line_bytes: 64,
                    assoc: 16,
                    shared: true,
                    latency_cy: 50,
                },
            ],
            memory: MemorySpec {
                size_gb: 384,
                mem_type: "DDR5",
                theor_bw_gbs: 461.0,
                efficiency: 0.781, // measured 360 GB/s — paper: Genoa reaches only 78 %
                latency_ns: 105.0,
            },
            tdp_w: 400.0,
            numa_domains: 1,
            fma_dp_flops_per_cycle: 16,      // 2 × 256-bit FMA
            extra_add_dp_flops_per_cycle: 8, // 2 × 256-bit FADD pipes run concurrently
        }
    }
}

fn port_model() -> PortModel {
    use PortCap::*;
    PortModel {
        ports: vec![
            Port {
                name: "I0",
                caps: vec![IntAlu, Branch],
            },
            Port {
                name: "I1",
                caps: vec![IntAlu, IntMul],
            },
            Port {
                name: "I2",
                caps: vec![IntAlu],
            },
            Port {
                name: "I3",
                caps: vec![IntAlu],
            },
            Port {
                name: "BR",
                caps: vec![Branch],
            },
            Port {
                name: "AG0",
                caps: vec![Load],
            },
            Port {
                name: "AG1",
                caps: vec![Load],
            },
            Port {
                name: "AG2",
                caps: vec![StoreAgu],
            },
            Port {
                name: "F0",
                caps: vec![VecAlu, VecFma],
            },
            Port {
                name: "F1",
                caps: vec![VecAlu, VecFma, VecDiv],
            },
            Port {
                name: "F2",
                caps: vec![VecAlu],
            },
            Port {
                name: "F3",
                caps: vec![VecAlu],
            },
            Port {
                name: "ST",
                caps: vec![StoreData],
            },
        ],
    }
}

/// Latencies per the paper's Table III (VEC ADD 3, MUL 3, FMA 4, DIV 13;
/// scalar identical on Zen 4). 512-bit forms are double-pumped (two µ-ops,
/// +1 cycle latency).
fn table() -> Vec<crate::instr::Entry> {
    let mut t = Vec::new();

    t.push(mem_entry(
        &[
            "mov",
            "movsd",
            "movss",
            "movq",
            "movd",
            "movzx",
            "movsx",
            "movapd",
            "movaps",
            "movupd",
            "movups",
            "movdqa",
            "movdqu",
            "vmovapd",
            "vmovaps",
            "vmovupd",
            "vmovups",
            "vmovdqa",
            "vmovdqu",
            "vmovdqa64",
            "vmovdqu64",
            "vmovsd",
            "vmovss",
            "vmovntpd",
            "vmovntps",
            "movntpd",
            "movntps",
            "movnti",
            "vmovntdq",
            "movlpd",
            "movhpd",
        ],
        Load,
    ));

    // Gather: Table III — 1/8 cache line per cycle, latency 13; the µcoded
    // gather serializes on one load AGU.
    let gpt = PortSet::of(&[AG0]);
    t.push(e(
        &["vgatherdpd", "vgatherqpd"],
        V512,
        Some(true),
        ub(gpt, 64.0),
        13,
        64.0,
        Load,
    ));
    t.push(e(
        &["vgatherdpd", "vgatherqpd"],
        V256,
        Some(true),
        ub(gpt, 32.0),
        13,
        32.0,
        Load,
    ));
    t.push(e(
        &["vgatherdpd", "vgatherqpd"],
        V128,
        Some(true),
        ub(gpt, 16.0),
        13,
        16.0,
        Load,
    ));

    // --- Packed DP arithmetic. FADD pipes F2/F3; FMA/FMUL pipes F0/F1. ---
    let addish: &'static [&'static str] = &[
        "vaddpd", "vsubpd", "vaddps", "vsubps", "vmaxpd", "vminpd", "addpd", "subpd", "maxpd",
        "minpd",
    ];
    t.push(e(addish, V512, None, u2(FADD), 4, 1.0, VecAlu));
    t.push(e(addish, V256, None, u(FADD), 3, 0.5, VecAlu));
    t.push(e(addish, V128, None, u(FADD), 3, 0.5, VecAlu));

    let mulish: &'static [&'static str] = &["vmulpd", "vmulps", "mulpd", "mulps"];
    t.push(e(mulish, V512, None, u2(FMA), 4, 1.0, VecMul));
    t.push(e(mulish, V256, None, u(FMA), 3, 0.5, VecMul));
    t.push(e(mulish, V128, None, u(FMA), 3, 0.5, VecMul));

    let fma: &'static [&'static str] = &[
        "vfmadd132pd",
        "vfmadd213pd",
        "vfmadd231pd",
        "vfmsub132pd",
        "vfmsub213pd",
        "vfmsub231pd",
        "vfnmadd132pd",
        "vfnmadd213pd",
        "vfnmadd231pd",
        "vfnmsub132pd",
        "vfnmsub213pd",
        "vfnmsub231pd",
        "vfmadd132ps",
        "vfmadd213ps",
        "vfmadd231ps",
    ];
    t.push(e(fma, V512, None, u2(FMA), 5, 1.0, VecFma));
    t.push(e(fma, V256, None, u(FMA), 4, 0.5, VecFma));
    t.push(e(fma, V128, None, u(FMA), 4, 0.5, VecFma));

    // Divide: 0.8 DP elements/cy → 5 cy per ymm instruction, latency 13.
    t.push(e(
        &["vdivpd", "divpd"],
        V512,
        None,
        ub(FDIV, 10.0),
        14,
        10.0,
        VecDiv,
    ));
    t.push(e(
        &["vdivpd", "divpd"],
        V256,
        None,
        ub(FDIV, 5.0),
        13,
        5.0,
        VecDiv,
    ));
    t.push(e(
        &["vdivpd", "divpd"],
        V128,
        None,
        ub(FDIV, 2.5),
        13,
        2.5,
        VecDiv,
    ));
    t.push(e(
        &["vsqrtpd", "sqrtpd"],
        Any,
        None,
        ub(FDIV, 9.0),
        21,
        9.0,
        VecDiv,
    ));

    // --- Scalar DP (Table III: ADD 2/cy lat 3, MUL 2/cy lat 3, FMA lat 4,
    // DIV 0.2/cy lat 13). ---
    t.push(e(
        &[
            "addsd", "subsd", "vaddsd", "vsubsd", "addss", "subss", "vaddss", "vsubss", "maxsd",
            "minsd", "vmaxsd", "vminsd",
        ],
        ScalarFp,
        None,
        u(FADD),
        3,
        0.5,
        VecAlu,
    ));
    t.push(e(
        &["mulsd", "vmulsd", "mulss", "vmulss"],
        ScalarFp,
        None,
        u(FMA),
        3,
        0.5,
        VecMul,
    ));
    t.push(e(
        &[
            "vfmadd132sd",
            "vfmadd213sd",
            "vfmadd231sd",
            "vfnmadd132sd",
            "vfnmadd213sd",
            "vfnmadd231sd",
            "vfmsub132sd",
            "vfmsub213sd",
            "vfmsub231sd",
        ],
        ScalarFp,
        None,
        u(FMA),
        4,
        0.5,
        VecFma,
    ));
    t.push(e(
        &["divsd", "vdivsd", "divss", "vdivss"],
        ScalarFp,
        None,
        ub(FDIV, 5.0),
        13,
        5.0,
        VecDiv,
    ));
    t.push(e(
        &["sqrtsd", "vsqrtsd"],
        ScalarFp,
        None,
        ub(FDIV, 5.5),
        21,
        5.5,
        VecDiv,
    ));

    // --- Vector logicals / shuffles / converts. ---
    t.push(e(
        &[
            "vxorpd", "vxorps", "vandpd", "vandps", "vorpd", "vorps", "xorpd", "xorps", "andpd",
            "andps", "orpd", "orps", "vpand", "vpor", "vpxor", "vpxord", "vpxorq",
        ],
        V512,
        None,
        u2(FANY),
        2,
        0.5,
        VecAlu,
    ));
    t.push(e(
        &[
            "vxorpd", "vxorps", "vandpd", "vandps", "vorpd", "vorps", "xorpd", "xorps", "andpd",
            "andps", "orpd", "orps", "vpand", "vpor", "vpxor",
        ],
        Any,
        None,
        u(FANY),
        1,
        0.25,
        VecAlu,
    ));
    t.push(e(
        &["vblendvpd", "vblendpd", "blendvpd"],
        Any,
        None,
        u(SHUF),
        1,
        0.5,
        VecAlu,
    ));
    t.push(e(
        &[
            "vunpcklpd",
            "vunpckhpd",
            "unpcklpd",
            "unpckhpd",
            "vshufpd",
            "shufpd",
            "vpermilpd",
            "vmovddup",
            "movddup",
            "vinsertf128",
            "vextractf128",
            "vpermpd",
            "vperm2f128",
        ],
        Any,
        None,
        u(SHUF),
        2,
        0.5,
        VecAlu,
    ));
    // Register-register movsd/movss merge the low lane (not eliminated).
    t.push(e(
        &["movsd", "movss", "vmovsd", "vmovss"],
        Any,
        Some(false),
        u(SHUF),
        1,
        0.5,
        VecAlu,
    ));
    t.push(e(
        &["vbroadcastsd", "vbroadcastss"],
        Any,
        Some(false),
        u(SHUF),
        2,
        0.5,
        VecAlu,
    ));
    t.push(mem_entry(&["vbroadcastsd", "vbroadcastss"], Load));
    t.push(e(
        &[
            "vcvtsi2sd",
            "cvtsi2sd",
            "vcvtsi2sdq",
            "cvtsi2sdq",
            "vcvttsd2si",
            "cvttsd2si",
            "vcvtsd2si",
        ],
        Any,
        None,
        u(PortSet::of(&[F1])),
        7,
        1.0,
        VecAlu,
    ));
    t.push(e(
        &[
            "vcvtpd2ps",
            "vcvtps2pd",
            "cvtpd2ps",
            "cvtps2pd",
            "vcvtdq2pd",
            "vcvttpd2dq",
        ],
        Any,
        None,
        u(SHUF),
        3,
        0.5,
        VecAlu,
    ));
    t.push(e(
        &[
            "vpaddq", "vpaddd", "vpsubq", "vpsubd", "paddq", "paddd", "psubq", "psubd",
        ],
        Any,
        None,
        u(FANY),
        1,
        0.25,
        VecAlu,
    ));
    t.push(e(
        &["vpmullq", "vpmulld", "vpmuludq"],
        Any,
        None,
        u(FMA),
        4,
        0.5,
        VecMul,
    ));
    t.push(e(
        &["vpbroadcastq", "vpbroadcastd"],
        Any,
        None,
        u(SHUF),
        2,
        0.5,
        VecAlu,
    ));

    // --- Mask registers (AVX-512). ---
    t.push(e(
        &[
            "kmovb", "kmovw", "kmovd", "kmovq", "kandw", "korw", "kxorw", "knotw", "kortestw",
            "kortestb", "ktestw",
        ],
        Any,
        None,
        u(PortSet::of(&[F1])),
        1,
        1.0,
        Other,
    ));

    // --- Scalar integer. ---
    t.push(e(
        &[
            "add", "sub", "and", "or", "xor", "inc", "dec", "neg", "not", "mov", "cmov", "cmova",
            "cmovb", "cmove", "cmovne", "cmovg", "cmovl", "cmovge", "cmovle", "cmovae", "cmovbe",
            "movz", "movs", "sete", "setne", "setl", "setg",
        ],
        Scalar,
        Some(false),
        u(ALU),
        1,
        0.25,
        IntAlu,
    ));
    t.push(e(&["cmp", "test"], Scalar, None, u(ALU), 1, 0.25, IntAlu));
    t.push(e(
        &["add", "sub", "and", "or", "xor", "inc", "dec", "neg", "not"],
        Scalar,
        Some(true),
        u(ALU),
        1,
        0.25,
        IntAlu,
    ));
    t.push(e(&["lea"], Scalar, None, u(ALU), 1, 0.25, IntAlu));
    t.push(e(&["imul"], Scalar, None, u(IMUL), 3, 1.0, IntMul));
    t.push(e(&["mul"], Scalar, None, u(IMUL), 3, 1.0, IntMul));
    t.push(e(
        &["idiv", "div"],
        Scalar,
        None,
        ub(IDIV, 7.0),
        19,
        7.0,
        IntDiv,
    ));
    t.push(e(
        &["shl", "shr", "sar", "rol", "ror", "shlx", "shrx", "sarx"],
        Scalar,
        None,
        u(ALU),
        1,
        0.25,
        IntAlu,
    ));
    t.push(e(&["push"], Scalar, None, u(ALU), 1, 1.0, Store));
    t.push(e(&["pop"], Scalar, None, u(ALU), 1, 1.0, Load));

    // --- FP compare / control. ---
    t.push(e(
        &[
            "ucomisd", "comisd", "vucomisd", "vcomisd", "ucomiss", "vucomiss",
        ],
        Any,
        None,
        u(PortSet::of(&[F1])),
        3,
        1.0,
        VecAlu,
    ));
    t.push(e(
        &["vcmppd", "cmppd", "vcmpsd", "cmpsd"],
        Any,
        None,
        u(FADD),
        2,
        0.5,
        VecAlu,
    ));

    // --- Branches. ---
    t.push(e(
        &[
            "jmp", "ja", "jae", "jb", "jbe", "je", "jne", "jg", "jge", "jl", "jle", "js", "jns",
            "jo", "jno", "jp", "jnp", "jc", "jnc", "jz", "jnz",
        ],
        Any,
        None,
        u(BR),
        1,
        0.5,
        Branch,
    ));
    t.push(e(
        &["call", "ret"],
        Any,
        None,
        u(PortSet::of(&[BRP])),
        2,
        1.0,
        Branch,
    ));

    // --- Extended integer coverage. ---
    t.push(e(
        &["popcnt", "lzcnt", "tzcnt"],
        Scalar,
        None,
        u(ALU),
        1,
        0.25,
        IntAlu,
    ));
    t.push(e(&["bswap", "movbe"], Scalar, None, u(ALU), 1, 0.5, IntAlu));
    t.push(e(
        &["bt", "bts", "btr", "btc"],
        Scalar,
        None,
        u(ALU),
        1,
        0.5,
        IntAlu,
    ));
    t.push(e(&["shld", "shrd"], Scalar, None, u(IMUL), 3, 1.0, IntAlu));
    t.push(e(
        &["cdq", "cqo", "cbw", "cwde", "cdqe"],
        Scalar,
        None,
        u(ALU),
        1,
        0.25,
        IntAlu,
    ));
    t.push(e(&["xchg"], Scalar, Some(false), u(ALU), 1, 0.5, IntAlu));
    t.push(e(
        &["andn", "blsi", "blsr", "blsmsk", "bzhi"],
        Scalar,
        None,
        u(ALU),
        1,
        0.25,
        IntAlu,
    ));
    t.push(e(
        &["mulx", "adcx", "adox"],
        Scalar,
        None,
        u(IMUL),
        3,
        1.0,
        IntMul,
    ));

    // --- Extended FP/SIMD coverage. ---
    t.push(e(
        &[
            "vroundpd",
            "roundpd",
            "vroundsd",
            "roundsd",
            "vrndscalepd",
            "vrndscalesd",
        ],
        Any,
        None,
        u(SHUF),
        3,
        0.5,
        VecAlu,
    ));
    t.push(e(
        &[
            "vrcp14pd",
            "vrsqrt14pd",
            "rcpps",
            "rsqrtps",
            "vrcpps",
            "vrsqrtps",
        ],
        Any,
        None,
        u(FDIV),
        5,
        1.0,
        VecAlu,
    ));
    t.push(e(
        &["vandnpd", "vandnps", "andnpd", "andnps"],
        Any,
        None,
        u(FANY),
        1,
        0.25,
        VecAlu,
    ));
    t.push(e(
        &["vhaddpd", "haddpd", "vhsubpd"],
        Any,
        None,
        u(SHUF),
        6,
        2.0,
        VecAlu,
    ));
    t.push(e(
        &["vpabsd", "vpabsq", "vpsignd"],
        Any,
        None,
        u(FANY),
        1,
        0.25,
        VecAlu,
    ));
    t.push(e(
        &[
            "vpsllq", "vpsrlq", "vpsraq", "vpslld", "vpsrld", "psllq", "psrlq", "pslld", "psrld",
        ],
        Any,
        None,
        u(SHUF),
        1,
        0.5,
        VecAlu,
    ));
    t.push(e(
        &[
            "vpcmpeqq", "vpcmpeqd", "vpcmpgtq", "vpcmpgtd", "pcmpeqd", "pcmpgtd",
        ],
        Any,
        None,
        u(FANY),
        1,
        0.25,
        VecAlu,
    ));
    t.push(e(
        &[
            "vpmovzxdq",
            "vpmovsxdq",
            "vpmovzxwd",
            "vpmovsxwd",
            "pmovzxdq",
        ],
        Any,
        None,
        u(SHUF),
        1,
        0.5,
        VecAlu,
    ));
    t.push(e(
        &[
            "vpextrq",
            "vpextrd",
            "pextrq",
            "vmovmskpd",
            "movmskpd",
            "vpmovmskb",
        ],
        Any,
        None,
        u(PortSet::of(&[F2])),
        3,
        1.0,
        Other,
    ));
    t.push(e(
        &["vpinsrq", "vpinsrd", "pinsrq"],
        Any,
        None,
        u(SHUF),
        3,
        1.0,
        VecAlu,
    ));
    t.push(e(
        &["vmovq", "vmovd"],
        Any,
        Some(false),
        u(PortSet::of(&[F1, F2])),
        3,
        0.5,
        Other,
    ));
    t.push(e(
        &[
            "vmaskmovpd",
            "vblendmpd",
            "vpblendmq",
            "vpternlogq",
            "vpternlogd",
        ],
        Any,
        None,
        u(FANY),
        1,
        0.25,
        VecAlu,
    ));
    t.push(e(
        &["kshiftrw", "kshiftlw", "kunpckbw", "kaddw", "kandnw"],
        Any,
        None,
        u(PortSet::of(&[F1])),
        1,
        1.0,
        Other,
    ));
    t.push(e(
        &[
            "vgetexppd",
            "vgetmantpd",
            "vscalefpd",
            "vfixupimmpd",
            "vreducepd",
        ],
        Any,
        None,
        u(FMA),
        4,
        0.5,
        VecAlu,
    ));
    t.push(e(
        &["vcompresspd", "vexpandpd", "vpcompressq"],
        Any,
        Some(false),
        u(SHUF),
        4,
        2.0,
        VecAlu,
    ));

    t
}

#[cfg(test)]
mod tests {
    use crate::machine::Machine;
    use isa::parse::parse_line_x86;

    fn desc(m: &Machine, s: &str) -> crate::instr::InstrDesc {
        m.describe(&parse_line_x86(s, 1).unwrap().unwrap())
    }

    #[test]
    fn table3_latencies() {
        let m = Machine::zen4();
        assert_eq!(desc(&m, "vaddpd %ymm0, %ymm1, %ymm2").latency, 3);
        assert_eq!(desc(&m, "vmulpd %ymm0, %ymm1, %ymm2").latency, 3);
        assert_eq!(desc(&m, "vfmadd231pd %ymm0, %ymm1, %ymm2").latency, 4);
        assert_eq!(desc(&m, "vdivpd %ymm0, %ymm1, %ymm2").latency, 13);
        assert_eq!(desc(&m, "addsd %xmm0, %xmm1").latency, 3);
        assert_eq!(desc(&m, "divsd %xmm0, %xmm1").latency, 13);
    }

    #[test]
    fn table3_throughputs() {
        let m = Machine::zen4();
        // 8 DP/cy for ymm = 2 instructions/cy at 4 lanes.
        assert_eq!(desc(&m, "vaddpd %ymm0, %ymm1, %ymm2").rthroughput, 0.5);
        assert_eq!(desc(&m, "vfmadd231pd %ymm0, %ymm1, %ymm2").rthroughput, 0.5);
        // Divide 0.8 elem/cy → 5 cy per ymm instruction; scalar 0.2/cy → 5 cy.
        assert_eq!(desc(&m, "vdivpd %ymm0, %ymm1, %ymm2").rthroughput, 5.0);
        assert_eq!(desc(&m, "divsd %xmm0, %xmm1").rthroughput, 5.0);
    }

    #[test]
    fn avx512_double_pumped() {
        let m = Machine::zen4();
        let d = desc(&m, "vfmadd231pd %zmm0, %zmm1, %zmm2");
        assert_eq!(d.uop_count(), 2);
        assert_eq!(d.rthroughput, 1.0);
        // 512-bit load splits into two 256-bit µ-ops.
        let ld = desc(&m, "vmovupd (%rax), %zmm0");
        assert_eq!(ld.uop_count(), 2);
        // 256-bit load is a single µ-op.
        assert_eq!(desc(&m, "vmovupd (%rax), %ymm0").uop_count(), 1);
    }

    #[test]
    fn adds_and_muls_use_different_pipes() {
        let m = Machine::zen4();
        let add = desc(&m, "vaddpd %ymm0, %ymm1, %ymm2");
        let mul = desc(&m, "vmulpd %ymm0, %ymm1, %ymm2");
        assert!(add.uops[0].ports.intersect(mul.uops[0].ports).is_empty());
    }

    #[test]
    fn single_store_port() {
        let m = Machine::zen4();
        let st = desc(&m, "vmovupd %ymm0, (%rax)");
        assert_eq!(st.uop_count(), 2); // 1 AGU + 1 data
        assert!((st.rthroughput - 1.0).abs() < 1e-9);
    }
}
