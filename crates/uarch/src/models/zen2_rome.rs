//! AMD Zen 2 (EPYC 7742, "Rome"), derived from the Zen 4 model.
//!
//! Parameters follow Velten et al., "Memory Performance of AMD EPYC Rome
//! and Intel Cascade Lake SP Server Processors" (arXiv:2204.03290) and
//! the AMD Zen 2 software optimization guide. Structurally Zen 2 is a
//! narrower Zen 4: the same 4-ALU / 4-FP-pipe / 3-AGU port layout and the
//! same 256-bit datapaths, but no AVX-512 decode, a 224-entry ROB, and
//! half the per-core L2. Everything else — the entire instruction timing
//! table at ≤256-bit widths — carries over from the Zen 4 base, which is
//! what makes this model a ~20-line delta instead of a module fork.

use crate::compose::{zen4, Feature, MachineBuilder};
use crate::machine::MemorySpec;

/// Zen 2 "Rome" as a delta against the shipped Zen 4 model.
pub fn zen2_rome() -> MachineBuilder {
    zen4()
        .derive("zen2-rome", "Zen 2", "Rome", "AMD EPYC 7742")
        // No AVX-512: drops the double-pumped v512 entries and clamps the
        // decoded vector width so the corpus generator emits AVX2 at most.
        .without_feature(Feature::Avx512)
        .with_rob(224)
        .with_sched_size(92)
        .with_cores(64)
        .with_frequency(2.25, 3.4)
        .with_units(4, 4)
        // 2 × 256-bit FMA pipes plus 2 × 256-bit FADD pipes, as on Zen 4.
        .with_flops_per_cycle(16, 8)
        .resize_cache("L2", 512, 8, 12)
        // 16 MiB per 4-core CCX, 16 CCXs per socket.
        .resize_cache("L3", 256 * 1024, 16, 39)
        .with_memory(MemorySpec {
            size_gb: 256,
            mem_type: "DDR4-3200",
            theor_bw_gbs: 204.8, // 8 channels × 25.6 GB/s
            efficiency: 0.684,   // ~140 GB/s measured (Velten et al.)
            latency_ns: 110.0,
        })
        .with_tdp(225.0)
}
