//! Intel Golden Cove (Xeon Platinum 8470, "Sapphire Rapids").
//!
//! Port layout (12 ports, Table II): five integer ALU ports (0, 1, 5, 6,
//! 10), three FP/SIMD ports (0, 1, 5) of which 0 and 5 carry the two
//! 512-bit FMA units, three load AGUs (2, 3, 11) sustaining two 512-bit
//! loads per cycle, two store AGUs (7, 8) and two 256-bit store-data ports
//! (4, 9).

use super::{e, mem_entry, u, ub};
use crate::instr::{InstrClass::*, WidthClass::*};
use crate::machine::{Arch, CacheLevel, Machine, MemorySpec};
use crate::ports::{Port, PortCap, PortModel, PortSet};

// Port indices.
const P0: usize = 0;
const P1: usize = 1;
const P2: usize = 2;
const P3: usize = 3;
const P4: usize = 4;
const P5: usize = 5;
const P6: usize = 6;
const P7: usize = 7;
const P8: usize = 8;
const P9: usize = 9;
const P10: usize = 10;
const P11: usize = 11;

const ALU: PortSet = PortSet::of(&[P0, P1, P5, P6, P10]);
const FP3: PortSet = PortSet::of(&[P0, P1, P5]); // ≤256-bit FP/SIMD
const FMA512: PortSet = PortSet::of(&[P0, P5]); // 512-bit FP/SIMD
const SHUF: PortSet = PortSet::of(&[P1, P5]);
const SHUF512: PortSet = PortSet::of(&[P5]);
const DIV: PortSet = PortSet::of(&[P0]);
const BR: PortSet = PortSet::of(&[P0, P6]);
const LD: PortSet = PortSet::of(&[P2, P3, P11]);
const LD512: PortSet = PortSet::of(&[P2, P3]);
const STA: PortSet = PortSet::of(&[P7, P8]);
const STD: PortSet = PortSet::of(&[P4, P9]);
const LEA: PortSet = PortSet::of(&[P1, P5]);
const IMUL: PortSet = PortSet::of(&[P1]);

impl Machine {
    /// The Golden Cove model (Sapphire Rapids, Xeon Platinum 8470).
    pub fn golden_cove() -> Machine {
        Machine {
            arch: Arch::GoldenCove,
            id: "golden-cove",
            name: "Golden Cove",
            chip: "SPR",
            part: "Intel Xeon Platinum 8470",
            isa: isa::Isa::X86,
            max_isa_vec_bits: 512,
            port_model: port_model(),
            table: table(),
            dispatch_width: 6,
            retire_width: 8,
            rob_size: 512,
            sched_size: 205,
            move_elimination: true,
            load_ports: LD,
            load_ports_wide: LD512,
            store_agu_ports: STA,
            store_data_ports: STD,
            l1_load_latency: 7,
            load_width_bits: 512,
            store_width_bits: 256,
            cores: 52,
            base_freq_ghz: 2.0,
            max_freq_ghz: 3.8,
            simd_width_bits: 512,
            int_units: 5,
            fp_vec_units: 3,
            caches: vec![
                CacheLevel {
                    name: "L1d",
                    size_kib: 48,
                    line_bytes: 64,
                    assoc: 12,
                    shared: false,
                    latency_cy: 5,
                },
                CacheLevel {
                    name: "L2",
                    size_kib: 2048,
                    line_bytes: 64,
                    assoc: 16,
                    shared: false,
                    latency_cy: 15,
                },
                CacheLevel {
                    name: "L3",
                    size_kib: 105 * 1024,
                    line_bytes: 64,
                    assoc: 15,
                    shared: true,
                    latency_cy: 55,
                },
            ],
            memory: MemorySpec {
                size_gb: 512,
                mem_type: "DDR5",
                theor_bw_gbs: 307.0,
                efficiency: 0.889, // measured 273 GB/s
                latency_ns: 110.0,
            },
            tdp_w: 350.0,
            numa_domains: 4,            // SNC mode
            fma_dp_flops_per_cycle: 32, // 2 × 512-bit FMA = 2 × 8 lanes × 2 flops
            extra_add_dp_flops_per_cycle: 0,
        }
    }
}

fn port_model() -> PortModel {
    use PortCap::*;
    PortModel {
        ports: vec![
            Port {
                name: "0",
                caps: vec![IntAlu, VecAlu, VecFma, VecDiv, Branch],
            },
            Port {
                name: "1",
                caps: vec![IntAlu, IntMul, VecAlu, VecFma],
            },
            Port {
                name: "2",
                caps: vec![Load],
            },
            Port {
                name: "3",
                caps: vec![Load],
            },
            Port {
                name: "4",
                caps: vec![StoreData],
            },
            Port {
                name: "5",
                caps: vec![IntAlu, VecAlu, VecFma, PredOp],
            },
            Port {
                name: "6",
                caps: vec![IntAlu, Branch],
            },
            Port {
                name: "7",
                caps: vec![StoreAgu],
            },
            Port {
                name: "8",
                caps: vec![StoreAgu],
            },
            Port {
                name: "9",
                caps: vec![StoreData],
            },
            Port {
                name: "10",
                caps: vec![IntAlu],
            },
            Port {
                name: "11",
                caps: vec![Load],
            },
        ],
    }
}

/// The instruction table. Latencies for the headline DP instructions follow
/// the paper's Table III (VEC ADD 2, MUL 4, FMA 4, DIV 14; scalar ADD 2,
/// MUL 4, FMA 5, DIV 14); throughputs follow from the port assignment
/// (2 × 512-bit pipes → 16 DP/cy for packed, 2/cy for scalar).
fn table() -> Vec<crate::instr::Entry> {
    let mut t = Vec::new();

    // --- Pure loads / stores (recipe synthesized by `describe`). ---
    t.push(mem_entry(
        &[
            "mov",
            "movsd",
            "movss",
            "movq",
            "movd",
            "movzx",
            "movsx",
            "movapd",
            "movaps",
            "movupd",
            "movups",
            "movdqa",
            "movdqu",
            "vmovapd",
            "vmovaps",
            "vmovupd",
            "vmovups",
            "vmovdqa",
            "vmovdqu",
            "vmovdqa64",
            "vmovdqu64",
            "vmovsd",
            "vmovss",
            "vmovntpd",
            "vmovntps",
            "movntpd",
            "movntps",
            "movnti",
            "vmovntdq",
            "movlpd",
            "movhpd",
        ],
        Load,
    ));

    // --- Gather: Table III — 1/3 cache line per cycle, latency 20. ---
    // A zmm gather touches up to 8 lines → 24 cycles on the (single)
    // gather sequencer, modeled as port 2.
    let gpt = PortSet::of(&[P2]);
    t.push(e(
        &["vgatherdpd", "vgatherqpd"],
        V512,
        Some(true),
        ub(gpt, 24.0),
        20,
        24.0,
        Load,
    ));
    t.push(e(
        &["vgatherdpd", "vgatherqpd"],
        V256,
        Some(true),
        ub(gpt, 12.0),
        20,
        12.0,
        Load,
    ));
    t.push(e(
        &["vgatherdpd", "vgatherqpd"],
        V128,
        Some(true),
        ub(gpt, 6.0),
        20,
        6.0,
        Load,
    ));

    // --- Packed DP arithmetic. ---
    let addish: &'static [&'static str] = &[
        "vaddpd", "vsubpd", "vaddps", "vsubps", "vmaxpd", "vminpd", "vmaxps", "vminps", "addpd",
        "subpd", "maxpd", "minpd",
    ];
    t.push(e(addish, V512, None, u(FMA512), 2, 0.5, VecAlu));
    t.push(e(addish, V256, None, u(FP3), 2, 1.0 / 3.0, VecAlu));
    t.push(e(addish, V128, None, u(FP3), 2, 1.0 / 3.0, VecAlu));

    let mulish: &'static [&'static str] = &["vmulpd", "vmulps", "mulpd", "mulps"];
    t.push(e(mulish, V512, None, u(FMA512), 4, 0.5, VecMul));
    t.push(e(mulish, V256, None, u(FP3), 4, 1.0 / 3.0, VecMul));
    t.push(e(mulish, V128, None, u(FP3), 4, 1.0 / 3.0, VecMul));

    let fma: &'static [&'static str] = &[
        "vfmadd132pd",
        "vfmadd213pd",
        "vfmadd231pd",
        "vfmsub132pd",
        "vfmsub213pd",
        "vfmsub231pd",
        "vfnmadd132pd",
        "vfnmadd213pd",
        "vfnmadd231pd",
        "vfnmsub132pd",
        "vfnmsub213pd",
        "vfnmsub231pd",
        "vfmadd132ps",
        "vfmadd213ps",
        "vfmadd231ps",
    ];
    t.push(e(fma, V512, None, u(FMA512), 4, 0.5, VecFma));
    t.push(e(fma, V256, None, u(FP3), 4, 1.0 / 3.0, VecFma));
    t.push(e(fma, V128, None, u(FP3), 4, 1.0 / 3.0, VecFma));

    // Divide: 0.5 DP elements/cy at any width → 16 cy per zmm instruction.
    t.push(e(
        &["vdivpd", "divpd"],
        V512,
        None,
        ub(DIV, 16.0),
        14,
        16.0,
        VecDiv,
    ));
    t.push(e(
        &["vdivpd", "divpd"],
        V256,
        None,
        ub(DIV, 8.0),
        14,
        8.0,
        VecDiv,
    ));
    t.push(e(
        &["vdivpd", "divpd"],
        V128,
        None,
        ub(DIV, 4.0),
        14,
        4.0,
        VecDiv,
    ));
    t.push(e(
        &["vdivps", "divps"],
        Any,
        None,
        ub(DIV, 8.0),
        12,
        8.0,
        VecDiv,
    ));
    t.push(e(
        &["vsqrtpd", "sqrtpd"],
        V512,
        None,
        ub(DIV, 18.0),
        19,
        18.0,
        VecDiv,
    ));
    t.push(e(
        &["vsqrtpd", "sqrtpd"],
        Any,
        None,
        ub(DIV, 9.0),
        18,
        9.0,
        VecDiv,
    ));

    // --- Scalar DP arithmetic (Table III: 2/cy on the two FMA pipes). ---
    t.push(e(
        &[
            "addsd", "subsd", "vaddsd", "vsubsd", "addss", "subss", "vaddss", "vsubss", "maxsd",
            "minsd", "vmaxsd", "vminsd",
        ],
        ScalarFp,
        None,
        u(FMA512),
        2,
        0.5,
        VecAlu,
    ));
    t.push(e(
        &["mulsd", "vmulsd", "mulss", "vmulss"],
        ScalarFp,
        None,
        u(FMA512),
        4,
        0.5,
        VecMul,
    ));
    t.push(e(
        &[
            "vfmadd132sd",
            "vfmadd213sd",
            "vfmadd231sd",
            "vfnmadd132sd",
            "vfnmadd213sd",
            "vfnmadd231sd",
            "vfmsub132sd",
            "vfmsub213sd",
            "vfmsub231sd",
        ],
        ScalarFp,
        None,
        u(FMA512),
        5,
        0.5,
        VecFma,
    ));
    // Scalar divide: 0.25/cy → 4-cycle divider occupancy, latency 14.
    t.push(e(
        &["divsd", "vdivsd", "divss", "vdivss"],
        ScalarFp,
        None,
        ub(DIV, 4.0),
        14,
        4.0,
        VecDiv,
    ));
    t.push(e(
        &["sqrtsd", "vsqrtsd"],
        ScalarFp,
        None,
        ub(DIV, 4.5),
        18,
        4.5,
        VecDiv,
    ));

    // --- Vector logicals, blends, shuffles, conversions. ---
    t.push(e(
        &[
            "vxorpd", "vxorps", "vandpd", "vandps", "vorpd", "vorps", "xorpd", "xorps", "andpd",
            "andps", "orpd", "orps", "vpand", "vpor", "vpxor", "vpxord", "vpxorq", "vpandd",
            "vpandq",
        ],
        V512,
        None,
        u(FMA512),
        1,
        0.5,
        VecAlu,
    ));
    t.push(e(
        &[
            "vxorpd", "vxorps", "vandpd", "vandps", "vorpd", "vorps", "xorpd", "xorps", "andpd",
            "andps", "orpd", "orps", "vpand", "vpor", "vpxor",
        ],
        Any,
        None,
        u(FP3),
        1,
        1.0 / 3.0,
        VecAlu,
    ));
    t.push(e(
        &["vblendvpd", "vblendpd", "blendvpd"],
        Any,
        None,
        u(FP3),
        2,
        1.0 / 3.0,
        VecAlu,
    ));
    t.push(e(
        &[
            "vunpcklpd",
            "vunpckhpd",
            "unpcklpd",
            "unpckhpd",
            "vshufpd",
            "shufpd",
            "vpermilpd",
            "vmovddup",
            "movddup",
            "vinsertf128",
            "vextractf128",
            "vinsertf64x4",
            "vextractf64x4",
            "vpermpd",
            "vperm2f128",
            "vvalignq",
            "vshuff64x2",
        ],
        V512,
        None,
        u(SHUF512),
        3,
        1.0,
        VecAlu,
    ));
    t.push(e(
        &[
            "vunpcklpd",
            "vunpckhpd",
            "unpcklpd",
            "unpckhpd",
            "vshufpd",
            "shufpd",
            "vpermilpd",
            "vmovddup",
            "movddup",
            "vinsertf128",
            "vextractf128",
            "vpermpd",
            "vperm2f128",
        ],
        Any,
        None,
        u(SHUF),
        3,
        0.5,
        VecAlu,
    ));
    // Register-register movsd/movss merge the low lane (not eliminated).
    t.push(e(
        &["movsd", "movss", "vmovsd", "vmovss"],
        Any,
        Some(false),
        u(SHUF),
        1,
        0.5,
        VecAlu,
    ));
    t.push(e(
        &["vbroadcastsd", "vbroadcastss"],
        Any,
        Some(false),
        u(SHUF),
        3,
        0.5,
        VecAlu,
    ));
    // Broadcast from memory is a load with embedded broadcast (free).
    t.push(mem_entry(&["vbroadcastsd", "vbroadcastss"], Load));
    t.push(e(
        &[
            "vcvtsi2sd",
            "cvtsi2sd",
            "vcvtsi2sdq",
            "cvtsi2sdq",
            "vcvttsd2si",
            "cvttsd2si",
            "vcvtsd2si",
        ],
        Any,
        None,
        u(PortSet::of(&[P0, P1])),
        7,
        0.5,
        VecAlu,
    ));
    t.push(e(
        &[
            "vcvtpd2ps",
            "vcvtps2pd",
            "cvtpd2ps",
            "cvtps2pd",
            "vcvtdq2pd",
            "vcvttpd2dq",
        ],
        Any,
        None,
        u(FMA512),
        4,
        0.5,
        VecAlu,
    ));
    // Packed integer SIMD (used by some compiler variants for index math).
    t.push(e(
        &[
            "vpaddq", "vpaddd", "vpsubq", "vpsubd", "paddq", "paddd", "psubq", "psubd",
        ],
        V512,
        None,
        u(FMA512),
        1,
        0.5,
        VecAlu,
    ));
    t.push(e(
        &[
            "vpaddq", "vpaddd", "vpsubq", "vpsubd", "paddq", "paddd", "psubq", "psubd",
        ],
        Any,
        None,
        u(FP3),
        1,
        1.0 / 3.0,
        VecAlu,
    ));
    t.push(e(
        &["vpmullq", "vpmulld", "vpmuludq"],
        Any,
        None,
        u(FMA512),
        5,
        0.5,
        VecMul,
    ));
    t.push(e(
        &["vpbroadcastq", "vpbroadcastd"],
        Any,
        None,
        u(SHUF),
        3,
        0.5,
        VecAlu,
    ));

    // --- Mask (AVX-512 k-register) operations. ---
    t.push(e(
        &[
            "kmovb", "kmovw", "kmovd", "kmovq", "kandw", "korw", "kxorw", "knotw", "kortestw",
            "kortestb", "ktestw",
        ],
        Any,
        None,
        u(PortSet::of(&[P0])),
        1,
        1.0,
        Other,
    ));

    // --- Scalar integer. ---
    t.push(e(
        &[
            "add", "sub", "and", "or", "xor", "inc", "dec", "neg", "not", "mov", "cmov", "cmova",
            "cmovb", "cmove", "cmovne", "cmovg", "cmovl", "cmovge", "cmovle", "cmovae", "cmovbe",
            "movz", "movs", "sete", "setne", "setl", "setg",
        ],
        Scalar,
        Some(false),
        u(ALU),
        1,
        0.2,
        IntAlu,
    ));
    t.push(e(&["cmp", "test"], Scalar, None, u(ALU), 1, 0.2, IntAlu));
    // RMW memory forms of integer ops (compute µ-op; loads/stores synthesized).
    t.push(e(
        &["add", "sub", "and", "or", "xor", "inc", "dec", "neg", "not"],
        Scalar,
        Some(true),
        u(ALU),
        1,
        0.2,
        IntAlu,
    ));
    t.push(e(&["lea"], Scalar, None, u(LEA), 1, 0.5, IntAlu));
    t.push(e(&["imul"], Scalar, None, u(IMUL), 3, 1.0, IntMul));
    t.push(e(&["mul"], Scalar, None, u(IMUL), 4, 1.0, IntMul));
    t.push(e(
        &["idiv", "div"],
        Scalar,
        None,
        ub(DIV, 6.0),
        18,
        6.0,
        IntDiv,
    ));
    t.push(e(
        &["shl", "shr", "sar", "rol", "ror", "shlx", "shrx", "sarx"],
        Scalar,
        None,
        u(PortSet::of(&[P0, P6])),
        1,
        0.5,
        IntAlu,
    ));
    t.push(e(&["push"], Scalar, None, u(ALU), 1, 1.0, Store));
    t.push(e(&["pop"], Scalar, None, u(ALU), 1, 1.0, Load));

    // --- FP compare / control. ---
    t.push(e(
        &[
            "ucomisd", "comisd", "vucomisd", "vcomisd", "ucomiss", "vucomiss",
        ],
        Any,
        None,
        u(PortSet::of(&[P0])),
        3,
        1.0,
        VecAlu,
    ));
    t.push(e(
        &["vcmppd", "cmppd", "vcmpsd", "cmpsd"],
        Any,
        None,
        u(FP3),
        3,
        1.0 / 3.0,
        VecAlu,
    ));

    // --- Branches. ---
    t.push(e(
        &[
            "jmp", "ja", "jae", "jb", "jbe", "je", "jne", "jg", "jge", "jl", "jle", "js", "jns",
            "jo", "jno", "jp", "jnp", "jc", "jnc", "jz", "jnz",
        ],
        Any,
        None,
        u(BR),
        1,
        0.5,
        Branch,
    ));
    t.push(e(
        &["call", "ret"],
        Any,
        None,
        u(PortSet::of(&[P6])),
        2,
        1.0,
        Branch,
    ));

    // --- Extended integer coverage. ---
    t.push(e(
        &["popcnt", "lzcnt", "tzcnt"],
        Scalar,
        None,
        u(IMUL),
        3,
        1.0,
        IntAlu,
    ));
    t.push(e(
        &["bswap", "movbe"],
        Scalar,
        None,
        u(PortSet::of(&[P1, P5])),
        1,
        0.5,
        IntAlu,
    ));
    t.push(e(
        &["bt", "bts", "btr", "btc"],
        Scalar,
        None,
        u(PortSet::of(&[P0, P6])),
        1,
        0.5,
        IntAlu,
    ));
    t.push(e(
        &["shld", "shrd"],
        Scalar,
        None,
        u(PortSet::of(&[P1])),
        3,
        1.0,
        IntAlu,
    ));
    t.push(e(
        &["cdq", "cqo", "cbw", "cwde", "cdqe"],
        Scalar,
        None,
        u(ALU),
        1,
        0.2,
        IntAlu,
    ));
    t.push(e(&["xchg"], Scalar, Some(false), u(ALU), 1, 0.5, IntAlu));
    t.push(e(
        &["andn", "blsi", "blsr", "blsmsk", "bzhi"],
        Scalar,
        None,
        u(PortSet::of(&[P0, P6])),
        1,
        0.5,
        IntAlu,
    ));
    t.push(e(
        &["mulx", "adcx", "adox"],
        Scalar,
        None,
        u(IMUL),
        4,
        1.0,
        IntMul,
    ));

    // --- Extended FP/SIMD coverage. ---
    t.push(e(
        &[
            "vroundpd",
            "roundpd",
            "vroundsd",
            "roundsd",
            "vrndscalepd",
            "vrndscalesd",
        ],
        Any,
        None,
        u(FP3),
        8,
        0.5,
        VecAlu,
    ));
    t.push(e(
        &[
            "vrcp14pd",
            "vrsqrt14pd",
            "rcpps",
            "rsqrtps",
            "vrcpps",
            "vrsqrtps",
        ],
        Any,
        None,
        u(DIV),
        5,
        1.0,
        VecAlu,
    ));
    t.push(e(
        &["vandnpd", "vandnps", "andnpd", "andnps"],
        V512,
        None,
        u(FMA512),
        1,
        0.5,
        VecAlu,
    ));
    t.push(e(
        &["vandnpd", "vandnps", "andnpd", "andnps"],
        Any,
        None,
        u(FP3),
        1,
        1.0 / 3.0,
        VecAlu,
    ));
    t.push(e(
        &["vhaddpd", "haddpd", "vhsubpd"],
        Any,
        None,
        u(SHUF),
        6,
        2.0,
        VecAlu,
    ));
    t.push(e(
        &["vpabsd", "vpabsq", "vpsignd"],
        Any,
        None,
        u(FP3),
        1,
        1.0 / 3.0,
        VecAlu,
    ));
    t.push(e(
        &[
            "vpsllq", "vpsrlq", "vpsraq", "vpslld", "vpsrld", "psllq", "psrlq", "pslld", "psrld",
        ],
        Any,
        None,
        u(PortSet::of(&[P0, P1])),
        1,
        0.5,
        VecAlu,
    ));
    t.push(e(
        &[
            "vpcmpeqq", "vpcmpeqd", "vpcmpgtq", "vpcmpgtd", "pcmpeqd", "pcmpgtd",
        ],
        Any,
        None,
        u(FP3),
        1,
        1.0 / 3.0,
        VecAlu,
    ));
    t.push(e(
        &[
            "vpmovzxdq",
            "vpmovsxdq",
            "vpmovzxwd",
            "vpmovsxwd",
            "pmovzxdq",
        ],
        Any,
        None,
        u(SHUF),
        3,
        0.5,
        VecAlu,
    ));
    t.push(e(
        &[
            "vpextrq",
            "vpextrd",
            "pextrq",
            "vmovmskpd",
            "movmskpd",
            "vpmovmskb",
        ],
        Any,
        None,
        u(PortSet::of(&[P0])),
        3,
        1.0,
        Other,
    ));
    t.push(e(
        &["vpinsrq", "vpinsrd", "pinsrq"],
        Any,
        None,
        u(SHUF),
        4,
        1.0,
        VecAlu,
    ));
    // GPR ↔ XMM moves.
    t.push(e(
        &["vmovq", "vmovd"],
        Any,
        Some(false),
        u(PortSet::of(&[P0, P5])),
        3,
        0.5,
        Other,
    ));
    t.push(e(
        &[
            "vmaskmovpd",
            "vblendmpd",
            "vpblendmq",
            "vpternlogq",
            "vpternlogd",
        ],
        Any,
        None,
        u(FMA512),
        1,
        0.5,
        VecAlu,
    ));
    t.push(e(
        &["kshiftrw", "kshiftlw", "kunpckbw", "kaddw", "kandnw"],
        Any,
        None,
        u(PortSet::of(&[P0])),
        1,
        1.0,
        Other,
    ));
    t.push(e(
        &[
            "vgetexppd",
            "vgetmantpd",
            "vscalefpd",
            "vfixupimmpd",
            "vreducepd",
        ],
        Any,
        None,
        u(FMA512),
        4,
        0.5,
        VecAlu,
    ));
    t.push(e(
        &["vcompresspd", "vexpandpd", "vpcompressq"],
        Any,
        Some(false),
        u(SHUF512),
        3,
        2.0,
        VecAlu,
    ));

    t
}

#[cfg(test)]
mod tests {
    use crate::machine::Machine;
    use isa::parse::parse_line_x86;

    fn desc(m: &Machine, s: &str) -> crate::instr::InstrDesc {
        m.describe(&parse_line_x86(s, 1).unwrap().unwrap())
    }

    #[test]
    fn table3_latencies() {
        let m = Machine::golden_cove();
        assert_eq!(desc(&m, "vaddpd %zmm0, %zmm1, %zmm2").latency, 2);
        assert_eq!(desc(&m, "vmulpd %zmm0, %zmm1, %zmm2").latency, 4);
        assert_eq!(desc(&m, "vfmadd231pd %zmm0, %zmm1, %zmm2").latency, 4);
        assert_eq!(desc(&m, "vdivpd %zmm0, %zmm1, %zmm2").latency, 14);
        assert_eq!(desc(&m, "addsd %xmm0, %xmm1").latency, 2);
        assert_eq!(desc(&m, "mulsd %xmm0, %xmm1").latency, 4);
        assert_eq!(desc(&m, "vfmadd231sd %xmm0, %xmm1, %xmm2").latency, 5);
        assert_eq!(desc(&m, "divsd %xmm0, %xmm1").latency, 14);
    }

    #[test]
    fn table3_throughputs() {
        let m = Machine::golden_cove();
        // 16 DP/cy for zmm ops = rthroughput 0.5 at 8 lanes.
        assert_eq!(desc(&m, "vaddpd %zmm0, %zmm1, %zmm2").rthroughput, 0.5);
        assert_eq!(desc(&m, "vfmadd231pd %zmm0, %zmm1, %zmm2").rthroughput, 0.5);
        // Scalar 2/cy.
        assert_eq!(desc(&m, "addsd %xmm0, %xmm1").rthroughput, 0.5);
        // Divide 0.5 elem/cy → 16 cy for 8 lanes.
        assert_eq!(desc(&m, "vdivpd %zmm0, %zmm1, %zmm2").rthroughput, 16.0);
        assert_eq!(desc(&m, "divsd %xmm0, %xmm1").rthroughput, 4.0);
    }

    #[test]
    fn load_store_recipes() {
        let m = Machine::golden_cove();
        let ld = desc(&m, "vmovupd (%rax), %zmm0");
        assert_eq!(ld.uop_count(), 1);
        assert_eq!(ld.latency, 7);
        assert_eq!(ld.class, crate::instr::InstrClass::Load);
        // 512-bit store = 2 × 256-bit halves → 2 AGU + 2 data µ-ops.
        let st = desc(&m, "vmovupd %zmm0, (%rax)");
        assert_eq!(st.uop_count(), 4);
        assert_eq!(st.class, crate::instr::InstrClass::Store);
        let st256 = desc(&m, "vmovupd %ymm0, (%rax)");
        assert_eq!(st256.uop_count(), 2);
    }

    #[test]
    fn load_op_fusion_adds_latency() {
        let m = Machine::golden_cove();
        let d = desc(&m, "vaddpd (%rax), %zmm1, %zmm2");
        assert_eq!(d.uop_count(), 2);
        assert_eq!(d.latency, 2 + 7);
    }

    #[test]
    fn moves_eliminated() {
        let m = Machine::golden_cove();
        assert_eq!(
            desc(&m, "vmovaps %zmm0, %zmm1").class,
            crate::instr::InstrClass::Eliminated
        );
        assert_eq!(
            desc(&m, "xorl %eax, %eax").class,
            crate::instr::InstrClass::Eliminated
        );
    }

    #[test]
    fn no_fallback_for_common_kernel_ops() {
        let m = Machine::golden_cove();
        for s in [
            "addq $64, %rax",
            "cmpq %rcx, %rax",
            "jne .L2",
            "vmovupd (%rsi,%rax), %zmm0",
            "vfmadd231pd %zmm1, %zmm2, %zmm3",
            "leaq 8(%rax), %rbx",
            "imulq %rcx, %rdx",
        ] {
            assert!(!desc(&m, s).from_fallback, "fallback used for {s}");
        }
    }

    #[test]
    fn unknown_instruction_uses_fallback() {
        let m = Machine::golden_cove();
        let d = desc(&m, "vexp2pd %zmm0, %zmm1");
        assert!(d.from_fallback);
        assert!(!d.uops.is_empty());
    }
}
