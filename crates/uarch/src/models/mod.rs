//! The three machine models. Timing data is compiled from the paper's
//! Tables I–III, the vendor software-optimization guides, and uops.info;
//! where sources disagree, the paper's measured values win.

pub mod cascade_lake;
mod golden_cove;
mod neoverse_v2;
pub mod zen2_rome;
mod zen4;

use crate::instr::{Entry, InstrClass, Uop, WidthClass};
use crate::ports::PortSet;

/// Terse entry constructor used by the model tables.
#[allow(clippy::too_many_arguments)]
pub(crate) fn e(
    mnemonics: &'static [&'static str],
    width: WidthClass,
    mem: Option<bool>,
    uops: Vec<Uop>,
    latency: u32,
    rthroughput: f64,
    class: InstrClass,
) -> Entry {
    Entry {
        mnemonics,
        width,
        mem,
        vector_index: None,
        uops,
        latency,
        rthroughput,
        class,
    }
}

/// One pipelined µ-op on the given ports.
pub(crate) fn u(ports: PortSet) -> Vec<Uop> {
    vec![Uop::new(ports)]
}

/// Two pipelined µ-ops on the same ports (Zen 4's double-pumped AVX-512).
pub(crate) fn u2(ports: PortSet) -> Vec<Uop> {
    vec![Uop::new(ports), Uop::new(ports)]
}

/// A blocking µ-op occupying its port for `occ` cycles (dividers, gathers).
pub(crate) fn ub(ports: PortSet, occ: f64) -> Vec<Uop> {
    vec![Uop::blocking(ports, occ)]
}

/// Pure load/store marker entry: the machine's standard memory recipe is
/// synthesized by [`crate::Machine::describe`].
pub(crate) fn mem_entry(mnemonics: &'static [&'static str], class: InstrClass) -> Entry {
    Entry {
        mnemonics,
        width: WidthClass::Any,
        mem: Some(true),
        vector_index: None,
        uops: Vec::new(),
        latency: 0,
        rthroughput: 0.0,
        class,
    }
}
