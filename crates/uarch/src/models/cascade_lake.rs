//! Intel Cascade Lake SP (Xeon Gold 6248), derived from the Golden Cove
//! model.
//!
//! Parameters follow Velten et al. (arXiv:2204.03290) and the Skylake-SP
//! core papers (Hofmann et al., arXiv:1702.07554 lineage). The Cascade
//! Lake core is an 8-port Skylake-SP: compared to Golden Cove it lacks
//! the second store pipe (ports 8/9), the fifth ALU (port 10), and the
//! third load AGU (port 11) — removing those four ports remaps every
//! port set in the inherited timing table — and allocates 4-wide into a
//! 224-entry ROB. Its two 512-bit FMA units sit on ports 0/5 exactly as
//! on Golden Cove, so the AVX-512 timing table carries over unchanged.

use crate::compose::{golden_cove, MachineBuilder};
use crate::machine::MemorySpec;

/// Cascade Lake SP as a delta against the shipped Golden Cove model.
pub fn cascade_lake() -> MachineBuilder {
    golden_cove()
        .derive(
            "cascade-lake",
            "Cascade Lake",
            "CLX",
            "Intel Xeon Gold 6248",
        )
        // Skylake-SP port layout: stores are one AGU (7) + one 512-bit
        // data pipe (4); loads are two 512-bit AGUs (2, 3); four ALUs.
        .without_port("8")
        .without_port("9")
        .without_port("10")
        .without_port("11")
        .with_store_width_bits(512)
        .with_dispatch_width(4)
        .with_rob(224)
        .with_sched_size(97)
        .with_cores(20)
        .with_frequency(2.5, 3.9)
        .with_units(4, 2)
        .resize_cache("L1d", 32, 8, 4)
        .resize_cache("L2", 1024, 16, 14)
        // 27.5 MiB non-inclusive shared L3.
        .resize_cache("L3", 28160, 11, 44)
        .with_memory(MemorySpec {
            size_gb: 192,
            mem_type: "DDR4-2933",
            theor_bw_gbs: 140.8, // 6 channels × 23.5 GB/s
            efficiency: 0.746,   // ~105 GB/s measured (Velten et al.)
            latency_ns: 90.0,
        })
        .with_tdp(150.0)
        .with_numa_domains(1)
}
