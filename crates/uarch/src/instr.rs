//! Instruction timing descriptors and the database-entry matching machinery.
//!
//! A machine's instruction table is a list of [`Entry`] patterns; looking up
//! a parsed instruction yields an [`InstrDesc`]: the µ-op decomposition with
//! eligible ports and per-port occupancy, the register-to-register latency,
//! and the documented reciprocal throughput.

use crate::ports::PortSet;
use isa::{Instruction, OpSig};

/// Coarse class of an instruction used by the analyzers and the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    IntAlu,
    IntMul,
    IntDiv,
    VecAlu,
    VecMul,
    VecFma,
    VecDiv,
    Load,
    Store,
    Branch,
    Move,
    /// Eliminated at rename: zero idioms, eliminated moves, nops.
    Eliminated,
    Other,
}

/// One micro-operation: it may issue on any port in `ports` and occupies the
/// chosen port for `occupancy` cycles (1.0 for fully pipelined units; the
/// divider holds its port for its full reciprocal throughput).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uop {
    pub ports: PortSet,
    pub occupancy: f64,
}

impl Uop {
    pub fn new(ports: PortSet) -> Self {
        Uop {
            ports,
            occupancy: 1.0,
        }
    }

    pub fn blocking(ports: PortSet, occupancy: f64) -> Self {
        Uop { ports, occupancy }
    }
}

/// Full timing description of one instruction on one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct InstrDesc {
    /// µ-ops in issue order (compute µ-ops plus any load/store µ-ops the
    /// database synthesized for memory operands).
    pub uops: Vec<Uop>,
    /// Register-to-register result latency in cycles (excluding load-to-use
    /// latency, which the memory model adds).
    pub latency: u32,
    /// Documented reciprocal throughput in cycles/instruction, assuming no
    /// other instructions compete for ports.
    pub rthroughput: f64,
    pub class: InstrClass,
    /// Whether the lookup fell back to a heuristic default (the entry was
    /// not in the database) — reported by the analyzers, mirroring OSACA's
    /// "instruction form not found" warnings.
    pub from_fallback: bool,
}

impl InstrDesc {
    /// An instruction removed at rename (zero idiom / eliminated move).
    pub fn eliminated() -> Self {
        InstrDesc {
            uops: Vec::new(),
            latency: 0,
            rthroughput: 0.0,
            class: InstrClass::Eliminated,
            from_fallback: false,
        }
    }

    /// Number of µ-ops this instruction dispatches.
    pub fn uop_count(&self) -> usize {
        self.uops.len()
    }
}

/// Width class an entry applies to, matched against the instruction's widest
/// vector register (0 = scalar / GPR-only form).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WidthClass {
    /// Any operand shape.
    Any,
    /// No vector register present (scalar integer or FP-in-GPR form).
    Scalar,
    /// Widest vector register access is a genuine 128-bit vector (xmm /
    /// NEON `v`/`q` / SVE @128). Narrower accesses (`d`/`s` scalar-FP
    /// views) fall under [`WidthClass::ScalarFp`].
    V128,
    /// 256-bit (ymm).
    V256,
    /// 512-bit (zmm).
    V512,
    /// Scalar-FP-on-vector-register (`addsd %xmm`, `fadd d0` — width via
    /// mnemonic/register view rather than full vector width).
    ScalarFp,
}

impl WidthClass {
    fn matches(&self, inst: &Instruction) -> bool {
        let w = inst.max_vec_width();
        match self {
            WidthClass::Any => true,
            WidthClass::Scalar => w == 0,
            WidthClass::V128 => (65..=128).contains(&w),
            WidthClass::V256 => w == 256,
            WidthClass::V512 => w == 512,
            WidthClass::ScalarFp => is_scalar_fp(inst),
        }
    }
}

/// Whether an instruction is a scalar-FP operation carried on a vector
/// register (x86 `*sd`/`*ss`, AArch64 `d`/`s`-view FP math).
pub fn is_scalar_fp(inst: &Instruction) -> bool {
    match inst.isa {
        isa::Isa::X86 => {
            let m = inst.mnemonic.as_str();
            (m.ends_with("sd") || m.ends_with("ss"))
                && !m.starts_with("mov")
                && !m.starts_with("vmov")
                && inst.max_vec_width() > 0
        }
        isa::Isa::AArch64 => {
            // Scalar FP views are ≤ 64-bit vector-register accesses.
            let w = inst.max_vec_width();
            w > 0 && w <= 64
        }
    }
}

/// A database entry: a pattern over (normalized mnemonic, width class,
/// memory presence) plus the timing for matching instructions.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Normalized mnemonics this entry covers (see
    /// [`isa::Instruction::norm_mnemonic`]).
    pub mnemonics: &'static [&'static str],
    pub width: WidthClass,
    /// `Some(true)`: only register-memory forms; `Some(false)`: only
    /// register-only forms; `None`: both (memory µ-ops are synthesized).
    pub mem: Option<bool>,
    /// `Some(true)`: the memory operand's index must be a vector register
    /// (gather/scatter addressing); `Some(false)`: must not; `None`: any.
    pub vector_index: Option<bool>,
    /// Compute µ-ops (excluding any synthesized load/store µ-ops).
    pub uops: Vec<Uop>,
    pub latency: u32,
    pub rthroughput: f64,
    pub class: InstrClass,
}

impl Entry {
    /// Whether this entry matches the given instruction.
    pub fn matches(&self, inst: &Instruction) -> bool {
        if !self.mnemonics.contains(&inst.norm_mnemonic()) {
            return false;
        }
        if !self.width.matches(inst) {
            return false;
        }
        let mem_ok = match self.mem {
            Some(true) => inst.mem_position().is_some(),
            Some(false) => inst.mem_position().is_none(),
            None => true,
        };
        if !mem_ok {
            return false;
        }
        match self.vector_index {
            None => true,
            Some(want) => {
                let has_vec_index = inst
                    .mem_position()
                    .and_then(|p| inst.operands[p].as_mem())
                    .and_then(|m| m.index)
                    .is_some_and(|r| r.class == isa::RegClass::Vec);
                has_vec_index == want
            }
        }
    }
}

/// Builder-style helper for terse machine-table definitions.
pub fn entry(
    mnemonics: &'static [&'static str],
    width: WidthClass,
    uops: Vec<Uop>,
    latency: u32,
    rthroughput: f64,
    class: InstrClass,
) -> Entry {
    Entry {
        mnemonics,
        width,
        mem: None,
        vector_index: None,
        uops,
        latency,
        rthroughput,
        class,
    }
}

/// Signature-based helpers used in tests and reports.
pub fn sig_string(sigs: &[OpSig]) -> String {
    sigs.iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::parse::parse_line_x86;

    fn x86(s: &str) -> Instruction {
        parse_line_x86(s, 1).unwrap().unwrap()
    }

    #[test]
    fn width_class_matching() {
        assert!(WidthClass::V512.matches(&x86("vaddpd %zmm0, %zmm1, %zmm2")));
        assert!(!WidthClass::V512.matches(&x86("vaddpd %ymm0, %ymm1, %ymm2")));
        assert!(WidthClass::V256.matches(&x86("vaddpd %ymm0, %ymm1, %ymm2")));
        assert!(WidthClass::Scalar.matches(&x86("addq %rax, %rbx")));
        assert!(!WidthClass::Scalar.matches(&x86("addpd %xmm0, %xmm1")));
        assert!(WidthClass::Any.matches(&x86("nop")));
    }

    #[test]
    fn scalar_fp_detection() {
        assert!(is_scalar_fp(&x86("addsd %xmm0, %xmm1")));
        assert!(is_scalar_fp(&x86("vmulsd %xmm0, %xmm1, %xmm2")));
        assert!(!is_scalar_fp(&x86("addpd %xmm0, %xmm1")));
        assert!(!is_scalar_fp(&x86("movsd (%rax), %xmm0")));
        use isa::parse::parse_line_aarch64;
        let a = parse_line_aarch64("fadd d0, d1, d2", 1).unwrap().unwrap();
        assert!(is_scalar_fp(&a));
        let v = parse_line_aarch64("fadd v0.2d, v1.2d, v2.2d", 1)
            .unwrap()
            .unwrap();
        assert!(!is_scalar_fp(&v));
    }

    #[test]
    fn entry_matching_with_mem_constraint() {
        let e = Entry {
            mnemonics: &["vaddpd"],
            width: WidthClass::V512,
            mem: Some(false),
            vector_index: None,
            uops: vec![Uop::new(PortSet::of(&[0, 5]))],
            latency: 2,
            rthroughput: 0.5,
            class: InstrClass::VecAlu,
        };
        assert!(e.matches(&x86("vaddpd %zmm0, %zmm1, %zmm2")));
        assert!(!e.matches(&x86("vaddpd (%rax), %zmm1, %zmm2")));
        assert!(!e.matches(&x86("vmulpd %zmm0, %zmm1, %zmm2")));
    }

    #[test]
    fn normalized_mnemonic_matching() {
        let e = entry(
            &["add", "sub"],
            WidthClass::Scalar,
            vec![Uop::new(PortSet::of(&[0, 1, 5, 6]))],
            1,
            0.25,
            InstrClass::IntAlu,
        );
        assert!(e.matches(&x86("addq $8, %rax")));
        assert!(e.matches(&x86("subl %ecx, %edx")));
        assert!(!e.matches(&x86("imulq %rcx, %rdx")));
    }

    #[test]
    fn eliminated_desc() {
        let d = InstrDesc::eliminated();
        assert_eq!(d.uop_count(), 0);
        assert_eq!(d.class, InstrClass::Eliminated);
    }

    #[test]
    fn blocking_uop_occupancy() {
        let u = Uop::blocking(PortSet::single(0), 4.0);
        assert_eq!(u.occupancy, 4.0);
        assert_eq!(Uop::new(PortSet::single(0)).occupancy, 1.0);
    }
}
