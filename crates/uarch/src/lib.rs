//! Microarchitecture layer: port models and per-instruction timing
//! databases for the three cores the paper analyzes —
//! **Neoverse V2** (Nvidia Grace CPU Superchip), **Golden Cove**
//! (Intel Xeon Platinum 8470 "Sapphire Rapids"), and **Zen 4**
//! (AMD EPYC 9684X "Genoa").
//!
//! The central type is [`Machine`]: a complete machine description (ports,
//! front-end width, out-of-order resources, caches, memory, frequency and
//! power envelope) plus an instruction database that maps any parsed
//! [`isa::Instruction`] to its µ-op decomposition, latency, and documented
//! reciprocal throughput via [`Machine::describe`].
//!
//! # Example
//!
//! ```
//! use uarch::{Machine, Arch};
//! use isa::{parse_kernel, Isa};
//!
//! let spr = Machine::golden_cove();
//! let kernel = parse_kernel("vfmadd231pd %zmm0, %zmm1, %zmm2", Isa::X86).unwrap();
//! let desc = spr.describe(&kernel.instructions[0]);
//! assert_eq!(desc.latency, 4);          // Table III: FMA latency 4 cy
//! assert_eq!(spr.arch, Arch::GoldenCove);
//! ```

pub mod compose;
pub mod instr;
pub mod machine;
pub mod models;
pub mod ports;
pub mod predict;
pub mod registry;
pub mod spec;

pub use compose::{Feature, MachineBuilder};
pub use instr::{Entry, InstrClass, InstrDesc, Uop, WidthClass};
pub use machine::{Arch, CacheLevel, Machine, MemorySpec};
pub use ports::{PortModel, PortSet};
pub use predict::{Bottleneck, Prediction, Predictor};

/// All three machine models, in the paper's presentation order
/// (GCS, SPR, Genoa).
pub fn all_machines() -> Vec<Machine> {
    vec![
        Machine::neoverse_v2(),
        Machine::golden_cove(),
        Machine::zen4(),
    ]
}
mod coverage_tests;
