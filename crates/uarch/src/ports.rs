//! Execution-port model: named issue ports with capability tags, and
//! bitmask port sets used by µ-ops.

use std::fmt;

/// A set of execution ports, represented as a bitmask over the machine's
/// port list (bit *i* = port *i* in [`PortModel::ports`]). All machines in
/// this crate have ≤ 17 ports, so a `u32` suffices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PortSet(pub u32);

impl PortSet {
    pub const EMPTY: PortSet = PortSet(0);

    /// Set containing the single port `i`.
    pub const fn single(i: usize) -> Self {
        PortSet(1 << i)
    }

    /// Build from a list of port indices.
    pub const fn of(indices: &[usize]) -> Self {
        let mut m = 0u32;
        let mut i = 0;
        while i < indices.len() {
            m |= 1 << indices[i];
            i += 1;
        }
        PortSet(m)
    }

    pub fn contains(&self, port: usize) -> bool {
        self.0 & (1 << port) != 0
    }

    pub fn count(&self) -> u32 {
        self.0.count_ones()
    }

    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    pub fn union(&self, other: PortSet) -> PortSet {
        PortSet(self.0 | other.0)
    }

    pub fn intersect(&self, other: PortSet) -> PortSet {
        PortSet(self.0 & other.0)
    }

    /// Iterate over contained port indices.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..32).filter(move |i| self.contains(*i))
    }
}

impl fmt::Display for PortSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (n, i) in self.iter().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "]")
    }
}

/// Functional capability of a port, used for rendering (Fig. 1) and for
/// sanity-checking the instruction database against Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortCap {
    /// Single-cycle integer ALU.
    IntAlu,
    /// Multi-cycle integer (mul/div).
    IntMul,
    /// Branch resolution.
    Branch,
    /// FP/SIMD vector ALU.
    VecAlu,
    /// FP FMA-capable.
    VecFma,
    /// FP divide/sqrt.
    VecDiv,
    /// Load address generation / load pipe.
    Load,
    /// Store address generation.
    StoreAgu,
    /// Store data.
    StoreData,
    /// SVE/AVX-512 predicate/mask operations.
    PredOp,
}

/// One named execution port.
#[derive(Debug, Clone)]
pub struct Port {
    /// Short display name, e.g. `"V0"` or `"5"`.
    pub name: &'static str,
    pub caps: Vec<PortCap>,
}

/// A machine's complete port model.
#[derive(Debug, Clone)]
pub struct PortModel {
    pub ports: Vec<Port>,
}

impl PortModel {
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// All ports with a given capability.
    pub fn with_cap(&self, cap: PortCap) -> PortSet {
        let mut s = PortSet::EMPTY;
        for (i, p) in self.ports.iter().enumerate() {
            if p.caps.contains(&cap) {
                s = s.union(PortSet::single(i));
            }
        }
        s
    }

    /// Port index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.ports.iter().position(|p| p.name == name)
    }

    /// Render an ASCII block diagram of the port model (used to regenerate
    /// Fig. 1 of the paper for any of the three machines).
    pub fn render(&self, title: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{title}");
        let _ = writeln!(out, "{}", "=".repeat(title.len()));
        let _ = writeln!(out, "{} issue ports", self.num_ports());
        let _ = writeln!(out, "{}", "-".repeat(60));
        for p in &self.ports {
            let caps: Vec<String> = p.caps.iter().map(|c| format!("{c:?}")).collect();
            let _ = writeln!(out, "  port {:<4} | {}", p.name, caps.join(" + "));
        }
        let _ = writeln!(out, "{}", "-".repeat(60));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portset_basics() {
        let s = PortSet::of(&[0, 2, 5]);
        assert!(s.contains(0) && s.contains(2) && s.contains(5));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 2, 5]);
        assert_eq!(s.to_string(), "[0,2,5]");
    }

    #[test]
    fn portset_algebra() {
        let a = PortSet::of(&[0, 1]);
        let b = PortSet::of(&[1, 2]);
        assert_eq!(a.union(b), PortSet::of(&[0, 1, 2]));
        assert_eq!(a.intersect(b), PortSet::of(&[1]));
        assert!(PortSet::EMPTY.is_empty());
    }

    #[test]
    fn capability_query() {
        let pm = PortModel {
            ports: vec![
                Port {
                    name: "0",
                    caps: vec![PortCap::IntAlu, PortCap::VecFma],
                },
                Port {
                    name: "1",
                    caps: vec![PortCap::IntAlu],
                },
                Port {
                    name: "2",
                    caps: vec![PortCap::Load],
                },
            ],
        };
        assert_eq!(pm.with_cap(PortCap::IntAlu), PortSet::of(&[0, 1]));
        assert_eq!(pm.with_cap(PortCap::Load), PortSet::of(&[2]));
        assert_eq!(pm.index_of("2"), Some(2));
        assert!(pm.render("Test").contains("3 issue ports"));
    }
}
