//! Complete machine descriptions and instruction-database lookup.

use crate::instr::{Entry, InstrClass, InstrDesc, Uop};
use crate::ports::{PortModel, PortSet};
use isa::{Instruction, Isa};
use serde::Serialize;

/// The three microarchitectures under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Arch {
    /// Arm Neoverse V2 — Nvidia Grace CPU Superchip.
    NeoverseV2,
    /// Intel Golden Cove — Xeon Platinum 8470 (Sapphire Rapids).
    GoldenCove,
    /// AMD Zen 4 — EPYC 9684X (Genoa-X).
    Zen4,
}

impl Arch {
    pub fn label(&self) -> &'static str {
        match self {
            Arch::NeoverseV2 => "Neoverse V2",
            Arch::GoldenCove => "Golden Cove",
            Arch::Zen4 => "Zen 4",
        }
    }

    /// The chip/server shorthand the paper uses.
    pub fn chip(&self) -> &'static str {
        match self {
            Arch::NeoverseV2 => "GCS",
            Arch::GoldenCove => "SPR",
            Arch::Zen4 => "Genoa",
        }
    }
}

/// One cache level of the hierarchy (Table I).
#[derive(Debug, Clone, Serialize)]
pub struct CacheLevel {
    pub name: &'static str,
    pub size_kib: u64,
    pub line_bytes: u32,
    pub assoc: u32,
    /// Shared across the chip (L3) vs. private per core (L1/L2).
    pub shared: bool,
    /// Load-to-use latency in cycles.
    pub latency_cy: u32,
}

/// Main-memory subsystem parameters (Table I).
#[derive(Debug, Clone, Serialize)]
pub struct MemorySpec {
    pub size_gb: u32,
    pub mem_type: &'static str,
    /// Theoretical peak bandwidth, GB/s per socket.
    pub theor_bw_gbs: f64,
    /// Measured sustainable fraction of the theoretical peak
    /// (paper: GCS 87 %, SPR 90 %, Genoa 78 %).
    pub efficiency: f64,
    /// Idle memory access latency in ns (used by the memory simulator).
    pub latency_ns: f64,
}

impl MemorySpec {
    /// Measured/sustained bandwidth in GB/s.
    pub fn measured_bw_gbs(&self) -> f64 {
        self.theor_bw_gbs * self.efficiency
    }
}

/// A complete machine model: identification, port model, front-end and OoO
/// resources, memory pipes, chip-level data, and the instruction database.
#[derive(Debug, Clone)]
pub struct Machine {
    pub arch: Arch,
    /// Stable registry identifier (`incore-cli machines`); equals the
    /// family name (`neoverse-v2` / `golden-cove` / `zen4`) for the three
    /// shipped models, and a derived id (`zen2-rome`, …) for variants.
    pub id: &'static str,
    /// Human-readable microarchitecture name used in report labels.
    pub name: &'static str,
    /// Chip/system shorthand used as the short report label (paper: GCS,
    /// SPR, Genoa).
    pub chip: &'static str,
    /// Marketing name of the evaluated part.
    pub part: &'static str,
    pub isa: Isa,
    /// Widest vector register (bits) the modeled ISA extensions decode;
    /// `simd_width_bits` may be narrower when wide ops are double-pumped
    /// (Zen 4 runs AVX-512 on 256-bit datapaths). The corpus generator
    /// clamps compiler vector widths to this.
    pub max_isa_vec_bits: u16,
    pub port_model: PortModel,
    /// Instruction timing database; first matching entry wins.
    pub table: Vec<Entry>,

    // Front end & out-of-order resources.
    /// µ-ops renamed/dispatched per cycle.
    pub dispatch_width: u32,
    pub retire_width: u32,
    pub rob_size: u32,
    pub sched_size: u32,
    /// Renamer eliminates register-register moves.
    pub move_elimination: bool,

    // Memory pipes.
    /// Ports that can execute a load µ-op (at native width).
    pub load_ports: PortSet,
    /// Ports usable for full-SIMD-width loads when narrower than
    /// `load_ports` (Golden Cove executes only two 512-bit loads/cy even
    /// though it has three load AGUs).
    pub load_ports_wide: PortSet,
    pub store_agu_ports: PortSet,
    pub store_data_ports: PortSet,
    /// L1 load-to-use latency (cycles).
    pub l1_load_latency: u32,
    /// Width of one load/store pipe in bits (Table II).
    pub load_width_bits: u16,
    pub store_width_bits: u16,

    // Chip-level data (Table I / II).
    pub cores: u32,
    pub base_freq_ghz: f64,
    pub max_freq_ghz: f64,
    pub simd_width_bits: u16,
    pub int_units: u32,
    pub fp_vec_units: u32,
    pub caches: Vec<CacheLevel>,
    pub memory: MemorySpec,
    pub tdp_w: f64,
    pub numa_domains: u32,
    /// DP flops/cycle from FMA pipes at full width (2 flops per lane).
    pub fma_dp_flops_per_cycle: u32,
    /// Additional DP flops/cycle from dedicated FP-ADD pipes that can run
    /// concurrently with the FMA pipes (Zen 4's F2/F3 adders).
    pub extra_add_dp_flops_per_cycle: u32,
}

impl Machine {
    /// Theoretical DP peak of the full chip in Tflop/s (Table I), computed
    /// at maximum turbo frequency counting FMA and concurrent ADD pipes.
    pub fn theor_peak_dp_tflops(&self) -> f64 {
        self.cores as f64
            * self.max_freq_ghz
            * (self.fma_dp_flops_per_cycle + self.extra_add_dp_flops_per_cycle) as f64
            / 1000.0
    }

    /// DP elements per SIMD register.
    pub fn dp_lanes(&self) -> u32 {
        (self.simd_width_bits / 64) as u32
    }

    /// Loads per cycle at full SIMD width (Table II row "Loads/cy").
    pub fn loads_per_cycle(&self) -> u32 {
        self.load_ports_wide.count()
    }

    /// Stores per cycle (Table II row "Stores/cy").
    pub fn stores_per_cycle(&self) -> u32 {
        self.store_data_ports.count()
    }

    /// Look up the timing description for an instruction.
    ///
    /// Lookup order: rename-eliminated idioms → explicit database entry →
    /// synthesized load/store recipe → heuristic fallback. Memory µ-ops are
    /// synthesized and appended for entries that match register-memory
    /// forms.
    pub fn describe(&self, inst: &Instruction) -> InstrDesc {
        if inst.is_nop() || inst.is_zero_idiom() || (self.move_elimination && inst.is_reg_move()) {
            return InstrDesc::eliminated();
        }

        let entry = self.table.iter().find(|e| e.matches(inst));

        let mut desc = match entry {
            Some(e) => InstrDesc {
                uops: e.uops.clone(),
                latency: e.latency,
                rthroughput: e.rthroughput,
                class: e.class,
                from_fallback: false,
            },
            None => self.fallback(inst),
        };

        // Synthesize memory µ-ops. Entries with explicit µ-ops and a memory
        // class (gathers/scatters) already model their memory traffic and
        // are taken as-is; everything else gets the machine's standard
        // recipe, splitting accesses wider than one pipe into several µ-ops
        // (`ldp q,q` on V2, 512-bit accesses on Zen 4 / SPR stores).
        let explicit_mem =
            matches!(desc.class, InstrClass::Load | InstrClass::Store) && !desc.uops.is_empty();
        if !explicit_mem {
            if inst.is_load() {
                let n = self.mem_uop_count(inst, self.load_width_bits);
                let wide = inst.mem_access_bytes() * 8 >= self.load_width_bits as u32
                    && !self.load_ports_wide.is_empty()
                    && self.load_ports_wide != self.load_ports;
                let ports = if wide {
                    self.load_ports_wide
                } else {
                    self.load_ports
                };
                for _ in 0..n {
                    desc.uops.push(Uop::new(ports));
                }
                let pure =
                    matches!(desc.class, InstrClass::Load | InstrClass::Move) && !inst.is_store();
                if pure {
                    desc.class = InstrClass::Load;
                    desc.latency = self.l1_load_latency;
                    desc.rthroughput = desc.rthroughput.max(n as f64 / ports.count() as f64);
                } else {
                    // Load-op form: charge the L1 latency on the dependency
                    // path through the memory operand.
                    desc.latency += self.l1_load_latency;
                }
            }
            if inst.is_store() {
                let n = self.mem_uop_count(inst, self.store_width_bits);
                for _ in 0..n {
                    desc.uops.push(Uop::new(self.store_agu_ports));
                    desc.uops.push(Uop::new(self.store_data_ports));
                }
                if !inst.is_load()
                    && matches!(
                        desc.class,
                        InstrClass::Load | InstrClass::Store | InstrClass::Move
                    )
                {
                    desc.class = InstrClass::Store;
                    desc.latency = 0;
                    desc.rthroughput = desc
                        .rthroughput
                        .max(n as f64 / self.store_data_ports.count() as f64);
                }
            }
        }
        desc
    }

    /// Number of memory µ-ops an access needs given the pipe width.
    fn mem_uop_count(&self, inst: &Instruction, pipe_bits: u16) -> usize {
        let bits = (inst.mem_access_bytes() * 8).max(8);
        (bits as usize).div_ceil(pipe_bits as usize).max(1)
    }

    /// Heuristic default for instruction forms not in the database, in the
    /// spirit of OSACA's "form not found, assuming defaults" path.
    fn fallback(&self, inst: &Instruction) -> InstrDesc {
        use crate::ports::PortCap;
        let pm = &self.port_model;
        let (ports, latency, class) = if inst.is_branch() {
            (pm.with_cap(PortCap::Branch), 1, InstrClass::Branch)
        } else if inst.is_store() {
            // Handled by the store synthesizer; empty compute part.
            return InstrDesc {
                uops: Vec::new(),
                latency: 0,
                rthroughput: 0.0,
                class: InstrClass::Store,
                from_fallback: true,
            };
        } else if inst.is_load() {
            return InstrDesc {
                uops: Vec::new(),
                latency: 0,
                rthroughput: 0.0,
                class: InstrClass::Load,
                from_fallback: true,
            };
        } else if inst.max_vec_width() > 0 {
            (pm.with_cap(PortCap::VecAlu), 3, InstrClass::VecAlu)
        } else {
            (pm.with_cap(PortCap::IntAlu), 1, InstrClass::IntAlu)
        };
        let n512_split = self.arch == Arch::Zen4 && inst.max_vec_width() == 512;
        let mut uops = vec![Uop::new(ports)];
        if n512_split {
            uops.push(Uop::new(ports));
        }
        InstrDesc {
            rthroughput: uops.len() as f64 / ports.count().max(1) as f64,
            uops,
            latency,
            class,
            from_fallback: true,
        }
    }

    /// Describe every instruction of a kernel.
    pub fn describe_kernel(&self, kernel: &isa::Kernel) -> Vec<InstrDesc> {
        kernel
            .instructions
            .iter()
            .map(|i| self.describe(i))
            .collect()
    }

    /// Constituent data of the paper's Table II for this machine.
    pub fn table2_row(&self) -> Table2Row {
        Table2Row {
            chip: self.chip,
            uarch: self.name,
            num_ports: self.port_model.num_ports() as u32,
            simd_width_bytes: (self.simd_width_bits / 8) as u32,
            int_units: self.int_units,
            fp_vec_units: self.fp_vec_units,
            loads_per_cycle: self.loads_per_cycle(),
            load_width_bits: self.load_width_bits as u32,
            stores_per_cycle: self.stores_per_cycle(),
            store_width_bits: self.store_width_bits as u32,
        }
    }
}

/// One row of the paper's Table II.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct Table2Row {
    pub chip: &'static str,
    pub uarch: &'static str,
    pub num_ports: u32,
    pub simd_width_bytes: u32,
    pub int_units: u32,
    pub fp_vec_units: u32,
    pub loads_per_cycle: u32,
    pub load_width_bits: u32,
    pub stores_per_cycle: u32,
    pub store_width_bits: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_flops_match_table1() {
        // Table I: 3.92, 6.32, 8.52 Tflop/s.
        let gcs = Machine::neoverse_v2();
        let spr = Machine::golden_cove();
        let genoa = Machine::zen4();
        assert!(
            (gcs.theor_peak_dp_tflops() - 3.92).abs() < 0.02,
            "{}",
            gcs.theor_peak_dp_tflops()
        );
        assert!(
            (spr.theor_peak_dp_tflops() - 6.32).abs() < 0.02,
            "{}",
            spr.theor_peak_dp_tflops()
        );
        assert!(
            (genoa.theor_peak_dp_tflops() - 8.52).abs() < 0.03,
            "{}",
            genoa.theor_peak_dp_tflops()
        );
    }

    #[test]
    fn table2_counts_match_paper() {
        let gcs = Machine::neoverse_v2().table2_row();
        assert_eq!(gcs.num_ports, 17);
        assert_eq!(gcs.simd_width_bytes, 16);
        assert_eq!(gcs.int_units, 6);
        assert_eq!(gcs.fp_vec_units, 4);
        assert_eq!((gcs.loads_per_cycle, gcs.load_width_bits), (3, 128));
        assert_eq!((gcs.stores_per_cycle, gcs.store_width_bits), (2, 128));

        let spr = Machine::golden_cove().table2_row();
        assert_eq!(spr.num_ports, 12);
        assert_eq!(spr.simd_width_bytes, 64);
        assert_eq!(spr.int_units, 5);
        assert_eq!(spr.fp_vec_units, 3);
        assert_eq!((spr.loads_per_cycle, spr.load_width_bits), (2, 512));
        assert_eq!((spr.stores_per_cycle, spr.store_width_bits), (2, 256));

        let genoa = Machine::zen4().table2_row();
        assert_eq!(genoa.num_ports, 13);
        assert_eq!(genoa.simd_width_bytes, 32);
        assert_eq!(genoa.int_units, 4);
        assert_eq!(genoa.fp_vec_units, 4);
        assert_eq!((genoa.loads_per_cycle, genoa.load_width_bits), (2, 256));
        assert_eq!((genoa.stores_per_cycle, genoa.store_width_bits), (1, 256));
    }

    #[test]
    fn memory_bandwidth_matches_table1() {
        let gcs = Machine::neoverse_v2();
        assert!((gcs.memory.theor_bw_gbs - 546.0).abs() < 1.0);
        assert!((gcs.memory.measured_bw_gbs() - 467.0).abs() < 10.0);
        let spr = Machine::golden_cove();
        assert!((spr.memory.measured_bw_gbs() - 273.0).abs() < 8.0);
        let genoa = Machine::zen4();
        assert!((genoa.memory.measured_bw_gbs() - 360.0).abs() < 8.0);
    }
}
