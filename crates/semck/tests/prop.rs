//! Property harness over fuzzed kernels, both ISAs: the semck analyses
//! must never panic, the dataflow facts must be self-consistent, and
//! every K-rule finding must cite a real source line.
//!
//! Kernels are assembled from pools of syntactically valid instruction
//! templates with proptest-chosen register indices and instruction
//! sequences, so the fuzz space covers accumulators, dead values, flag
//! producers/consumers, loads, stores, and branches in arbitrary orders
//! — including shapes the corpus never produces.

use proptest::prelude::*;
use semck::{lint_kernel_sem, Dfa};

/// One x86 instruction template; `a`/`b`/`c` are vector register indices,
/// `g` a GPR index (both kept small so aliasing collisions are common).
fn x86_line(which: usize, a: u8, b: u8, c: u8, g: u8) -> String {
    let gpr = ["rax", "rbx", "rcx", "rdx", "rsi", "rdi"][g as usize % 6];
    match which % 12 {
        0 => format!("vmulpd %zmm{a}, %zmm{b}, %zmm{c}"),
        1 => format!("vaddpd %zmm{a}, %zmm{b}, %zmm{c}"),
        2 => format!("vfmadd231pd %zmm{a}, %zmm{b}, %zmm{c}"),
        3 => format!("vmovupd (%rsi,%rax), %zmm{c}"),
        4 => format!("vmovupd %zmm{a}, (%rdi,%rax)"),
        5 => format!("movq %{gpr}, %rdx"),
        6 => "addq $8, %rax".to_string(),
        7 => format!("cmpq %rcx, %{gpr}"),
        8 => format!("cmovgq %rbx, %{gpr}"),
        9 => format!("vxorpd %xmm{a}, %xmm{b}, %xmm{c}"),
        10 => "subq $1, %rcx".to_string(),
        _ => format!("imulq $3, %{gpr}, %rbx"),
    }
}

/// One AArch64 instruction template.
fn a64_line(which: usize, a: u8, b: u8, c: u8, g: u8) -> String {
    let x = ["x0", "x1", "x2", "x3", "x4"][g as usize % 5];
    match which % 10 {
        0 => format!("fmla v{c}.2d, v{a}.2d, v{b}.2d"),
        1 => format!("fmul v{c}.2d, v{a}.2d, v{b}.2d"),
        2 => format!("fadd v{c}.2d, v{a}.2d, v{b}.2d"),
        3 => format!("ldr q{c}, [x1], #16"),
        4 => format!("str q{a}, [x2]"),
        5 => format!("add {x}, {x}, #8"),
        6 => format!("cmp {x}, x5"),
        7 => "csel x6, x7, x8, gt".to_string(),
        8 => format!("fdiv v{c}.2d, v{a}.2d, v{b}.2d"),
        _ => "subs x2, x2, #1".to_string(),
    }
}

/// Assemble a kernel: label, the chosen body lines, and one of three
/// closers (conditional branch, unconditional jump, or straight-line).
fn assemble(isa: isa::Isa, picks: &[(usize, u8, u8, u8, u8)], closer: usize) -> String {
    let mut s = String::from(".L1:\n");
    for &(w, a, b, c, g) in picks {
        let line = match isa {
            isa::Isa::X86 => x86_line(w, a, b, c, g),
            isa::Isa::AArch64 => a64_line(w, a, b, c, g),
        };
        s.push_str("    ");
        s.push_str(&line);
        s.push('\n');
    }
    match (isa, closer % 3) {
        (isa::Isa::X86, 0) => s.push_str("    jne .L1\n"),
        (isa::Isa::X86, 1) => s.push_str("    jmp .L1\n"),
        (isa::Isa::AArch64, 0) => s.push_str("    b.ne .L1\n"),
        (isa::Isa::AArch64, 1) => s.push_str("    b .L1\n"),
        _ => {}
    }
    s
}

/// The invariants every fuzzed kernel must satisfy.
fn check(machine: &uarch::Machine, asm: &str) {
    let kernel = match isa::parse_kernel(asm, machine.isa) {
        Ok(k) => k,
        Err(e) => panic!("template must parse: {e}\n{asm}"),
    };
    let dfa = Dfa::build(&kernel);

    // Self-consistency: an unresolved use is exactly an external input,
    // and no input register is ever written in the body.
    for u in &dfa.uses {
        match u.def {
            None => prop_assert!(
                dfa.inputs.contains(&u.reg.id()),
                "unresolved use of {:?} not recorded as input\n{asm}",
                u.reg
            ),
            Some(d) => prop_assert!(d.inst < dfa.n, "dangling def index\n{asm}"),
        }
    }
    for d in &dfa.defs {
        prop_assert!(
            !dfa.inputs.contains(&d.reg.id()),
            "{:?} is written at {} yet marked external\n{asm}",
            d.reg,
            d.inst
        );
    }
    // Liveness ⊆ reaching definitions ∪ inputs: anything live somewhere
    // must have a producer in the body or live outside it.
    let written: std::collections::BTreeSet<_> = dfa.defs.iter().map(|d| d.reg.id()).collect();
    for (i, live) in dfa.live_in.iter().enumerate() {
        for r in live {
            prop_assert!(
                written.contains(r) || dfa.inputs.contains(r),
                "live-in {r:?} at {i} has neither a def nor input status\n{asm}"
            );
        }
    }
    // Dependency edges stay inside the body.
    for (from, to, _, _) in dfa.dep_edges() {
        prop_assert!(from < dfa.n && to < dfa.n);
    }

    // The K-rules must not panic, and every localized finding must cite
    // a line some instruction actually sits on.
    let lines: std::collections::BTreeSet<usize> =
        kernel.instructions.iter().map(|i| i.line).collect();
    for d in lint_kernel_sem(machine, &kernel) {
        if let Some(span) = &d.span {
            if span.line > 0 {
                prop_assert!(
                    lines.contains(&span.line),
                    "{} cites line {} which no instruction occupies\n{asm}",
                    d.code,
                    span.line
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn x86_kernels_analyze_cleanly(
        picks in proptest::collection::vec(
            (0usize..12, 0u8..8, 0u8..8, 0u8..8, 0u8..8), 1..9),
        closer in 0usize..3,
    ) {
        let asm = assemble(isa::Isa::X86, &picks, closer);
        check(&uarch::Machine::golden_cove(), &asm);
        check(&uarch::Machine::zen4(), &asm);
    }

    #[test]
    fn a64_kernels_analyze_cleanly(
        picks in proptest::collection::vec(
            (0usize..10, 0u8..8, 0u8..8, 0u8..8, 0u8..8), 1..9),
        closer in 0usize..3,
    ) {
        let asm = assemble(isa::Isa::AArch64, &picks, closer);
        check(&uarch::Machine::neoverse_v2(), &asm);
    }
}
