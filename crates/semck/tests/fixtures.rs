//! One positive and one negative fixture per semck-owned rule code,
//! mirroring `crates/diag/tests/fixtures.rs`: every rule this crate (or
//! the exec sanitizer it reports for) implements must fire on its
//! seeded-defect fixture and stay silent on its clean twin. The coverage
//! assertion closes the loop with diag's `EXTERNAL` list, so a rule
//! registered there can never lose its fixture silently.

use diag::Diagnostic;
use isa::{parse_kernel, Isa};
use semck::{lint_admission, lint_kernel_sem};
use uarch::Machine;

fn kernel_diags(asm: &str) -> Vec<Diagnostic> {
    let k = parse_kernel(asm, Isa::X86).unwrap();
    lint_kernel_sem(&Machine::golden_cove(), &k)
}

fn has(diags: &[Diagnostic], code: &str) -> bool {
    diags.iter().any(|d| d.code == code)
}

const CLEAN_X86: &str = ".L1:
    vmovupd (%rsi,%rax), %zmm0
    vfmadd231pd %zmm1, %zmm2, %zmm0
    vmovupd %zmm0, (%rdi,%rax)
    addq $64, %rax
    cmpq %rcx, %rax
    jne .L1
";

struct Fixture {
    code: &'static str,
    positive: fn() -> Vec<Diagnostic>,
    negative: fn() -> Vec<Diagnostic>,
}

fn sanitizer_fixture(fault: exec::sanitizer::Fault) -> Vec<Diagnostic> {
    // Release builds compile the sanitizer hooks out; the S-rule fixture
    // suite is meaningful only under debug_assertions (CI runs it there).
    if !cfg!(debug_assertions) {
        return Vec::new();
    }
    let m = Machine::golden_cove();
    // The divider loop takes the teleport path, so every S-check site
    // (clock jump, port grant, readiness re-check, teleport fingerprint)
    // is exercised by this one kernel.
    let k = parse_kernel(
        ".L1:\n vdivpd %zmm1, %zmm2, %zmm4\n subq $1, %rax\n jne .L1\n",
        Isa::X86,
    )
    .unwrap();
    let (_, v) = exec::sanitizer::capture(|| {
        exec::sanitizer::inject(fault);
        exec::simulate(&m, &k, exec::SimConfig::default())
    });
    semck::violations_to_diags(&v)
}

fn sanitizer_clean() -> Vec<Diagnostic> {
    let m = Machine::golden_cove();
    let k = parse_kernel(
        ".L1:\n vdivpd %zmm1, %zmm2, %zmm4\n subq $1, %rax\n jne .L1\n",
        Isa::X86,
    )
    .unwrap();
    let (_, d) = semck::sanitize_simulation(&m, &k, exec::SimConfig::default());
    d
}

const FIXTURES: &[Fixture] = &[
    Fixture {
        code: "K007",
        // cmov consuming flags nothing sets (the mov filler must not
        // define flags, or they would reach the cmov via the back edge).
        positive: || kernel_diags(".L1:\n cmovgq %rbx, %rdx\n movq %rcx, %rax\n jmp .L1\n"),
        negative: || kernel_diags(CLEAN_X86),
    },
    Fixture {
        code: "K008",
        // A multiply whose result feeds nothing observable.
        positive: || kernel_diags(".L1:\n vmulpd %zmm0, %zmm1, %zmm5\n subq $1, %rax\n jne .L1\n"),
        negative: || kernel_diags(CLEAN_X86),
    },
    Fixture {
        code: "K009",
        // The first compare's flags are shadowed before the branch.
        positive: || {
            kernel_diags(".L1:\n addq $8, %rax\n cmpq %rdx, %rbx\n cmpq %rcx, %rax\n jne .L1\n")
        },
        negative: || kernel_diags(CLEAN_X86),
    },
    Fixture {
        code: "K010",
        // No seeded positive exists through the public API: the framework
        // and the depgraph implement the same resolution rule, and making
        // them disagree requires corrupting one of them. The firing path
        // is proven by `rules::tests::k010_fires_on_a_tampered_framework`,
        // which feeds the cross-check a doctored edge set.
        positive: Vec::new,
        negative: || kernel_diags(CLEAN_X86),
    },
    Fixture {
        code: "M008",
        positive: || {
            let mut m = Machine::golden_cove();
            m.table
                .retain(|e| !e.mnemonics.iter().any(|mn| mn.starts_with("vfmadd")));
            lint_admission(&m)
        },
        negative: || lint_admission(&Machine::golden_cove()),
    },
    Fixture {
        code: "M009",
        positive: || {
            use uarch::instr::{entry, InstrClass, Uop, WidthClass};
            use uarch::ports::PortSet;
            let mut m = Machine::zen4();
            m.table.push(entry(
                &["__semck_fixture"],
                WidthClass::Any,
                vec![Uop::new(PortSet::single(0))],
                2,
                6.0,
                InstrClass::IntAlu,
            ));
            lint_admission(&m)
        },
        negative: || lint_admission(&Machine::zen4()),
    },
    Fixture {
        code: "M010",
        positive: || {
            let mut m = Machine::neoverse_v2();
            m.dispatch_width = m.port_model.num_ports() as u32 + 1;
            lint_admission(&m)
        },
        negative: || lint_admission(&Machine::neoverse_v2()),
    },
    Fixture {
        code: "S001",
        positive: || sanitizer_fixture(exec::sanitizer::Fault::ClockStall),
        negative: sanitizer_clean,
    },
    Fixture {
        code: "S002",
        positive: || sanitizer_fixture(exec::sanitizer::Fault::PortDoubleGrant),
        negative: sanitizer_clean,
    },
    Fixture {
        code: "S003",
        positive: || sanitizer_fixture(exec::sanitizer::Fault::EarlyWakeup),
        negative: sanitizer_clean,
    },
    Fixture {
        code: "S004",
        positive: || sanitizer_fixture(exec::sanitizer::Fault::TeleportSkew),
        negative: sanitizer_clean,
    },
];

#[test]
fn every_semck_rule_has_a_firing_and_a_clean_fixture() {
    // Exactly the codes diag's fixture suite delegates to this side.
    let covered: Vec<&str> = FIXTURES.iter().map(|f| f.code).collect();
    let expected = [
        "K007", "K008", "K009", "K010", "M008", "M009", "M010", "S001", "S002", "S003", "S004",
    ];
    assert_eq!(covered, expected, "fixture table out of sync with registry");
    for code in expected {
        assert!(diag::rule(code).is_some(), "{code} not registered in diag");
    }
    for f in FIXTURES {
        // K010's doctored-input coverage lives in its own test; S-rule
        // positives only exist in debug builds.
        let skip_positive =
            f.code == "K010" || (f.code.starts_with('S') && !cfg!(debug_assertions));
        if !skip_positive {
            let pos = (f.positive)();
            assert!(
                has(&pos, f.code),
                "{} did not fire on its positive fixture: {pos:?}",
                f.code
            );
        }
        let neg = (f.negative)();
        assert!(
            !has(&neg, f.code),
            "{} fired on its negative fixture: {neg:?}",
            f.code
        );
    }
}

#[test]
fn k010_agreement_holds_on_corpus_samples() {
    // K010's firing path is proven in `rules::tests` with a tampered
    // framework (a public-API positive cannot exist: both analyses derive
    // edges from the same dataflow facts). Here, assert the guarantee the
    // rule exists to protect — linter/model agreement on real corpus
    // kernels, spot-sampled per machine.
    for m in uarch::all_machines() {
        for v in kernels::variants_for(m.arch).into_iter().take(8) {
            let k = kernels::generate_kernel(&v, &m);
            let diags = lint_kernel_sem(&m, &k);
            assert!(!has(&diags, "K010"), "{}: {diags:?}", v.label());
        }
    }
}
