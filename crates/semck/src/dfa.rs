//! Loop-aware dataflow framework over one kernel body.
//!
//! The kernel body is treated as the body of an implicit infinite loop —
//! exactly the execution model of the analyzers and the simulator — so the
//! control-flow graph is a single basic block whose unique successor is
//! itself. Reaching definitions therefore wrap around the back edge: a use
//! with no earlier writer in the same iteration is fed by the *last* writer
//! anywhere in the body, from the previous iteration. This mirrors
//! [`incore::depgraph::DepGraph::build`] exactly (same per-instruction
//! effects from [`isa::dataflow::dataflow`], same nearest-writer /
//! last-writer-anywhere resolution), which is what lets the K010 cross-check
//! guarantee the linter and the model never silently disagree.

use isa::dataflow::{dataflow, Dataflow};
use isa::reg::{RegClass, Register};
use isa::Kernel;
use std::collections::BTreeSet;

/// Canonical register identity, the same key the dependency analyses use.
pub type RegId = (RegClass, u8);

/// One definition site: instruction `inst` writes register `reg`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefSite {
    pub inst: usize,
    pub reg: Register,
}

/// The definition reaching a use: the producing instruction, and whether
/// the value flows around the loop back edge (previous iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReachingDef {
    pub inst: usize,
    pub wrap: bool,
}

/// One use site: instruction `inst` reads register `reg`, fed by `def`
/// (`None` ⇔ no instruction in the body ever writes the register — a loop
/// input that lives outside the block).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UseSite {
    pub inst: usize,
    pub reg: Register,
    pub def: Option<ReachingDef>,
}

/// Def-use / liveness facts for one kernel body under the cyclic
/// (implicit-infinite-loop) execution model.
#[derive(Debug, Clone)]
pub struct Dfa {
    pub n: usize,
    /// Per-instruction register/memory effects.
    pub flows: Vec<Dataflow>,
    /// Every definition site, in program order.
    pub defs: Vec<DefSite>,
    /// Every use site with its resolved reaching definition.
    pub uses: Vec<UseSite>,
    /// Registers read somewhere but never written in the body: the kernel's
    /// external inputs (pointers, trip counts, hoisted constants).
    pub inputs: BTreeSet<RegId>,
    /// Live-in register set before each instruction, from a backwards
    /// fixpoint over the cyclic block.
    pub live_in: Vec<BTreeSet<RegId>>,
}

impl Dfa {
    /// Build the framework facts for a kernel.
    pub fn build(kernel: &Kernel) -> Dfa {
        let n = kernel.instructions.len();
        let flows: Vec<Dataflow> = kernel.instructions.iter().map(dataflow).collect();

        let mut defs = Vec::new();
        for (i, f) in flows.iter().enumerate() {
            for &w in &f.writes {
                defs.push(DefSite { inst: i, reg: w });
            }
        }

        // Reaching definitions, resolved use by use with the depgraph's
        // exact rule: nearest earlier writer intra-iteration, else the last
        // writer anywhere in the body via the back edge.
        let mut uses = Vec::new();
        let mut inputs = BTreeSet::new();
        let writer = |i: usize, r: &Register| flows[i].writes.iter().any(|w| w.aliases(r));
        for (j, f) in flows.iter().enumerate() {
            for &r in &f.reads {
                let intra = (0..j).rev().find(|&i| writer(i, &r));
                let def = match intra {
                    Some(i) => Some(ReachingDef {
                        inst: i,
                        wrap: false,
                    }),
                    None => (0..n).rev().find(|&i| writer(i, &r)).map(|i| ReachingDef {
                        inst: i,
                        wrap: true,
                    }),
                };
                if def.is_none() {
                    inputs.insert(r.id());
                }
                uses.push(UseSite {
                    inst: j,
                    reg: r,
                    def,
                });
            }
        }

        // Backwards liveness fixpoint. Successor of instruction i is
        // (i + 1) mod n — the single-block cyclic CFG — so the fixpoint
        // stabilizes after at most n + 1 sweeps.
        let mut live_in: Vec<BTreeSet<RegId>> = vec![BTreeSet::new(); n];
        let mut changed = n > 0;
        while changed {
            changed = false;
            for i in (0..n).rev() {
                let live_out: BTreeSet<RegId> = if n == 1 {
                    live_in[0].clone()
                } else {
                    live_in[(i + 1) % n].clone()
                };
                let mut next: BTreeSet<RegId> = live_out;
                for w in &flows[i].writes {
                    next.remove(&w.id());
                }
                for r in &flows[i].reads {
                    next.insert(r.id());
                }
                if next != live_in[i] {
                    live_in[i] = next;
                    changed = true;
                }
            }
        }

        Dfa {
            n,
            flows,
            defs,
            uses,
            inputs,
            live_in,
        }
    }

    /// Use sites whose resolved reaching definition is `(inst, reg)`.
    pub fn uses_of_def<'a>(
        &'a self,
        inst: usize,
        reg: &'a Register,
    ) -> impl Iterator<Item = &'a UseSite> + 'a {
        self.uses
            .iter()
            .filter(move |u| u.reg.aliases(reg) && matches!(u.def, Some(d) if d.inst == inst))
    }

    /// Dependency edges `(from, to, via, wrap)` implied by the resolved
    /// uses — the same edge set [`incore::depgraph::DepGraph`] materializes
    /// (modulo latency weights, which are the machine's business).
    pub fn dep_edges(&self) -> Vec<(usize, usize, RegId, bool)> {
        self.uses
            .iter()
            .filter_map(|u| u.def.map(|d| (d.inst, u.inst, u.reg.id(), d.wrap)))
            .collect()
    }

    /// Whether instruction `i` can reach itself through dependency edges
    /// (including wrap edges): membership in a loop-carried dependency
    /// cycle — accumulators, induction variables, recurrences.
    pub fn in_dep_cycle(&self, i: usize) -> bool {
        let edges = self.dep_edges();
        let mut seen = vec![false; self.n];
        let mut stack = vec![i];
        while let Some(v) = stack.pop() {
            for &(from, to, _, _) in &edges {
                if from == v && !seen[to] {
                    if to == i {
                        return true;
                    }
                    seen[to] = true;
                    stack.push(to);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::{parse_kernel, Isa};

    fn dfa(asm: &str, isa: Isa) -> Dfa {
        Dfa::build(&parse_kernel(asm, isa).unwrap())
    }

    #[test]
    fn accumulator_use_wraps() {
        let d = dfa(
            ".L1:\n vfmadd231pd %zmm1, %zmm2, %zmm3\n subq $1, %rax\n jne .L1\n",
            Isa::X86,
        );
        // zmm3 is read by the FMA and fed by its own previous-iteration def.
        let u = d
            .uses
            .iter()
            .find(|u| u.inst == 0 && u.reg.id() == (RegClass::Vec, 3))
            .unwrap();
        assert_eq!(
            u.def,
            Some(ReachingDef {
                inst: 0,
                wrap: true
            })
        );
        assert!(d.in_dep_cycle(0));
        // rax: sub reads its own wrap def; zmm1/zmm2 are external inputs.
        assert!(d.inputs.contains(&(RegClass::Vec, 1)));
        assert!(d.inputs.contains(&(RegClass::Vec, 2)));
        assert!(!d.inputs.contains(&(RegClass::Gpr, 0)));
    }

    #[test]
    fn intra_def_resolves_to_nearest_writer() {
        let d = dfa(
            ".L1:\n vmulpd %zmm0, %zmm1, %zmm2\n vaddpd %zmm2, %zmm3, %zmm4\n subq $1, %rax\n jne .L1\n",
            Isa::X86,
        );
        let u = d
            .uses
            .iter()
            .find(|u| u.inst == 1 && u.reg.id() == (RegClass::Vec, 2))
            .unwrap();
        assert_eq!(
            u.def,
            Some(ReachingDef {
                inst: 0,
                wrap: false
            })
        );
        assert!(!d.in_dep_cycle(1)); // the add feeds nothing that feeds it back
    }

    #[test]
    fn liveness_includes_loop_carried_values() {
        let d = dfa(
            ".L1:\n addq $8, %rax\n cmpq %rcx, %rax\n jne .L1\n",
            Isa::X86,
        );
        // rax is live-in at the add (its previous value is consumed).
        assert!(d.live_in[0].contains(&(RegClass::Gpr, 0)));
        // flags are live-in at the branch but not at the add.
        assert!(d.live_in[2].contains(&(RegClass::Flags, 0)));
        assert!(!d.live_in[0].contains(&(RegClass::Flags, 0)));
    }

    #[test]
    fn empty_and_straightline_kernels() {
        let d = dfa("", Isa::X86);
        assert_eq!(d.n, 0);
        let d = dfa("movq %rax, %rbx\n", Isa::X86);
        assert_eq!(d.n, 1);
        assert!(d.inputs.contains(&(RegClass::Gpr, 0)));
    }
}
