//! Semantic checking: a dataflow framework over `isa` kernels, spent three
//! ways.
//!
//! 1. **Semantic kernel rules** (`K007`–`K010`, [`rules`]) — loop-aware
//!    def-use analysis of a kernel body under the implicit-infinite-loop
//!    execution model: undefined flag reads, loop-carried dead values,
//!    unconsumed comparisons, and a hard cross-check that the framework's
//!    dependency edges agree exactly with [`incore::depgraph`] — so the
//!    linter and the performance model can never silently disagree about a
//!    kernel's critical path.
//! 2. **Machine-model admission gate** (`M008`–`M010`, [`admission`]) —
//!    before a machine file is admitted into experiments, drive it over
//!    every kernel variant of its architecture's corpus and reject models
//!    that cannot place the corpus's opcode classes on issue ports, whose
//!    latency/throughput pairs are mutually impossible, or whose issue
//!    capacity cannot back the declared dispatch width. Run via
//!    `incore-cli lint --admission`.
//! 3. **Simulator sanitizer reporting** (`S001`–`S004`, [`sanitizer`]) —
//!    the debug-gated invariant checks inside [`exec::event`] (clock
//!    monotonicity, port-capacity conservation, no early wake-up, teleport
//!    state equivalence) surfaced as diagnostics.
//!
//! The underlying framework ([`dfa`]) computes reaching definitions and
//! liveness over the cyclic single-block CFG, with the same
//! nearest-writer / last-writer-anywhere resolution rule the dependency
//! graph uses.
//!
//! ```
//! use semck::lint_kernel_sem;
//! let machine = uarch::Machine::golden_cove();
//! let asm = ".L1:\n  cmpq %rdx, %rbx\n  cmpq %rcx, %rax\n  jne .L1\n";
//! let kernel = isa::parse_kernel(asm, isa::Isa::X86).unwrap();
//! let diags = lint_kernel_sem(&machine, &kernel);
//! assert!(diags.iter().any(|d| d.code == "K009")); // shadowed comparison
//! ```

pub mod admission;
pub mod dfa;
pub mod rules;
pub mod sanitizer;

pub use admission::lint_admission;
pub use dfa::{DefSite, Dfa, ReachingDef, RegId, UseSite};
pub use rules::lint_kernel_sem;
pub use sanitizer::{sanitize_simulation, violations_to_diags};
