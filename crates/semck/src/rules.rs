//! Semantic kernel rules `K007`–`K010`, built on the dataflow framework.
//!
//! These go beyond the syntactic `K001`–`K006` lints in `diag::kernel`:
//! they reason about *values* — which definitions feed which uses across
//! the loop back edge — and cross-check the framework's own dependency
//! edges against [`incore::depgraph::DepGraph`], so a divergence between
//! what the linter believes and what the model simulates can never pass
//! silently.

use crate::dfa::Dfa;
use diag::{Diagnostic, Severity};
use incore::depgraph::DepGraph;
use isa::reg::RegClass;
use isa::{Instruction, Kernel};
use uarch::Machine;

/// Run every semantic kernel rule over a parsed kernel.
pub fn lint_kernel_sem(machine: &Machine, kernel: &Kernel) -> Vec<Diagnostic> {
    let dfa = Dfa::build(kernel);
    let mut diags = Vec::new();
    undefined_flag_read(kernel, &dfa, &mut diags);
    loop_carried_dead_value(kernel, &dfa, &mut diags);
    unconsumed_flag_def(kernel, &dfa, &mut diags);
    depgraph_crosscheck(machine, kernel, &dfa, &mut diags);
    diags
}

fn span(inst: &Instruction) -> (usize, String) {
    (inst.line, inst.raw.clone())
}

/// `K007` — a non-branch instruction consumes condition flags (or an
/// AVX-512 mask) that no instruction on any path — including around the
/// back edge — ever defines. Unlike a GPR/vector "loop input" (K001 Info),
/// flags are not meaningful live-in values: a `cmov`/`adc`/`csel` reading
/// flags nothing sets is acting on whatever the code *before* the loop
/// left there, which is almost certainly a bug in the block selection.
fn undefined_flag_read(kernel: &Kernel, dfa: &Dfa, diags: &mut Vec<Diagnostic>) {
    for u in &dfa.uses {
        if u.def.is_some() || u.reg.class != RegClass::Flags {
            continue;
        }
        let inst = &kernel.instructions[u.inst];
        if inst.is_branch() {
            continue; // K001 already warns on flag-consuming branches
        }
        let (line, snippet) = span(inst);
        diags.push(
            Diagnostic::new(
                "K007",
                format!(
                    "`{}` consumes condition flags that no instruction in the block \
                     sets, on any path including the loop back edge",
                    inst.mnemonic
                ),
            )
            .with_span(line, snippet)
            .with_help(
                "the flags come from outside the analyzed block; widen the marked \
                 region or move the flag-setting instruction into the loop",
            ),
        );
    }
}

/// Whether an instruction's only architectural effect is setting flags —
/// the comparison family. Arithmetic that sets flags incidentally
/// (`add`, `sub`, `subs`, …) is excluded: overwriting its flag result is
/// normal codegen, not a smell.
fn is_flag_only_writer(inst: &Instruction) -> bool {
    match inst.isa {
        isa::Isa::X86 => matches!(inst.norm_mnemonic(), "cmp" | "test" | "bt"),
        isa::Isa::AArch64 => matches!(
            inst.base_mnemonic(),
            "cmp" | "cmn" | "tst" | "fcmp" | "fcmpe" | "ccmp" | "ccmn"
        ),
    }
}

/// `K009` — a comparison's flag result is never consumed before being
/// overwritten (cyclically, across the back edge). The compare is dead
/// work occupying an ALU slot every iteration.
fn unconsumed_flag_def(kernel: &Kernel, dfa: &Dfa, diags: &mut Vec<Diagnostic>) {
    for (i, inst) in kernel.instructions.iter().enumerate() {
        if !is_flag_only_writer(inst) {
            continue;
        }
        let Some(flag_def) = dfa.flows[i]
            .writes
            .iter()
            .find(|w| w.class == RegClass::Flags)
        else {
            continue;
        };
        if dfa.uses_of_def(i, flag_def).next().is_none() {
            let (line, snippet) = span(inst);
            diags.push(
                Diagnostic::new(
                    "K009",
                    format!(
                        "the flags set by `{}` are never consumed: every reader sees a \
                         later comparison's result instead",
                        inst.mnemonic
                    ),
                )
                .with_span(line, snippet)
                .with_help("remove the dead comparison or reorder it next to its branch"),
            );
        }
    }
}

/// `K008` — a value computed every iteration that never escapes: it feeds
/// no store, no branch, and no loop-carried dependency cycle, even
/// transitively. In a steady-state loop such a computation is
/// unobservable — dead weight on the ports. Pure loads get `Info` (dead
/// loads are the *point* of load-only microbenchmarks); anything else is
/// a `Warning`. Only runs on detected loops: in a straight-line block
/// values legitimately escape to the code after it.
fn loop_carried_dead_value(kernel: &Kernel, dfa: &Dfa, diags: &mut Vec<Diagnostic>) {
    if kernel.loop_label.is_none() || dfa.n == 0 {
        return;
    }
    let n = dfa.n;
    let insts = &kernel.instructions;
    // useful(i): i's effects are architecturally observable — it writes
    // memory or resolves the loop branch — or some value it defines feeds
    // a useful instruction, or it sits on a loop-carried dependency cycle
    // (reductions and induction variables are live-out by construction).
    let mut useful = vec![false; n];
    for i in 0..n {
        if insts[i].is_store() || insts[i].is_branch() || dfa.in_dep_cycle(i) {
            useful[i] = true;
        }
    }
    let edges = dfa.dep_edges();
    let mut changed = true;
    while changed {
        changed = false;
        for &(from, to, _, _) in &edges {
            if useful[to] && !useful[from] {
                useful[from] = true;
                changed = true;
            }
        }
    }
    for i in 0..n {
        if useful[i] || insts[i].is_nop() || dfa.flows[i].writes.is_empty() {
            continue;
        }
        let severity = if insts[i].is_load() {
            Severity::Info
        } else {
            Severity::Warning
        };
        let (line, snippet) = span(&insts[i]);
        diags.push(
            Diagnostic::new(
                "K008",
                format!(
                    "the value computed by `{}` never reaches a store, branch, or \
                     loop-carried dependency — dead in steady state",
                    insts[i].mnemonic
                ),
            )
            .with_severity(severity)
            .with_span(line, snippet)
            .with_help(
                "harmless in a load/latency microbenchmark; otherwise the loop does \
                 work the program never observes",
            ),
        );
    }
}

/// `K010` — the framework's dependency edges must agree with
/// [`DepGraph::build`] exactly: same `(from, to, via)` triples, same
/// wrap/intra classification. Both derive from [`isa::dataflow::dataflow`]
/// with the same resolution rule, so any difference means one of the two
/// analyses regressed — the linter and the model would silently disagree
/// about the kernel's critical path. Reported as an `Error` naming each
/// edge present on one side only.
fn depgraph_crosscheck(machine: &Machine, kernel: &Kernel, dfa: &Dfa, diags: &mut Vec<Diagnostic>) {
    let descs = machine.describe_kernel(kernel);
    let graph = DepGraph::build(machine, kernel, &descs);
    let mut ours: Vec<(usize, usize, (RegClass, u8), bool)> = dfa.dep_edges();
    let mut theirs: Vec<(usize, usize, (RegClass, u8), bool)> = graph
        .edges
        .iter()
        .map(|e| (e.from, e.to, e.via, e.wrap))
        .collect();
    ours.sort_unstable();
    theirs.sort_unstable();
    if ours == theirs {
        return;
    }
    let fmt = |(from, to, via, wrap): &(usize, usize, (RegClass, u8), bool)| {
        format!(
            "{from}→{to} via {:?}{} ({})",
            via.0,
            via.1,
            if *wrap { ", wrap" } else { "" }
        )
    };
    for e in ours.iter().filter(|e| !theirs.contains(e)) {
        diags.push(
            Diagnostic::new(
                "K010",
                format!(
                    "dependency {} is visible to the dataflow framework but not to \
                     incore::depgraph — the model would miss this edge on its \
                     critical path",
                    fmt(e)
                ),
            )
            .with_span(
                kernel.instructions[e.1].line,
                kernel.instructions[e.1].raw.clone(),
            ),
        );
    }
    for e in theirs.iter().filter(|e| !ours.contains(e)) {
        diags.push(
            Diagnostic::new(
                "K010",
                format!(
                    "incore::depgraph materializes dependency {} that the dataflow \
                     framework cannot derive — the model invents an edge",
                    fmt(e)
                ),
            )
            .with_span(
                kernel.instructions[e.1].line,
                kernel.instructions[e.1].raw.clone(),
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::{parse_kernel, Isa};

    fn lint(asm: &str, isa: Isa) -> Vec<Diagnostic> {
        let machine = match isa {
            Isa::X86 => Machine::golden_cove(),
            Isa::AArch64 => Machine::neoverse_v2(),
        };
        lint_kernel_sem(&machine, &parse_kernel(asm, isa).unwrap())
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_stream_kernel_has_no_findings() {
        let d = lint(
            ".L1:\n vmovupd (%rsi,%rax), %zmm0\n vaddpd %zmm0, %zmm1, %zmm2\n \
             vmovupd %zmm2, (%rdi,%rax)\n addq $64, %rax\n cmpq %rcx, %rax\n jne .L1\n",
            Isa::X86,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn k007_cmov_without_flag_setter() {
        // NB: the filler must not set flags (`add` would define them and
        // feed the cmov around the back edge).
        let d = lint(
            ".L1:\n cmovgq %rbx, %rdx\n movq %rcx, %rax\n jmp .L1\n",
            Isa::X86,
        );
        assert!(codes(&d).contains(&"K007"), "{d:?}");
        // The jmp itself must not trigger K007 (unconditional, no flag read).
        assert_eq!(d.iter().filter(|x| x.code == "K007").count(), 1, "{d:?}");
    }

    #[test]
    fn k007_silent_when_flags_are_set() {
        let d = lint(
            ".L1:\n cmpq %rcx, %rax\n cmovgq %rbx, %rdx\n addq $8, %rax\n jmp .L1\n",
            Isa::X86,
        );
        assert!(!codes(&d).contains(&"K007"), "{d:?}");
    }

    #[test]
    fn k008_dead_compute_chain() {
        // zmm5 = zmm0 * zmm1 feeds only zmm6 = zmm5 + zmm2, which feeds
        // nothing observable: both are dead in steady state.
        let d = lint(
            ".L1:\n vmulpd %zmm0, %zmm1, %zmm5\n vaddpd %zmm5, %zmm2, %zmm6\n \
             subq $1, %rax\n jne .L1\n",
            Isa::X86,
        );
        let k008: Vec<_> = d.iter().filter(|x| x.code == "K008").collect();
        assert_eq!(k008.len(), 2, "{d:?}");
        assert!(k008.iter().all(|x| x.severity == Severity::Warning));
    }

    #[test]
    fn k008_accumulators_and_stores_are_live() {
        // The FMA accumulator is a loop-carried cycle; the store escapes.
        let d = lint(
            ".L1:\n vfmadd231pd %zmm1, %zmm2, %zmm3\n vmovupd %zmm3, (%rdi)\n \
             subq $1, %rax\n jne .L1\n",
            Isa::X86,
        );
        assert!(!codes(&d).contains(&"K008"), "{d:?}");
    }

    #[test]
    fn k008_pure_dead_load_is_info() {
        let d = lint(
            ".L1:\n vmovupd (%rsi,%rax), %zmm0\n addq $64, %rax\n cmpq %rcx, %rax\n jne .L1\n",
            Isa::X86,
        );
        let k008 = d.iter().find(|x| x.code == "K008").expect("dead load");
        assert_eq!(k008.severity, Severity::Info);
    }

    #[test]
    fn k008_skips_straight_line_blocks() {
        let d = lint("vmulpd %zmm0, %zmm1, %zmm5\n", Isa::X86);
        assert!(!codes(&d).contains(&"K008"), "{d:?}");
    }

    #[test]
    fn k009_shadowed_comparison() {
        // The first cmp's flags are overwritten by the second before the
        // branch reads them.
        let d = lint(
            ".L1:\n addq $8, %rax\n cmpq %rdx, %rbx\n cmpq %rcx, %rax\n jne .L1\n",
            Isa::X86,
        );
        let k009: Vec<_> = d.iter().filter(|x| x.code == "K009").collect();
        assert_eq!(k009.len(), 1, "{d:?}");
        assert_eq!(k009[0].span.as_ref().unwrap().line, 3, "{d:?}");
    }

    #[test]
    fn k009_consumed_compare_is_silent_aarch64() {
        let d = lint(
            ".L1:\n add x3, x3, #16\n cmp x3, x4\n b.ne .L1\n",
            Isa::AArch64,
        );
        assert!(!codes(&d).contains(&"K009"), "{d:?}");
    }

    #[test]
    fn k010_fires_on_a_tampered_framework() {
        // Through the public API the framework and the depgraph derive
        // edges from the same dataflow facts, so a disagreement cannot be
        // staged from outside; tamper with the framework's resolved uses
        // directly to prove the cross-check reports both directions.
        let machine = Machine::golden_cove();
        let kernel = parse_kernel(
            ".L1:\n vfmadd231pd %zmm1, %zmm2, %zmm3\n subq $1, %rax\n jne .L1\n",
            Isa::X86,
        )
        .unwrap();
        let mut dfa = Dfa::build(&kernel);
        // Drop one resolved use: the framework now misses an edge the
        // model materializes.
        let victim = dfa
            .uses
            .iter()
            .position(|u| u.def.is_some())
            .expect("kernel has resolved uses");
        dfa.uses.remove(victim);
        let mut diags = Vec::new();
        depgraph_crosscheck(&machine, &kernel, &dfa, &mut diags);
        assert!(diags.iter().any(|d| d.code == "K010"), "{diags:?}");
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("incore::depgraph materializes")),
            "{diags:?}"
        );
    }

    #[test]
    fn k010_is_silent_on_agreeing_analyses() {
        // The cross-check must hold on representative kernels of both ISAs.
        for (asm, isa) in [
            (
                ".L1:\n vfmadd231pd %zmm1, %zmm2, %zmm3\n subq $1, %rax\n jne .L1\n",
                Isa::X86,
            ),
            (
                ".L1:\n ldr q0, [x1, x3]\n fadd v0.2d, v0.2d, v1.2d\n \
                 str q0, [x0, x3]\n add x3, x3, #16\n cmp x3, x4\n b.ne .L1\n",
                Isa::AArch64,
            ),
        ] {
            let d = lint(asm, isa);
            assert!(!codes(&d).contains(&"K010"), "{asm}: {d:?}");
        }
    }
}
