//! Report simulator sanitizer violations as `S`-rule diagnostics.
//!
//! The invariant checks themselves live inside the simulator
//! ([`exec::sanitizer`]): they must see engine internals, and `diag`
//! depends on `exec`, so the dependency can only point this way. This
//! module is the reporting bridge — it runs a simulation with the
//! sanitizer in record mode and converts each captured
//! [`exec::sanitizer::Violation`] into a [`Diagnostic`] carrying the
//! matching stable rule code (`S001`–`S004`).
//!
//! The checks are compiled only under `debug_assertions`; in a release
//! build [`sanitize_simulation`] still runs the simulation but can never
//! produce findings. CI therefore runs the sanitizer suites on the debug
//! profile (see the workflow's sanitizer step).

use diag::Diagnostic;
use exec::sanitizer::{capture, Violation};
use exec::{SimConfig, SimResult};
use isa::Kernel;
use uarch::Machine;

/// Convert captured sanitizer violations into diagnostics.
pub fn violations_to_diags(violations: &[Violation]) -> Vec<Diagnostic> {
    violations
        .iter()
        .map(|v| {
            Diagnostic::new(v.code(), v.describe()).with_help(
                "a simulator invariant was violated during this run; the result \
                 cannot be trusted — file the kernel and machine as a simulator bug",
            )
        })
        .collect()
}

/// Simulate `kernel` on `machine` with the sanitizer recording, and return
/// the result together with any invariant violations as S-rule
/// diagnostics. An empty list on a debug build is a clean bill of health;
/// on a release build the checks do not exist and the list is always
/// empty.
pub fn sanitize_simulation(
    machine: &Machine,
    kernel: &Kernel,
    cfg: SimConfig,
) -> (SimResult, Vec<Diagnostic>) {
    let (result, violations) = capture(|| exec::simulate(machine, kernel, cfg));
    (result, violations_to_diags(&violations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag::Severity;
    use isa::{parse_kernel, Isa};

    #[test]
    fn violations_map_to_their_stable_codes() {
        let vs = [
            Violation::ClockNotMonotone {
                before: 7,
                after: 7,
            },
            Violation::PortOvercommit {
                port: 1,
                cycle: 3,
                taken: true,
                busy_until: 0,
            },
            Violation::EarlyWakeup {
                iter: 2,
                idx: 0,
                cycle: 5,
                ready_at: 9,
            },
            Violation::TeleportSkew { word: 4 },
        ];
        let diags = violations_to_diags(&vs);
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert_eq!(codes, ["S001", "S002", "S003", "S004"]);
        // Sanitizer findings are registered and default to Error.
        for d in &diags {
            assert!(diag::rule(d.code).is_some(), "{} unregistered", d.code);
            assert_eq!(d.severity, Severity::Error);
        }
    }

    #[test]
    fn clean_simulation_yields_no_s_diagnostics() {
        let k = parse_kernel(
            ".L1:\n vfmadd231pd %zmm1, %zmm2, %zmm3\n subq $1, %rax\n jne .L1\n",
            Isa::X86,
        )
        .unwrap();
        let (r, diags) = sanitize_simulation(&Machine::golden_cove(), &k, SimConfig::default());
        assert!(diags.is_empty(), "{diags:?}");
        assert!(r.cycles_per_iter > 0.0);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn seeded_fault_surfaces_as_s_diagnostic() {
        use exec::sanitizer::{inject, Fault};
        let k = parse_kernel(
            ".L1:\n vaddpd %zmm1, %zmm2, %zmm3\n subq $1, %rax\n jne .L1\n",
            Isa::X86,
        )
        .unwrap();
        let m = Machine::golden_cove();
        let (_, violations) = capture(|| {
            inject(Fault::EarlyWakeup);
            exec::simulate(&m, &k, SimConfig::default())
        });
        let diags = violations_to_diags(&violations);
        assert!(diags.iter().any(|d| d.code == "S003"), "{diags:?}");
    }
}
