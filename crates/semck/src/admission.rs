//! Machine-model admission gate: rules `M008`–`M010`.
//!
//! `diag::lint_machine` (M001–M007) checks a model's *internal* structure.
//! The admission gate asks a stronger question before a machine file is
//! allowed into experiments: **can this model actually execute the study's
//! workload?** It drives the model over every kernel variant of the 416-block
//! corpus for its architecture and rejects models whose instruction database
//! cannot place the corpus's opcode classes on issue ports, whose
//! latency/throughput pairs are mutually impossible, or whose issue capacity
//! cannot back the declared dispatch width.

use diag::{Diagnostic, Severity};
use std::collections::BTreeSet;
use uarch::instr::InstrClass;
use uarch::Machine;

/// Run the admission gate over one machine model. Returns M008–M010
/// findings; an `Error` among them means the model must be rejected.
pub fn lint_admission(machine: &Machine) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    corpus_coverage(machine, &mut diags);
    entry_consistency(machine, &mut diags);
    issue_capacity(machine, &mut diags);
    diags
}

/// `M008` — every instruction form the corpus uses must resolve to a
/// database entry whose µ-ops all map to at least one issue port.
///
/// * A **compute** form that falls back to the heuristic default is an
///   `Error`: the model would silently guess latency and port bindings for
///   instructions the paper's experiments measure.
/// * A **load/store/branch** fallback is a `Warning`: the memory/branch
///   recipe still synthesizes correct port bindings, but latency is a guess.
/// * Any µ-op with an **empty port set** is an `Error` regardless of origin:
///   the simulator could never issue it.
///
/// Findings are deduplicated by instruction form (normalized mnemonic +
/// vector width + memory shape); the first corpus variant exhibiting the
/// form is named in the message.
fn corpus_coverage(machine: &Machine, diags: &mut Vec<Diagnostic>) {
    let mut seen: BTreeSet<(String, u16, bool)> = BTreeSet::new();
    for variant in kernels::variants_for(machine.arch) {
        let kernel = kernels::generate_kernel(&variant, machine);
        for inst in &kernel.instructions {
            let key = (
                inst.norm_mnemonic().to_string(),
                inst.max_vec_width(),
                inst.mem_position().is_some(),
            );
            if seen.contains(&key) {
                continue;
            }
            seen.insert(key);
            let desc = machine.describe(inst);
            let form = format!(
                "{}{}{}",
                inst.norm_mnemonic(),
                if inst.max_vec_width() > 0 {
                    format!(" @{}", inst.max_vec_width())
                } else {
                    String::new()
                },
                if inst.mem_position().is_some() {
                    " (mem)"
                } else {
                    ""
                },
            );
            if desc.uops.iter().any(|u| u.ports.is_empty()) {
                diags.push(
                    Diagnostic::new(
                        "M008",
                        format!(
                            "corpus instruction form `{form}` decodes to a µ-op with an \
                             empty port set — it can never issue (first used by \
                             `{}`)",
                            variant.label()
                        ),
                    )
                    .with_span(0, format!("table: {form}")),
                );
            } else if desc.from_fallback {
                let compute = !matches!(
                    desc.class,
                    InstrClass::Load | InstrClass::Store | InstrClass::Branch
                );
                let severity = if compute {
                    Severity::Error
                } else {
                    Severity::Warning
                };
                diags.push(
                    Diagnostic::new(
                        "M008",
                        format!(
                            "corpus instruction form `{form}` is not in the instruction \
                             database; the model would fall back to heuristic \
                             {:?} timing (first used by `{}`)",
                            desc.class,
                            variant.label()
                        ),
                    )
                    .with_severity(severity)
                    .with_span(0, format!("table: {form}"))
                    .with_help(
                        "add a database entry for this form before admitting the \
                         model to experiments",
                    ),
                );
            }
        }
    }
}

/// `M009` — latency and reciprocal throughput of a database entry must be
/// mutually possible. For a fully pipelined compute entry (all µ-ops with
/// occupancy 1), a dependent chain retires one result every `latency`
/// cycles, so a documented steady-state rate *slower* than that
/// (`rthroughput > latency`) is self-contradictory. Non-pipelined entries
/// (occupancy > 1, e.g. dividers) legitimately block their port longer than
/// their latency and are exempt.
fn entry_consistency(machine: &Machine, diags: &mut Vec<Diagnostic>) {
    for (i, e) in machine.table.iter().enumerate() {
        let compute = !matches!(
            e.class,
            InstrClass::Load | InstrClass::Store | InstrClass::Branch | InstrClass::Move
        );
        let pipelined = e.uops.iter().all(|u| u.occupancy <= 1.0);
        if compute && pipelined && e.latency >= 1 && e.rthroughput > e.latency as f64 {
            diags.push(
                Diagnostic::new(
                    "M009",
                    format!(
                        "entry #{i} ({:?}): reciprocal throughput {} exceeds latency {} \
                         on a fully pipelined unit — a single dependency chain would \
                         outrun the documented steady-state rate",
                        e.mnemonics, e.rthroughput, e.latency
                    ),
                )
                .with_span(0, format!("table[{i}]: {}", e.mnemonics.join("/"))),
            );
        }
    }
}

/// `M010` — declared dispatch width must be backed by issue capacity.
/// Dispatching more µ-ops per cycle than the machine has ports means the
/// scheduler fills and the front end stalls by construction; a scheduler
/// smaller than one dispatch group cannot even buffer a single cycle of
/// dispatch. (Zero widths and scheduler-vs-ROB inversions are `M003`'s.)
fn issue_capacity(machine: &Machine, diags: &mut Vec<Diagnostic>) {
    let num_ports = machine.port_model.num_ports() as u32;
    if machine.dispatch_width > num_ports {
        diags.push(
            Diagnostic::new(
                "M010",
                format!(
                    "dispatch width {} exceeds the machine's {} issue ports — \
                     sustained dispatch can never be issued",
                    machine.dispatch_width, num_ports
                ),
            )
            .with_span(0, "dispatch_width".to_string()),
        );
    }
    if machine.sched_size > 0 && machine.sched_size < machine.dispatch_width {
        diags.push(
            Diagnostic::new(
                "M010",
                format!(
                    "scheduler of {} entries cannot hold one dispatch group of {}",
                    machine.sched_size, machine.dispatch_width
                ),
            )
            .with_span(0, "sched_size".to_string()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_machines_pass_the_admission_gate() {
        for m in uarch::all_machines() {
            let diags = lint_admission(&m);
            let errors: Vec<_> = diags
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .collect();
            assert!(
                errors.is_empty(),
                "{} rejected by admission gate: {errors:?}",
                m.arch.label()
            );
        }
    }

    #[test]
    fn missing_fma_entries_are_rejected() {
        let mut m = Machine::golden_cove();
        m.table.retain(|e| {
            !e.mnemonics
                .iter()
                .any(|mn| mn.starts_with("vfmadd") || mn.starts_with("vfnmadd"))
        });
        let diags = lint_admission(&m);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "M008" && d.severity == Severity::Error),
            "{diags:?}"
        );
    }

    #[test]
    fn unissuable_uop_is_rejected() {
        use uarch::instr::{entry, InstrClass, Uop, WidthClass};
        use uarch::ports::PortSet;
        let mut m = Machine::zen4();
        // Shadow every vaddpd entry with one whose µ-op has no ports.
        m.table.insert(
            0,
            entry(
                &["vaddpd"],
                WidthClass::Any,
                vec![Uop::new(PortSet::EMPTY)],
                3,
                0.5,
                InstrClass::VecAlu,
            ),
        );
        let diags = lint_admission(&m);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "M008" && d.message.contains("empty port set")),
            "{diags:?}"
        );
    }

    #[test]
    fn impossible_throughput_latency_pair_is_flagged() {
        use uarch::instr::{entry, InstrClass, Uop, WidthClass};
        use uarch::ports::PortSet;
        let mut m = Machine::neoverse_v2();
        m.table.push(entry(
            &["__semck_test"],
            WidthClass::Any,
            vec![Uop::new(PortSet::single(0))],
            2,
            5.0,
            InstrClass::IntAlu,
        ));
        let diags = lint_admission(&m);
        assert!(diags.iter().any(|d| d.code == "M009"), "{diags:?}");
    }

    #[test]
    fn overcommitted_dispatch_is_flagged() {
        let mut m = Machine::golden_cove();
        m.dispatch_width = 40;
        let diags = lint_admission(&m);
        assert!(diags.iter().any(|d| d.code == "M010"), "{diags:?}");
    }
}
