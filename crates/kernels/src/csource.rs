//! C reference source for each kernel — the semantic ground truth the
//! assembly generators implement, as the paper presents its benchmarks.

use crate::StreamKernel;

/// The C inner loop of a kernel (double precision throughout).
pub fn c_source(kernel: StreamKernel) -> &'static str {
    use StreamKernel::*;
    match kernel {
        Init => "for (long i = 0; i < N; i++)\n    a[i] = s;",
        Copy => "for (long i = 0; i < N; i++)\n    a[i] = b[i];",
        Update => "for (long i = 0; i < N; i++)\n    a[i] = a[i] * s;",
        Add => "for (long i = 0; i < N; i++)\n    a[i] = b[i] + c[i];",
        StreamTriad => "for (long i = 0; i < N; i++)\n    a[i] = b[i] + s * c[i];",
        SchoenauerTriad => "for (long i = 0; i < N; i++)\n    a[i] = b[i] + c[i] * d[i];",
        Sum => "for (long i = 0; i < N; i++)\n    sum += a[i];",
        Pi => {
            "for (long i = 0; i < N; i++) {\n    double x = (i + 0.5) * dx;\n    sum += 4.0 / (1.0 + x * x);\n}"
        }
        GaussSeidel2D => {
            "for (long k = 1; k < NK-1; k++)\n  for (long j = 1; j < NJ-1; j++)\n    phi[k][j] = 0.25 * (phi[k-1][j] + phi[k+1][j]\n                      + phi[k][j-1] + phi[k][j+1]);"
        }
        Jacobi2D5 => {
            "for (long k = 1; k < NK-1; k++)\n  for (long j = 1; j < NJ-1; j++)\n    b[k][j] = 0.25 * (a[k-1][j] + a[k+1][j]\n                    + a[k][j-1] + a[k][j+1]);"
        }
        Jacobi3D7 => {
            "for (long k = 1; k < NK-1; k++)\n for (long j = 1; j < NJ-1; j++)\n  for (long i = 1; i < NI-1; i++)\n    b[k][j][i] = c0 * (a[k][j][i]\n      + a[k][j][i-1] + a[k][j][i+1]\n      + a[k][j-1][i] + a[k][j+1][i]\n      + a[k-1][j][i] + a[k+1][j][i]);"
        }
        Jacobi3D11 => {
            "for (long k = 1; k < NK-1; k++)\n for (long j = 2; j < NJ-2; j++)\n  for (long i = 2; i < NI-2; i++)\n    b[k][j][i] = c0 * (a[k][j][i]\n      + a[k][j][i-2] + a[k][j][i-1] + a[k][j][i+1] + a[k][j][i+2]\n      + a[k][j-1][i] + a[k][j+1][i]\n      + a[k-1][j][i] + a[k+1][j][i]\n      + a[k][j-2][i] + a[k][j+2][i]);"
        }
        Jacobi3D27 => {
            "for (long k = 1; k < NK-1; k++)\n for (long j = 1; j < NJ-1; j++)\n  for (long i = 1; i < NI-1; i++) {\n    double t = 0.0;\n    for (int dk = -1; dk <= 1; dk++)\n     for (int dj = -1; dj <= 1; dj++)\n      for (int di = -1; di <= 1; di++)\n        t += a[k+dk][j+dj][i+di];\n    b[k][j][i] = c0 * t;\n  }"
        }
    }
}

/// A full compilable C translation unit for one kernel, suitable for
/// feeding to a real compiler to compare against the generated assembly.
pub fn c_translation_unit(kernel: StreamKernel) -> String {
    let body = c_source(kernel);
    let vol = crate::volume::volume(kernel);
    format!(
        "/* {} — {} B loaded, {} B stored, {} flops per iteration */\n\
         #define N  (1L << 26)\n\
         #define NI 512\n#define NJ 512\n#define NK 256\n\
         void kernel(double *restrict a, const double *restrict b,\n\
         \x20           const double *restrict c, const double *restrict d,\n\
         \x20           double s, double dx, double c0, double *restrict sum_out)\n\
         {{\n    double sum = 0.0;\n{}\n    *sum_out = sum;\n}}\n",
        kernel.name(),
        vol.load_bytes,
        vol.store_bytes,
        vol.flops,
        indent(body, 4)
    )
}

fn indent(s: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    s.lines()
        .map(|l| format!("{pad}{l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_has_source() {
        for k in StreamKernel::ALL {
            let src = c_source(k);
            assert!(src.contains("for"), "{}", k.name());
        }
    }

    #[test]
    fn loop_structure_matches_kernel_dimension() {
        // 3D stencils have triple loops, 2D double, streams single.
        assert_eq!(c_source(StreamKernel::Jacobi3D7).matches("for").count(), 3);
        assert_eq!(c_source(StreamKernel::Jacobi2D5).matches("for").count(), 2);
        assert_eq!(c_source(StreamKernel::Add).matches("for").count(), 1);
        assert!(c_source(StreamKernel::Jacobi3D27).matches("for").count() >= 3);
    }

    #[test]
    fn source_mentions_the_right_arrays() {
        assert!(c_source(StreamKernel::SchoenauerTriad).contains("d[i]"));
        assert!(!c_source(StreamKernel::StreamTriad).contains("d[i]"));
        assert!(c_source(StreamKernel::GaussSeidel2D).contains("phi[k][j-1]"));
        assert!(c_source(StreamKernel::Pi).contains("4.0 / (1.0 + x * x)"));
    }

    #[test]
    fn translation_units_are_complete() {
        for k in StreamKernel::ALL {
            let tu = c_translation_unit(k);
            assert!(tu.contains("void kernel"), "{}", k.name());
            assert!(tu.contains("restrict"), "{}", k.name());
            // Balanced braces.
            assert_eq!(
                tu.matches('{').count(),
                tu.matches('}').count(),
                "{}",
                k.name()
            );
        }
    }
}
