//! The paper's 13 streaming validation kernels, realized as assembly the
//! way four compiler personalities would emit them at four optimization
//! levels — the validation corpus behind Fig. 3 (416 test blocks).
//!
//! Real compilers differ along a few well-understood axes: whether they
//! vectorize at a given `-O` level and at what width, whether they contract
//! mul+add to FMA, whether they reassociate reductions (fast-math), how
//! aggressively they unroll, and x86 VEX vs. legacy-SSE encoding at `-O1`.
//! The generators model exactly those axes:
//!
//! | personality | vector width (x86) | reductions vectorized | unroll (O3+) |
//! |---|---|---|---|
//! | GCC      | native width at O2+ | only at `-Ofast` | 2 |
//! | Clang    | 256-bit at O2+      | only at `-Ofast` | 4 |
//! | ICX      | 512-bit at O2+      | at O2+ (default fast-math) | 2 |
//! | ArmClang | NEON at O2, SVE at O3+ | only at `-Ofast` | 2 |
//!
//! `-O1` is always scalar (GCC emits legacy SSE, the LLVM-based compilers
//! VEX). Gauss-Seidel is never vectorized (true loop-carried dependence).
//!
//! The corpus: x86 machines get {GCC, Clang, ICX} and Grace gets
//! {GCC, ArmClang} — 13 kernels × 4 levels × (3+3+2) = **416 variants**.

pub mod aarch64;
pub mod csource;
pub mod volume;
pub mod x86;

use uarch::{Arch, Machine};

/// The 13 validation kernels (paper §II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StreamKernel {
    /// `a[i] = s` — store-only array initialization (also the Fig. 4
    /// benchmark).
    Init,
    /// `a[i] = b[i]`.
    Copy,
    /// `a[i] = a[i] * s`.
    Update,
    /// `a[i] = b[i] + c[i]`.
    Add,
    /// STREAM triad `a[i] = b[i] + s * c[i]`.
    StreamTriad,
    /// Schönauer triad `a[i] = b[i] + c[i] * d[i]`.
    SchoenauerTriad,
    /// Sum reduction `s += a[i]`.
    Sum,
    /// π by integration: `sum += 4 / (1 + x²)`, `x += dx`.
    Pi,
    /// Gauss-Seidel 2D 5-point sweep (true loop-carried dependence).
    GaussSeidel2D,
    /// Jacobi 2D 5-point stencil.
    Jacobi2D5,
    /// Jacobi 3D 7-point stencil.
    Jacobi3D7,
    /// Jacobi 3D 11-point stencil (adds next-nearest neighbours in x/y).
    Jacobi3D11,
    /// Jacobi 3D 27-point stencil (full 3×3×3 neighbourhood).
    Jacobi3D27,
}

impl StreamKernel {
    pub const ALL: [StreamKernel; 13] = [
        StreamKernel::Init,
        StreamKernel::Copy,
        StreamKernel::Update,
        StreamKernel::Add,
        StreamKernel::StreamTriad,
        StreamKernel::SchoenauerTriad,
        StreamKernel::Sum,
        StreamKernel::Pi,
        StreamKernel::GaussSeidel2D,
        StreamKernel::Jacobi2D5,
        StreamKernel::Jacobi3D7,
        StreamKernel::Jacobi3D11,
        StreamKernel::Jacobi3D27,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            StreamKernel::Init => "INIT",
            StreamKernel::Copy => "COPY",
            StreamKernel::Update => "UPDATE",
            StreamKernel::Add => "ADD",
            StreamKernel::StreamTriad => "STREAM triad",
            StreamKernel::SchoenauerTriad => "Schoenauer triad",
            StreamKernel::Sum => "Sum reduction",
            StreamKernel::Pi => "pi by integration",
            StreamKernel::GaussSeidel2D => "Gauss-Seidel 2D 5pt",
            StreamKernel::Jacobi2D5 => "Jacobi 2D 5pt",
            StreamKernel::Jacobi3D7 => "Jacobi 3D 7pt",
            StreamKernel::Jacobi3D11 => "Jacobi 3D 11pt",
            StreamKernel::Jacobi3D27 => "Jacobi 3D 27pt",
        }
    }

    /// Whether the kernel is a floating-point reduction (vectorization
    /// requires reassociation).
    pub fn is_reduction(&self) -> bool {
        matches!(self, StreamKernel::Sum | StreamKernel::Pi)
    }

    /// Whether the kernel carries a true inter-iteration dependence that no
    /// compiler may vectorize.
    pub fn is_serial(&self) -> bool {
        matches!(self, StreamKernel::GaussSeidel2D)
    }
}

/// Compiler personalities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Compiler {
    Gcc,
    Clang,
    Icx,
    ArmClang,
}

impl Compiler {
    pub fn name(&self) -> &'static str {
        match self {
            Compiler::Gcc => "gcc",
            Compiler::Clang => "clang",
            Compiler::Icx => "icx",
            Compiler::ArmClang => "armclang",
        }
    }

    /// Compilers used on a given machine (paper §I.C: GCC/oneAPI/Clang on
    /// x86, GCC/Arm C Compiler on Grace).
    pub fn for_arch(arch: Arch) -> &'static [Compiler] {
        match arch {
            Arch::GoldenCove | Arch::Zen4 => &[Compiler::Gcc, Compiler::Clang, Compiler::Icx],
            Arch::NeoverseV2 => &[Compiler::Gcc, Compiler::ArmClang],
        }
    }
}

/// Optimization levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OptLevel {
    O1,
    O2,
    O3,
    Ofast,
}

impl OptLevel {
    pub const ALL: [OptLevel; 4] = [OptLevel::O1, OptLevel::O2, OptLevel::O3, OptLevel::Ofast];

    pub fn name(&self) -> &'static str {
        match self {
            OptLevel::O1 => "-O1",
            OptLevel::O2 => "-O2",
            OptLevel::O3 => "-O3",
            OptLevel::Ofast => "-Ofast",
        }
    }

    /// Fast-math semantics (reassociation allowed).
    pub fn fast_math(&self) -> bool {
        *self == OptLevel::Ofast
    }
}

/// One test block of the validation corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Variant {
    pub kernel: StreamKernel,
    pub compiler: Compiler,
    pub opt: OptLevel,
    pub arch: Arch,
}

impl Variant {
    pub fn label(&self) -> String {
        format!(
            "{} / {} {} / {}",
            self.kernel.name(),
            self.compiler.name(),
            self.opt.name(),
            self.arch.chip()
        )
    }
}

/// All variants for one machine.
pub fn variants_for(arch: Arch) -> Vec<Variant> {
    let mut v = Vec::new();
    for &kernel in &StreamKernel::ALL {
        for &compiler in Compiler::for_arch(arch) {
            for &opt in &OptLevel::ALL {
                v.push(Variant {
                    kernel,
                    compiler,
                    opt,
                    arch,
                });
            }
        }
    }
    v
}

/// The full 416-block corpus across all three machines.
pub fn all_variants() -> Vec<Variant> {
    let mut v = Vec::new();
    for arch in [Arch::NeoverseV2, Arch::GoldenCove, Arch::Zen4] {
        v.extend(variants_for(arch));
    }
    v
}

/// Concrete code-generation parameters derived from a variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenCfg {
    /// Vector width in bits; 0 = scalar.
    pub width: u16,
    /// Loop unroll factor (in vector/scalar iterations).
    pub unroll: usize,
    /// Number of parallel accumulators for reductions.
    pub accumulators: usize,
    /// Contract mul+add into FMA.
    pub fma: bool,
    /// x86: legacy-SSE (non-VEX) encodings (GCC at -O1).
    pub legacy_sse: bool,
    /// AArch64: emit SVE (predicated whilelo loop) instead of NEON.
    pub sve: bool,
    /// Use non-temporal stores (not part of the 416-corpus; used by the
    /// Fig. 4 benchmark variants).
    pub nt_stores: bool,
    /// AArch64: walk the streams with post-index addressing (`[x1], #16`)
    /// instead of a shared index register — armclang's preferred pattern
    /// for linear streams.
    pub post_index: bool,
}

/// Derive the generation parameters for a variant on a machine.
pub fn gen_cfg(v: &Variant, machine: &Machine) -> GenCfg {
    use Compiler::*;
    use OptLevel::*;
    let scalar = v.opt == O1 || v.kernel.is_serial();
    // Reductions vectorize only under fast-math — except ICX, whose default
    // FP model behaves like fast-math (true of the real oneAPI compiler).
    let reduction_blocked = v.kernel.is_reduction() && !v.opt.fast_math() && v.compiler != Icx;

    let width = if scalar || reduction_blocked {
        0
    } else {
        match (v.compiler, machine.isa) {
            (Gcc, isa::Isa::X86) => {
                if v.opt == O2 {
                    128 // cheap cost model at -O2
                } else {
                    machine.simd_width_bits
                }
            }
            (Clang, isa::Isa::X86) => 256.min(machine.max_isa_vec_bits), // prefer-vector-width=256
            // ICX targets the widest extension the machine decodes —
            // AVX-512 on the Intel cores and Zen 4 (double-pumped), AVX2
            // on pre-AVX-512 derivations like Zen 2.
            (Icx, isa::Isa::X86) => 512.min(machine.max_isa_vec_bits),
            (Gcc, isa::Isa::AArch64) => 128,
            (ArmClang, isa::Isa::AArch64) => 128,
            _ => 128,
        }
    };
    let sve = v.compiler == ArmClang && v.opt >= O3 && width > 0;
    let unroll = if width == 0 {
        1
    } else {
        match (v.compiler, v.opt) {
            (_, O1) | (_, O2) => 1,
            (Gcc, _) => 2,
            (Clang, _) => 4,
            (Icx, _) => 2,
            (ArmClang, _) => 2,
        }
    };
    // Long stencil bodies are not unrolled further by real compilers.
    let unroll = if v.kernel == StreamKernel::Jacobi3D27 {
        1
    } else {
        unroll
    };
    let accumulators = if v.kernel.is_reduction() {
        if v.opt.fast_math() || v.compiler == Icx {
            match v.compiler {
                Gcc => 2,
                Clang => 4,
                Icx => 4,
                ArmClang => 2,
            }
        } else {
            1
        }
    } else {
        1
    };
    GenCfg {
        width,
        unroll,
        accumulators,
        fma: v.opt >= O2,
        legacy_sse: v.compiler == Gcc && v.opt == O1,
        sve,
        nt_stores: false,
        post_index: v.compiler == ArmClang && !sve,
    }
}

/// Generate the assembly text of a variant for a machine.
pub fn generate(v: &Variant, machine: &Machine) -> String {
    assert_eq!(v.arch, machine.arch, "variant and machine must match");
    let cfg = gen_cfg(v, machine);
    match machine.isa {
        isa::Isa::X86 => x86::emit(v.kernel, &cfg),
        isa::Isa::AArch64 => aarch64::emit(v.kernel, &cfg),
    }
}

/// Parse a generated variant into an analysis kernel.
pub fn generate_kernel(v: &Variant, machine: &Machine) -> isa::Kernel {
    let asm = generate(v, machine);
    isa::parse_kernel(&asm, machine.isa).expect("generated assembly must parse")
}

/// The store-only benchmark of Fig. 4 in standard or NT flavour, at the
/// machine's native width.
pub fn init_store_kernel(machine: &Machine, nt: bool) -> isa::Kernel {
    let cfg = GenCfg {
        width: machine.simd_width_bits,
        unroll: 4,
        accumulators: 1,
        fma: true,
        legacy_sse: false,
        sve: machine.arch == Arch::NeoverseV2,
        nt_stores: nt,
        post_index: false,
    };
    let asm = match machine.isa {
        isa::Isa::X86 => x86::emit(StreamKernel::Init, &cfg),
        isa::Isa::AArch64 => aarch64::emit(StreamKernel::Init, &cfg),
    };
    isa::parse_kernel(&asm, machine.isa).expect("store kernel must parse")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_size_matches_paper() {
        assert_eq!(all_variants().len(), 416);
        assert_eq!(variants_for(Arch::GoldenCove).len(), 156);
        assert_eq!(variants_for(Arch::Zen4).len(), 156);
        assert_eq!(variants_for(Arch::NeoverseV2).len(), 104);
    }

    #[test]
    fn o1_is_always_scalar() {
        let m = uarch::Machine::golden_cove();
        for &k in &StreamKernel::ALL {
            let v = Variant {
                kernel: k,
                compiler: Compiler::Icx,
                opt: OptLevel::O1,
                arch: Arch::GoldenCove,
            };
            assert_eq!(gen_cfg(&v, &m).width, 0, "{}", k.name());
        }
    }

    #[test]
    fn gauss_seidel_never_vectorizes() {
        let m = uarch::Machine::golden_cove();
        for &opt in &OptLevel::ALL {
            let v = Variant {
                kernel: StreamKernel::GaussSeidel2D,
                compiler: Compiler::Icx,
                opt,
                arch: Arch::GoldenCove,
            };
            assert_eq!(gen_cfg(&v, &m).width, 0);
        }
    }

    #[test]
    fn reductions_gate_on_fast_math_except_icx() {
        let m = uarch::Machine::golden_cove();
        let mk = |c, o| Variant {
            kernel: StreamKernel::Sum,
            compiler: c,
            opt: o,
            arch: Arch::GoldenCove,
        };
        assert_eq!(gen_cfg(&mk(Compiler::Gcc, OptLevel::O3), &m).width, 0);
        assert!(gen_cfg(&mk(Compiler::Gcc, OptLevel::Ofast), &m).width > 0);
        assert!(gen_cfg(&mk(Compiler::Icx, OptLevel::O2), &m).width > 0);
    }

    #[test]
    fn widths_differ_by_compiler() {
        let m = uarch::Machine::golden_cove();
        let mk = |c| Variant {
            kernel: StreamKernel::Add,
            compiler: c,
            opt: OptLevel::O3,
            arch: Arch::GoldenCove,
        };
        assert_eq!(gen_cfg(&mk(Compiler::Gcc), &m).width, 512);
        assert_eq!(gen_cfg(&mk(Compiler::Clang), &m).width, 256);
        assert_eq!(gen_cfg(&mk(Compiler::Icx), &m).width, 512);
        let z = uarch::Machine::zen4();
        let vz = Variant {
            kernel: StreamKernel::Add,
            compiler: Compiler::Gcc,
            opt: OptLevel::O3,
            arch: Arch::Zen4,
        };
        assert_eq!(gen_cfg(&vz, &z).width, 256);
    }

    #[test]
    fn armclang_uses_sve_at_o3() {
        let m = uarch::Machine::neoverse_v2();
        let v = Variant {
            kernel: StreamKernel::Add,
            compiler: Compiler::ArmClang,
            opt: OptLevel::O3,
            arch: Arch::NeoverseV2,
        };
        assert!(gen_cfg(&v, &m).sve);
        let v2 = Variant {
            opt: OptLevel::O2,
            ..v
        };
        assert!(!gen_cfg(&v2, &m).sve);
    }

    #[test]
    fn every_variant_parses() {
        for m in uarch::all_machines() {
            for v in variants_for(m.arch) {
                let k = generate_kernel(&v, &m);
                assert!(!k.instructions.is_empty(), "{}", v.label());
                assert!(k.loop_label.is_some(), "{} has no loop", v.label());
            }
        }
    }

    #[test]
    fn store_kernels_store_and_nt_flag_works() {
        for m in uarch::all_machines() {
            let std = init_store_kernel(&m, false);
            assert!(std.store_count() > 0, "{}", m.arch.label());
            assert!(!std.instructions.iter().any(|i| i.is_nt_store()));
            if m.isa == isa::Isa::X86 {
                let nt = init_store_kernel(&m, true);
                assert!(nt.instructions.iter().any(|i| i.is_nt_store()));
            }
        }
    }
}
