//! x86-64 (AT&T) code generation for the 13 kernels.
//!
//! Register conventions: `rdi` = target array `a`, `rsi` = `b` (or the
//! row being swept), `rdx` = `c` / north row, `rcx` = `d` / south row,
//! `r9`–`r14` = additional stencil streams, `rax` = loop index, `r8` =
//! limit. Constants live in high vector registers: `15` = scale `s`,
//! `14` = 1.0, `13` = 4.0, `12` = dx.

use crate::{GenCfg, StreamKernel};
use std::fmt::Write;

/// Emit the loop for a kernel under the given configuration.
pub fn emit(kernel: StreamKernel, cfg: &GenCfg) -> String {
    let mut g = Gen::new(cfg);
    g.kernel(kernel);
    g.out
}

struct Gen<'a> {
    cfg: &'a GenCfg,
    out: String,
}

impl<'a> Gen<'a> {
    fn new(cfg: &'a GenCfg) -> Self {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# generated x86-64 kernel (width={}, unroll={})",
            cfg.width, cfg.unroll
        );
        Gen { cfg, out }
    }

    fn scalar(&self) -> bool {
        self.cfg.width == 0
    }

    /// Bytes advanced per (vector or scalar) operation.
    fn step(&self) -> usize {
        if self.scalar() {
            8
        } else {
            self.cfg.width as usize / 8
        }
    }

    /// Vector register name for logical index `i`.
    fn vr(&self, i: usize) -> String {
        match self.cfg.width {
            0 | 128 => format!("%xmm{i}"),
            256 => format!("%ymm{i}"),
            _ => format!("%zmm{i}"),
        }
    }

    fn line(&mut self, s: &str) {
        let _ = writeln!(self.out, "    {s}");
    }

    fn label(&mut self) {
        let _ = writeln!(self.out, ".L0:");
    }

    /// Memory operand: vector loops index in bytes, scalar loops in
    /// elements with scale 8.
    fn mem(&self, base: &str, off_bytes: i64) -> String {
        if self.scalar() {
            if off_bytes == 0 {
                format!("(%{base},%rax,8)")
            } else {
                format!("{off_bytes}(%{base},%rax,8)")
            }
        } else if off_bytes == 0 {
            format!("(%{base},%rax)")
        } else {
            format!("{off_bytes}(%{base},%rax)")
        }
    }

    /// Packed/scalar mnemonic selection.
    fn op(&self, packed: &str, scal: &str) -> String {
        if self.scalar() {
            if self.cfg.legacy_sse {
                scal.to_string()
            } else {
                format!("v{scal}")
            }
        } else {
            format!("v{packed}")
        }
    }

    /// Load `src_mem` into register `dst`.
    fn load(&mut self, mem: String, dst: &str) {
        let m = self.op("movupd", "movsd");
        self.line(&format!("{m} {mem}, {dst}"));
    }

    /// Store register `src` to memory.
    fn store(&mut self, src: &str, mem: String) {
        let m = if self.cfg.nt_stores && !self.scalar() {
            "vmovntpd".to_string()
        } else {
            self.op("movupd", "movsd")
        };
        self.line(&format!("{m} {src}, {mem}"));
    }

    /// dst = dst OP src (src may be memory). Handles legacy two-operand
    /// SSE vs. VEX three-operand forms.
    fn arith(&mut self, packed: &str, scal: &str, src: &str, dst: &str) {
        if self.scalar() && self.cfg.legacy_sse {
            self.line(&format!("{scal} {src}, {dst}"));
        } else {
            let m = if self.scalar() {
                format!("v{scal}")
            } else {
                format!("v{packed}")
            };
            self.line(&format!("{m} {src}, {dst}, {dst}"));
        }
    }

    /// dst += m1 * r2 as an FMA (requires `cfg.fma`; falls back to
    /// mul+add through a scratch register otherwise).
    fn fma_acc(&mut self, mul_src: &str, mul_by: &str, acc: &str, scratch: &str) {
        if self.cfg.fma && !self.cfg.legacy_sse {
            let m = if self.scalar() {
                "vfmadd231sd"
            } else {
                "vfmadd231pd"
            };
            self.line(&format!("{m} {mul_src}, {mul_by}, {acc}"));
        } else {
            // scratch = mul_src; scratch *= mul_by; acc += scratch
            self.load(mul_src.to_string(), scratch);
            self.arith("mulpd", "mulsd", mul_by, scratch);
            self.arith("addpd", "addsd", scratch, acc);
        }
    }

    /// Standard loop tail: advance index, compare, branch.
    fn tail(&mut self, per_iter_ops: usize) {
        let inc = if self.scalar() {
            per_iter_ops as i64
        } else {
            (per_iter_ops * self.step()) as i64
        };
        self.line(&format!("addq ${inc}, %rax"));
        self.line("cmpq %r8, %rax");
        self.line("jne .L0");
    }

    /// Counter-based tail (`subq $1` loops used by reductions and π).
    fn tail_count(&mut self) {
        self.line("subq $1, %rax");
        self.line("jne .L0");
    }

    fn kernel(&mut self, kernel: StreamKernel) {
        use StreamKernel::*;
        let u_count = self.cfg.unroll;
        match kernel {
            Init => {
                self.label();
                for u in 0..u_count {
                    let m = self.mem("rdi", (u * self.step()) as i64);
                    let v = self.vr(15);
                    self.store(&v, m);
                }
                self.tail(u_count);
            }
            Copy => {
                self.label();
                for u in 0..u_count {
                    let off = (u * self.step()) as i64;
                    let v = self.vr(1 + u);
                    self.load(self.mem("rsi", off), &v);
                    self.store(&v, self.mem("rdi", off));
                }
                self.tail(u_count);
            }
            Update => {
                self.label();
                for u in 0..u_count {
                    let off = (u * self.step()) as i64;
                    let v = self.vr(1 + u);
                    let s = self.vr(15);
                    self.load(self.mem("rdi", off), &v);
                    self.arith("mulpd", "mulsd", &s, &v);
                    self.store(&v, self.mem("rdi", off));
                }
                self.tail(u_count);
            }
            Add => {
                self.label();
                for u in 0..u_count {
                    let off = (u * self.step()) as i64;
                    let v = self.vr(1 + u);
                    self.load(self.mem("rsi", off), &v);
                    let c = self.mem("rdx", off);
                    self.arith("addpd", "addsd", &c, &v);
                    self.store(&v, self.mem("rdi", off));
                }
                self.tail(u_count);
            }
            StreamTriad => {
                // a = b + s*c : load c, acc = b, fma acc += s*c.
                self.label();
                for u in 0..u_count {
                    let off = (u * self.step()) as i64;
                    let v = self.vr(1 + u); // c
                    let w = self.vr(5 + u); // acc = b
                    let s = self.vr(15);
                    let scratch = self.vr(9 + (u % 2));
                    self.load(self.mem("rdx", off), &v);
                    self.load(self.mem("rsi", off), &w);
                    self.fma_acc(&v.clone(), &s, &w, &scratch);
                    self.store(&w, self.mem("rdi", off));
                }
                self.tail(u_count);
            }
            SchoenauerTriad => {
                // a = b + c*d : acc = b, fma acc += c * d(mem).
                self.label();
                for u in 0..u_count {
                    let off = (u * self.step()) as i64;
                    let v = self.vr(1 + u); // c
                    let w = self.vr(5 + u); // acc = b
                    let scratch = self.vr(9 + (u % 2));
                    self.load(self.mem("rdx", off), &v);
                    self.load(self.mem("rsi", off), &w);
                    let d = self.mem("rcx", off);
                    self.fma_acc(&d, &v, &w, &scratch);
                    self.store(&w, self.mem("rdi", off));
                }
                self.tail(u_count);
            }
            Sum => {
                let accs = self.cfg.accumulators.max(1);
                self.label();
                for u in 0..u_count.max(accs) {
                    let off = (u * self.step()) as i64;
                    let acc = self.vr(u % accs);
                    let m = self.mem("rsi", off);
                    self.arith("addpd", "addsd", &m, &acc);
                }
                self.tail(u_count.max(accs));
            }
            Pi => {
                let accs = self.cfg.accumulators.max(1);
                self.label();
                for u in 0..u_count {
                    let x = self.vr(1); // running x
                    let t = self.vr(5 + (u % 2));
                    let q = self.vr(7 + (u % 2));
                    let ones = self.vr(14);
                    let fours = self.vr(13);
                    let dx = self.vr(12);
                    let acc = self.vr(u % accs);
                    // t = x*x ; t = 1 + t ; q = 4 / t ; acc += q ; x += dx
                    if self.scalar() && self.cfg.legacy_sse {
                        self.line(&format!("movapd {x}, {t}"));
                        self.line(&format!("mulsd {x}, {t}"));
                        self.line(&format!("addsd {ones}, {t}"));
                        self.line(&format!("movapd {fours}, {q}"));
                        self.line(&format!("divsd {t}, {q}"));
                        self.line(&format!("addsd {q}, {acc}"));
                        self.line(&format!("addsd {dx}, {x}"));
                    } else if self.scalar() {
                        self.line(&format!("vmulsd {x}, {x}, {t}"));
                        self.line(&format!("vaddsd {ones}, {t}, {t}"));
                        self.line(&format!("vdivsd {t}, {fours}, {q}"));
                        self.line(&format!("vaddsd {q}, {acc}, {acc}"));
                        self.line(&format!("vaddsd {dx}, {x}, {x}"));
                    } else {
                        self.line(&format!("vmulpd {x}, {x}, {t}"));
                        self.line(&format!("vaddpd {ones}, {t}, {t}"));
                        self.line(&format!("vdivpd {t}, {fours}, {q}"));
                        self.line(&format!("vaddpd {q}, {acc}, {acc}"));
                        self.line(&format!("vaddpd {dx}, {x}, {x}"));
                    }
                }
                self.tail_count();
            }
            GaussSeidel2D => {
                // phi[j] = 0.25*(phi_N[j] + phi_S[j] + phi[j+1] + phi[j-1])
                // with phi[j-1] carried in xmm0 — the true dependency chain.
                let legacy = self.cfg.legacy_sse;
                self.label();
                if legacy {
                    self.line("movsd 8(%rsi,%rax,8), %xmm1");
                    self.line("addsd (%rdx,%rax,8), %xmm1");
                    self.line("addsd (%rcx,%rax,8), %xmm1");
                    self.line("addsd %xmm0, %xmm1");
                    self.line("movapd %xmm1, %xmm0");
                    self.line("mulsd %xmm7, %xmm0");
                    self.line("movsd %xmm0, (%rsi,%rax,8)");
                } else {
                    self.line("vmovsd 8(%rsi,%rax,8), %xmm1");
                    self.line("vaddsd (%rdx,%rax,8), %xmm1, %xmm1");
                    self.line("vaddsd (%rcx,%rax,8), %xmm1, %xmm1");
                    self.line("vaddsd %xmm0, %xmm1, %xmm1");
                    self.line("vmulsd %xmm7, %xmm1, %xmm0");
                    self.line("vmovsd %xmm0, (%rsi,%rax,8)");
                }
                self.line("addq $1, %rax");
                self.line("cmpq %r8, %rax");
                self.line("jne .L0");
            }
            Jacobi2D5 => self.jacobi(&[("rsi", -8), ("rsi", 8), ("rdx", 0), ("rcx", 0)]),
            Jacobi3D7 => self.jacobi(&[
                ("rsi", -8),
                ("rsi", 0),
                ("rsi", 8),
                ("rdx", 0),
                ("rcx", 0),
                ("r9", 0),
                ("r10", 0),
            ]),
            Jacobi3D11 => self.jacobi(&[
                ("rsi", -16),
                ("rsi", -8),
                ("rsi", 0),
                ("rsi", 8),
                ("rsi", 16),
                ("rdx", 0),
                ("rcx", 0),
                ("r9", 0),
                ("r10", 0),
                ("r11", 0),
                ("r12", 0),
            ]),
            Jacobi3D27 => {
                let mut pts = Vec::new();
                for base in ["rsi", "rdx", "rcx", "r9", "r10", "r11", "r12", "r13", "r14"] {
                    for off in [-8i64, 0, 8] {
                        pts.push((base, off));
                    }
                }
                self.jacobi(&pts);
            }
        }
    }

    /// Generic Jacobi-style stencil: sum the points, scale, store.
    fn jacobi(&mut self, points: &[(&str, i64)]) {
        let u_count = self.cfg.unroll;
        self.label();
        for u in 0..u_count {
            let base_off = (u * self.step()) as i64;
            let elem = if self.scalar() {
                1
            } else {
                self.step() as i64 / 8
            };
            let v = self.vr(1 + u);
            let scale = self.vr(15);
            let (first_base, first_off) = points[0];
            let scaled_first = if self.scalar() {
                base_off / 8 * 8
            } else {
                base_off
            };
            let _ = elem;
            self.load(self.mem(first_base, first_off + scaled_first), &v);
            for &(base, off) in &points[1..] {
                let m = self.mem(base, off + scaled_first);
                self.arith("addpd", "addsd", &m, &v);
            }
            self.arith("mulpd", "mulsd", &scale, &v);
            self.store(&v, self.mem("rdi", scaled_first));
        }
        self.tail(u_count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GenCfg;
    use isa::{parse_kernel, Isa};

    fn cfg(width: u16, unroll: usize, legacy: bool) -> GenCfg {
        GenCfg {
            width,
            unroll,
            accumulators: 1,
            fma: true,
            legacy_sse: legacy,
            sve: false,
            nt_stores: false,
            post_index: false,
        }
    }

    fn parse(kernel: StreamKernel, c: &GenCfg) -> isa::Kernel {
        let asm = emit(kernel, c);
        parse_kernel(&asm, Isa::X86).unwrap_or_else(|e| panic!("{e}\n{asm}"))
    }

    #[test]
    fn add_vector_structure() {
        let k = parse(StreamKernel::Add, &cfg(512, 1, false));
        assert_eq!(k.load_count(), 2);
        assert_eq!(k.store_count(), 1);
        assert_eq!(k.dominant_ext(), isa::IsaExt::Avx512);
    }

    #[test]
    fn add_scalar_legacy_sse() {
        let k = parse(StreamKernel::Add, &cfg(0, 1, true));
        assert_eq!(k.dominant_ext(), isa::IsaExt::Sse);
        assert!(k.instructions.iter().any(|i| i.mnemonic == "addsd"));
    }

    #[test]
    fn unrolling_multiplies_body() {
        let k1 = parse(StreamKernel::Copy, &cfg(256, 1, false));
        let k4 = parse(StreamKernel::Copy, &cfg(256, 4, false));
        assert_eq!(k4.load_count(), 4 * k1.load_count());
        assert_eq!(k4.store_count(), 4 * k1.store_count());
    }

    #[test]
    fn triads_use_fma_when_enabled() {
        let k = parse(StreamKernel::StreamTriad, &cfg(512, 1, false));
        assert!(k
            .instructions
            .iter()
            .any(|i| i.mnemonic.starts_with("vfmadd")));
        let nofma = GenCfg {
            fma: false,
            ..cfg(512, 1, false)
        };
        let k2 = parse(StreamKernel::StreamTriad, &nofma);
        assert!(!k2
            .instructions
            .iter()
            .any(|i| i.mnemonic.starts_with("vfmadd")));
        assert!(k2.instructions.iter().any(|i| i.mnemonic == "vmulpd"));
    }

    #[test]
    fn pi_contains_divide() {
        for c in [cfg(0, 1, true), cfg(0, 1, false), cfg(512, 1, false)] {
            let k = parse(StreamKernel::Pi, &c);
            assert!(
                k.instructions.iter().any(|i| i.mnemonic.contains("div")),
                "missing div at width {}",
                c.width
            );
        }
    }

    #[test]
    fn gauss_seidel_has_register_chain() {
        let k = parse(StreamKernel::GaussSeidel2D, &cfg(0, 1, false));
        // xmm0 must be read and written in the body (the carried value).
        let reads0 = k.instructions.iter().any(|i| {
            isa::dataflow::dataflow(i)
                .reads
                .iter()
                .any(|r| r.index == 0 && r.class == isa::RegClass::Vec)
        });
        let writes0 = k.instructions.iter().any(|i| {
            isa::dataflow::dataflow(i)
                .writes
                .iter()
                .any(|r| r.index == 0 && r.class == isa::RegClass::Vec)
        });
        assert!(reads0 && writes0);
    }

    #[test]
    fn jacobi_load_counts() {
        assert_eq!(
            parse(StreamKernel::Jacobi2D5, &cfg(512, 1, false)).load_count(),
            4
        );
        assert_eq!(
            parse(StreamKernel::Jacobi3D7, &cfg(512, 1, false)).load_count(),
            7
        );
        assert_eq!(
            parse(StreamKernel::Jacobi3D11, &cfg(512, 1, false)).load_count(),
            11
        );
        assert_eq!(
            parse(StreamKernel::Jacobi3D27, &cfg(512, 1, false)).load_count(),
            27
        );
    }

    #[test]
    fn nt_store_flag() {
        let c = GenCfg {
            nt_stores: true,
            ..cfg(512, 2, false)
        };
        let k = parse(StreamKernel::Init, &c);
        assert!(k
            .instructions
            .iter()
            .filter(|i| i.is_store())
            .all(|i| i.is_nt_store()));
    }

    #[test]
    fn sum_uses_accumulators() {
        let c = GenCfg {
            accumulators: 4,
            ..cfg(256, 4, false)
        };
        let k = parse(StreamKernel::Sum, &c);
        // Four distinct accumulator registers ymm0..ymm3.
        let accs: std::collections::HashSet<u8> = k
            .instructions
            .iter()
            .filter(|i| i.mnemonic == "vaddpd")
            .filter_map(|i| i.operands.last().and_then(|o| o.as_reg()).map(|r| r.index))
            .collect();
        assert_eq!(accs.len(), 4);
    }
}
