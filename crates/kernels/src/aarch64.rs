//! AArch64 code generation for the 13 kernels (scalar, NEON, and SVE).
//!
//! Register conventions: `x0` = target array `a`, `x1` = `b` / swept row,
//! `x2` = `c` / north, `x3` = `d` / south, `x6`/`x7` = west/east pointers,
//! `x9`–`x14` = additional stencil streams, `x4` = index, `x5` = limit /
//! remaining count, `x15`–`x17` = address scratch. Constants: `v28` = s,
//! `v29` = 1.0, `v30` = 4.0, `v31` = dx (same numbering as `z`/`d` views).

use crate::{GenCfg, StreamKernel};
use std::fmt::Write;

/// Emit the loop for a kernel under the given configuration.
pub fn emit(kernel: StreamKernel, cfg: &GenCfg) -> String {
    let mut g = Gen::new(cfg);
    g.kernel(kernel);
    g.out
}

struct Gen<'a> {
    cfg: &'a GenCfg,
    out: String,
}

impl<'a> Gen<'a> {
    fn new(cfg: &'a GenCfg) -> Self {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "// generated AArch64 kernel (width={}, sve={}, unroll={})",
            cfg.width, cfg.sve, cfg.unroll
        );
        Gen { cfg, out }
    }

    fn scalar(&self) -> bool {
        self.cfg.width == 0
    }

    fn sve(&self) -> bool {
        self.cfg.sve && !self.scalar()
    }

    /// Post-index pointer walks (armclang style); never used for SVE.
    fn post_walk(&self) -> bool {
        self.cfg.post_index && !self.sve()
    }

    fn line(&mut self, s: &str) {
        let _ = writeln!(self.out, "    {s}");
    }

    fn label(&mut self) {
        let _ = writeln!(self.out, ".L0:");
    }

    /// Data register name: `d3`, `v3.2d`, or `z3.d`.
    fn r(&self, i: usize) -> String {
        if self.scalar() {
            format!("d{i}")
        } else if self.sve() {
            format!("z{i}.d")
        } else {
            format!("v{i}.2d")
        }
    }

    /// Load element/vector `reg_idx` from `[base + x4-index]`.
    fn load_idx(&mut self, base: &str, reg: usize) {
        if self.scalar() {
            self.line(&format!("ldr d{reg}, [{base}, x4, lsl #3]"));
        } else if self.sve() {
            self.line(&format!("ld1d {{z{reg}.d}}, p0/z, [{base}, x4, lsl #3]"));
        } else {
            self.line(&format!("ldr q{reg}, [{base}, x4]"));
        }
    }

    fn store_idx(&mut self, base: &str, reg: usize) {
        if self.scalar() {
            self.line(&format!("str d{reg}, [{base}, x4, lsl #3]"));
        } else if self.sve() {
            self.line(&format!("st1d {{z{reg}.d}}, p0, [{base}, x4, lsl #3]"));
        } else if self.cfg.nt_stores {
            // NEON has no single-register NT store; compilers use stnp.
            self.line(&format!("stnp q{reg}, q{reg}, [x17]"));
        } else {
            self.line(&format!("str q{reg}, [{base}, x4]"));
        }
    }

    fn fadd(&mut self, dst: usize, a: usize, b: usize) {
        let (d, x, y) = (self.r(dst), self.r(a), self.r(b));
        self.line(&format!("fadd {d}, {x}, {y}"));
    }

    fn fmul(&mut self, dst: usize, a: usize, b: usize) {
        let (d, x, y) = (self.r(dst), self.r(a), self.r(b));
        self.line(&format!("fmul {d}, {x}, {y}"));
    }

    fn fdiv(&mut self, dst: usize, a: usize, b: usize) {
        if self.sve() {
            // SVE divide is predicated and destructive.
            let (d, x, y) = (self.r(dst), self.r(a), self.r(b));
            self.line(&format!("movprfx z{dst}, z{a}"));
            let _ = (d, x);
            self.line(&format!("fdiv {}, p0/m, {}, {y}", self.r(dst), self.r(dst)));
        } else {
            let (d, x, y) = (self.r(dst), self.r(a), self.r(b));
            self.line(&format!("fdiv {d}, {x}, {y}"));
        }
    }

    /// acc += a*b.
    fn fma(&mut self, acc: usize, a: usize, b: usize) {
        if self.scalar() {
            if self.cfg.fma {
                self.line(&format!("fmadd d{acc}, d{a}, d{b}, d{acc}"));
            } else {
                self.line(&format!("fmul d20, d{a}, d{b}"));
                self.line(&format!("fadd d{acc}, d{acc}, d20"));
            }
        } else if self.sve() {
            if self.cfg.fma {
                self.line(&format!("fmla z{acc}.d, p0/m, z{a}.d, z{b}.d"));
            } else {
                self.line(&format!("fmul z20.d, z{a}.d, z{b}.d"));
                self.line(&format!("fadd z{acc}.d, z{acc}.d, z20.d"));
            }
        } else if self.cfg.fma {
            self.line(&format!("fmla v{acc}.2d, v{a}.2d, v{b}.2d"));
        } else {
            self.line(&format!("fmul v20.2d, v{a}.2d, v{b}.2d"));
            self.line(&format!("fadd v{acc}.2d, v{acc}.2d, v20.2d"));
        }
    }

    /// Index-advance + compare + branch, for index-based loops.
    fn tail(&mut self, ops: usize) {
        if self.sve() {
            // incd advances by the number of 64-bit elements per vector.
            for _ in 0..ops {
                self.line("incd x4");
            }
            self.line("whilelo p0.d, x4, x5");
            self.line("b.mi .L0");
        } else if self.scalar() {
            self.line(&format!("add x4, x4, #{ops}"));
            self.line("cmp x4, x5");
            self.line("b.ne .L0");
        } else {
            self.line(&format!("add x4, x4, #{}", ops * 16));
            self.line("cmp x4, x5");
            self.line("b.ne .L0");
        }
    }

    fn tail_count(&mut self) {
        self.line("subs x5, x5, #1");
        self.line("b.ne .L0");
    }

    /// Tail for linear-stream kernels: post-index walks count down, index
    /// walks compare the index register.
    fn linear_tail(&mut self, ops: usize) {
        if self.post_walk() {
            self.tail_count();
        } else {
            self.tail(ops);
        }
    }

    fn kernel(&mut self, kernel: StreamKernel) {
        use StreamKernel::*;
        // SVE bodies are generated at unroll 1 (real SVE loops advance by
        // whole vectors through the predicate, and armclang does not unroll
        // the predicated remainder-free form).
        let u_count = if self.sve() { 1 } else { self.cfg.unroll };
        match kernel {
            Init => {
                self.label();
                if self.sve() {
                    self.line("st1d {z28.d}, p0, [x0, x4, lsl #3]");
                    self.tail(1);
                } else if self.scalar() {
                    for _ in 0..u_count {
                        self.line("str d28, [x0], #8");
                    }
                    self.tail_count();
                } else if self.cfg.nt_stores {
                    for _ in 0..u_count {
                        self.line("stnp q28, q28, [x0]");
                        self.line("add x0, x0, #32");
                    }
                    self.tail_count();
                } else {
                    for u in 0..u_count {
                        self.line(&format!("str q28, [x0, #{}]", u * 16));
                    }
                    self.line(&format!("add x0, x0, #{}", u_count * 16));
                    self.tail_count();
                }
            }
            Copy => {
                self.label();
                for u in 0..u_count {
                    self.load_idx_u("x1", 1 + u, u);
                    self.store_idx_u("x0", 1 + u, u);
                }
                self.linear_tail(u_count);
            }
            Update => {
                self.label();
                for u in 0..u_count {
                    if self.post_walk() {
                        // In-place update: plain load, post-indexed store
                        // advances the single pointer.
                        if self.scalar() {
                            self.line(&format!("ldr d{}, [x0]", 1 + u));
                        } else {
                            self.line(&format!("ldr q{}, [x0]", 1 + u));
                        }
                        self.fmul(1 + u, 1 + u, 28);
                        self.store_idx_u("x0", 1 + u, u);
                    } else {
                        self.load_idx_u("x0", 1 + u, u);
                        self.fmul(1 + u, 1 + u, 28);
                        self.store_idx_u("x0", 1 + u, u);
                    }
                }
                self.linear_tail(u_count);
            }
            Add => {
                self.label();
                for u in 0..u_count {
                    self.load_idx_u("x1", 1 + u, u);
                    self.load_idx_u("x2", 5 + u, u);
                    self.fadd(1 + u, 1 + u, 5 + u);
                    self.store_idx_u("x0", 1 + u, u);
                }
                self.linear_tail(u_count);
            }
            StreamTriad => {
                // a = b + s*c.
                self.label();
                for u in 0..u_count {
                    self.load_idx_u("x2", 1 + u, u); // c
                    self.load_idx_u("x1", 5 + u, u); // acc = b
                    self.fma(5 + u, 1 + u, 28);
                    self.store_idx_u("x0", 5 + u, u);
                }
                self.linear_tail(u_count);
            }
            SchoenauerTriad => {
                // a = b + c*d.
                self.label();
                for u in 0..u_count {
                    self.load_idx_u("x2", 1 + u, u); // c
                    self.load_idx_u("x3", 5 + u, u); // d
                    self.load_idx_u("x1", 9 + u, u); // acc = b
                    self.fma(9 + u, 1 + u, 5 + u);
                    self.store_idx_u("x0", 9 + u, u);
                }
                self.linear_tail(u_count);
            }
            Sum => {
                let accs = self.cfg.accumulators.max(1);
                let reps = u_count.max(accs);
                self.label();
                for u in 0..reps {
                    self.load_idx_u("x1", 8 + u, u);
                    self.fadd(u % accs, u % accs, 8 + u);
                }
                self.linear_tail(reps);
            }
            Pi => {
                let accs = self.cfg.accumulators.max(1);
                self.label();
                for u in 0..u_count {
                    // t = x*x ; t += 1 ; q = 4/t ; acc += q ; x += dx
                    self.fmul(8, 1, 1);
                    self.fadd(8, 8, 29);
                    self.fdiv(9, 30, 8);
                    self.fadd(u % accs, u % accs, 9);
                    self.fadd(1, 1, 31);
                }
                self.tail_count();
            }
            GaussSeidel2D => {
                // d0 carries phi[j-1]; pointer walks with post-index.
                self.label();
                self.line("ldr d1, [x2], #8"); // north
                self.line("ldr d2, [x3], #8"); // south
                self.line("ldr d3, [x7], #8"); // east
                self.line("fadd d1, d1, d2");
                self.line("fadd d1, d1, d3");
                self.line("fadd d1, d1, d0");
                self.line("fmul d0, d1, d28");
                self.line("str d0, [x0], #8");
                self.tail_count();
            }
            Jacobi2D5 => self.jacobi(&[("x6", 0), ("x7", 0), ("x2", 0), ("x3", 0)]),
            Jacobi3D7 => self.jacobi(&[
                ("x1", -8),
                ("x1", 0),
                ("x1", 8),
                ("x2", 0),
                ("x3", 0),
                ("x9", 0),
                ("x10", 0),
            ]),
            Jacobi3D11 => self.jacobi(&[
                ("x1", -16),
                ("x1", -8),
                ("x1", 0),
                ("x1", 8),
                ("x1", 16),
                ("x2", 0),
                ("x3", 0),
                ("x9", 0),
                ("x10", 0),
                ("x11", 0),
                ("x12", 0),
            ]),
            Jacobi3D27 => {
                let mut pts = Vec::new();
                for base in ["x1", "x2", "x3", "x9", "x10", "x11", "x12", "x13", "x14"] {
                    for off in [-8i64, 0, 8] {
                        pts.push((base, off));
                    }
                }
                self.jacobi(&pts);
            }
        }
    }

    /// Indexed load honoring NEON unroll offsets.
    fn load_idx_u(&mut self, base: &str, reg: usize, u: usize) {
        if self.post_walk() {
            if self.scalar() {
                self.line(&format!("ldr d{reg}, [{base}], #8"));
            } else {
                self.line(&format!("ldr q{reg}, [{base}], #16"));
            }
            return;
        }
        if self.scalar() || self.sve() || u == 0 {
            if u == 0 || self.sve() {
                self.load_idx(base, reg);
            } else {
                // Scalar unroll: shift the index register once per group is
                // modeled by computing the address explicitly.
                self.line(&format!("add x15, {base}, x4, lsl #3"));
                self.line(&format!("ldr d{reg}, [x15, #{}]", u * 8));
            }
        } else {
            self.line(&format!("add x16, {base}, x4"));
            self.line(&format!("ldr q{reg}, [x16, #{}]", u * 16));
        }
    }

    fn store_idx_u(&mut self, base: &str, reg: usize, u: usize) {
        if self.post_walk() {
            if self.scalar() {
                self.line(&format!("str d{reg}, [{base}], #8"));
            } else {
                self.line(&format!("str q{reg}, [{base}], #16"));
            }
            return;
        }
        if self.scalar() || self.sve() || u == 0 {
            if u == 0 || self.sve() {
                self.store_idx(base, reg);
            } else {
                self.line(&format!("add x15, {base}, x4, lsl #3"));
                self.line(&format!("str d{reg}, [x15, #{}]", u * 8));
            }
        } else {
            self.line(&format!("add x17, {base}, x4"));
            self.line(&format!("str q{reg}, [x17, #{}]", u * 16));
        }
    }

    /// Generic Jacobi-style stencil.
    fn jacobi(&mut self, points: &[(&str, i64)]) {
        let u_count = if self.sve() { 1 } else { self.cfg.unroll };
        self.label();
        for u in 0..u_count {
            let acc = 1 + u;
            let tmp = 8 + (u % 2);
            let mut first = true;
            for &(base, off) in points {
                if off == 0 && u == 0 {
                    if first {
                        self.load_idx(base, acc);
                        first = false;
                    } else {
                        self.load_idx(base, tmp);
                        self.fadd(acc, acc, tmp);
                    }
                } else {
                    // Offset access: materialize the address.
                    let reg = if first { acc } else { tmp };
                    if self.sve() {
                        self.line(&format!("add x15, {base}, x4, lsl #3"));
                        if off >= 0 {
                            self.line(&format!("add x16, x15, #{off}"));
                        } else {
                            self.line(&format!("sub x16, x15, #{}", -off));
                        }
                        self.line(&format!("ld1d {{z{reg}.d}}, p0/z, [x16]"));
                    } else if self.scalar() {
                        self.line(&format!("add x15, {base}, x4, lsl #3"));
                        self.line(&format!("ldr d{reg}, [x15, #{}]", off + (u as i64) * 8));
                    } else {
                        self.line(&format!("add x16, {base}, x4"));
                        self.line(&format!("ldr q{reg}, [x16, #{}]", off + (u as i64) * 16));
                    }
                    if first {
                        first = false;
                    } else {
                        self.fadd(acc, acc, tmp);
                    }
                }
            }
            self.fmul(acc, acc, 28);
            if u == 0 {
                self.store_idx("x0", acc);
            } else {
                self.store_idx_u("x0", acc, u);
            }
        }
        self.tail(u_count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GenCfg;
    use isa::{parse_kernel, Isa};

    fn cfg(width: u16, unroll: usize, sve: bool) -> GenCfg {
        GenCfg {
            width,
            unroll,
            accumulators: 1,
            fma: true,
            legacy_sse: false,
            sve,
            nt_stores: false,
            post_index: false,
        }
    }

    fn parse(kernel: StreamKernel, c: &GenCfg) -> isa::Kernel {
        let asm = emit(kernel, c);
        parse_kernel(&asm, Isa::AArch64).unwrap_or_else(|e| panic!("{e}\n{asm}"))
    }

    #[test]
    fn add_neon_structure() {
        let k = parse(StreamKernel::Add, &cfg(128, 1, false));
        assert_eq!(k.load_count(), 2);
        assert_eq!(k.store_count(), 1);
        assert_eq!(k.dominant_ext(), isa::IsaExt::Neon);
    }

    #[test]
    fn add_sve_structure() {
        let k = parse(StreamKernel::Add, &cfg(128, 1, true));
        assert_eq!(k.dominant_ext(), isa::IsaExt::Sve);
        assert!(k.instructions.iter().any(|i| i.mnemonic == "whilelo"));
        assert!(k.instructions.iter().any(|i| i.mnemonic == "incd"));
    }

    #[test]
    fn scalar_kernels_are_scalar() {
        for kern in [
            StreamKernel::Sum,
            StreamKernel::Pi,
            StreamKernel::GaussSeidel2D,
        ] {
            let k = parse(kern, &cfg(0, 1, false));
            assert_eq!(k.dominant_ext(), isa::IsaExt::Scalar, "{}", kern.name());
        }
    }

    #[test]
    fn pi_has_divide_chain() {
        let k = parse(StreamKernel::Pi, &cfg(0, 1, false));
        assert!(k.instructions.iter().any(|i| i.base_mnemonic() == "fdiv"));
        let sve = parse(StreamKernel::Pi, &cfg(128, 1, true));
        assert!(sve.instructions.iter().any(|i| i.base_mnemonic() == "fdiv"));
    }

    #[test]
    fn gs_carries_d0() {
        let k = parse(StreamKernel::GaussSeidel2D, &cfg(0, 1, false));
        let writes0 = k.instructions.iter().any(|i| {
            isa::dataflow::dataflow(i)
                .writes
                .iter()
                .any(|r| r.index == 0 && r.class == isa::RegClass::Vec)
        });
        assert!(writes0);
        assert!(k
            .instructions
            .iter()
            .all(|i| !i.mnemonic.starts_with("ld1")));
    }

    #[test]
    fn jacobi_loads() {
        assert_eq!(
            parse(StreamKernel::Jacobi2D5, &cfg(128, 1, false)).load_count(),
            4
        );
        assert_eq!(
            parse(StreamKernel::Jacobi3D7, &cfg(128, 1, false)).load_count(),
            7
        );
        assert_eq!(
            parse(StreamKernel::Jacobi3D27, &cfg(128, 1, false)).load_count(),
            27
        );
        assert_eq!(
            parse(StreamKernel::Jacobi3D7, &cfg(128, 1, true)).load_count(),
            7
        );
    }

    #[test]
    fn triad_uses_fmla() {
        let k = parse(StreamKernel::StreamTriad, &cfg(128, 1, false));
        assert!(k.instructions.iter().any(|i| i.mnemonic == "fmla"));
        let s = parse(StreamKernel::SchoenauerTriad, &cfg(128, 1, true));
        assert!(s.instructions.iter().any(|i| i.base_mnemonic() == "fmla"));
    }

    #[test]
    fn unrolled_neon_parses() {
        for kern in StreamKernel::ALL {
            let k = parse(kern, &cfg(128, 2, false));
            assert!(!k.instructions.is_empty(), "{}", kern.name());
        }
    }
}
