//! Per-kernel data volumes and flop counts (per scalar loop iteration),
//! used by the ECM/Roofline models and the bandwidth benchmarks — plus
//! the volume corpus source ([`VolumeBlock`] / [`volume_blocks`]) that
//! scales the generator personalities past the fixed validation grid for
//! throughput work (streaming sessions, the pipeline benchmark).

use crate::{variants_for, Arch, StreamKernel, Variant};
use uarch::Machine;

/// Data traffic and work of one scalar iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Volume {
    /// Bytes loaded from the arrays (without cache reuse).
    pub load_bytes: u32,
    /// Bytes stored.
    pub store_bytes: u32,
    /// Whether the stored lines are fully overwritten (write-allocate
    /// applies unless evaded).
    pub full_line_store: bool,
    /// Floating-point operations (FMA = 2).
    pub flops: u32,
}

impl Volume {
    /// Memory traffic per iteration assuming write-allocate with factor
    /// `wa` (1.0 = evaded, 2.0 = full WA on the store stream).
    pub fn traffic_bytes(&self, wa: f64) -> f64 {
        self.load_bytes as f64 + self.store_bytes as f64 * wa
    }

    /// Arithmetic intensity in flop/byte at a given WA factor.
    pub fn intensity(&self, wa: f64) -> f64 {
        if self.traffic_bytes(wa) == 0.0 {
            f64::INFINITY
        } else {
            self.flops as f64 / self.traffic_bytes(wa)
        }
    }
}

/// The volume table for the 13 kernels.
pub fn volume(kernel: StreamKernel) -> Volume {
    use StreamKernel::*;
    match kernel {
        Init => Volume {
            load_bytes: 0,
            store_bytes: 8,
            full_line_store: true,
            flops: 0,
        },
        Copy => Volume {
            load_bytes: 8,
            store_bytes: 8,
            full_line_store: true,
            flops: 0,
        },
        Update => Volume {
            load_bytes: 8,
            store_bytes: 8,
            full_line_store: true,
            flops: 1,
        },
        Add => Volume {
            load_bytes: 16,
            store_bytes: 8,
            full_line_store: true,
            flops: 1,
        },
        StreamTriad => Volume {
            load_bytes: 16,
            store_bytes: 8,
            full_line_store: true,
            flops: 2,
        },
        SchoenauerTriad => Volume {
            load_bytes: 24,
            store_bytes: 8,
            full_line_store: true,
            flops: 2,
        },
        Sum => Volume {
            load_bytes: 8,
            store_bytes: 0,
            full_line_store: false,
            flops: 1,
        },
        Pi => Volume {
            load_bytes: 0,
            store_bytes: 0,
            full_line_store: false,
            flops: 5,
        },
        // One sweep touches 3 distinct rows; with layer reuse the effective
        // traffic per update is one load + one store stream.
        GaussSeidel2D => Volume {
            load_bytes: 24,
            store_bytes: 8,
            full_line_store: true,
            flops: 4,
        },
        Jacobi2D5 => Volume {
            load_bytes: 32,
            store_bytes: 8,
            full_line_store: true,
            flops: 4,
        },
        Jacobi3D7 => Volume {
            load_bytes: 56,
            store_bytes: 8,
            full_line_store: true,
            flops: 7,
        },
        Jacobi3D11 => Volume {
            load_bytes: 88,
            store_bytes: 8,
            full_line_store: true,
            flops: 11,
        },
        Jacobi3D27 => Volume {
            load_bytes: 216,
            store_bytes: 8,
            full_line_store: true,
            flops: 27,
        },
    }
}

/// One block of a volume corpus: a generator variant plus a replica
/// index. Replica 0 is the standard corpus block; higher replicas wrap
/// around the variant grid with a distinguishing comment in the emitted
/// assembly, so every block has distinct text (a streaming pipeline over
/// a volume corpus parses every block, it cannot coast on the in-memory
/// kernel cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VolumeBlock {
    pub variant: Variant,
    pub replica: u32,
}

impl VolumeBlock {
    /// Kernel label for reports: the plain corpus name at replica 0
    /// (byte-compatible with the fixed grid), suffixed `#r<n>` beyond.
    pub fn kernel_label(&self) -> String {
        if self.replica == 0 {
            self.variant.kernel.name().to_string()
        } else {
            format!("{}#r{}", self.variant.kernel.name(), self.replica)
        }
    }

    /// Emit the block's assembly: the variant's generated text, with a
    /// replica-tag comment line appended for replicas past the first.
    /// The tag is a *trailing* comment in the machine's dialect — the
    /// parse is unaffected (even instruction line numbers, which a leading
    /// comment would shift); only the text, and thus every content hash,
    /// differs.
    pub fn generate(&self, machine: &Machine) -> String {
        let mut asm = crate::generate(&self.variant, machine);
        if self.replica > 0 {
            let comment = match machine.isa {
                isa::Isa::X86 => "#",
                isa::Isa::AArch64 => "//",
            };
            asm.push_str(&format!("{comment} volume replica {}\n", self.replica));
        }
        asm
    }
}

/// The first `total` blocks of the volume corpus for one architecture:
/// the variant grid cycled in [`variants_for`] order, bumping the replica
/// index each full pass. `total` ≤ the grid size reproduces a prefix of
/// the standard corpus exactly.
pub fn volume_blocks(arch: Arch, total: usize) -> Vec<VolumeBlock> {
    let variants = variants_for(arch);
    (0..total)
        .map(|i| VolumeBlock {
            variant: variants[i % variants.len()],
            replica: (i / variants.len()) as u32,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StreamKernel;

    #[test]
    fn stream_triad_matches_mccalpin() {
        let v = volume(StreamKernel::StreamTriad);
        assert_eq!(v.load_bytes, 16);
        assert_eq!(v.store_bytes, 8);
        assert_eq!(v.flops, 2);
        // With full WA the triad moves 32 B per iteration.
        assert_eq!(v.traffic_bytes(2.0), 32.0);
        assert_eq!(v.traffic_bytes(1.0), 24.0);
    }

    #[test]
    fn intensity_ordering() {
        // π is compute-only; INIT is pure bandwidth.
        assert!(volume(StreamKernel::Pi).intensity(2.0).is_infinite());
        assert_eq!(volume(StreamKernel::Init).intensity(1.0), 0.0);
        let add = volume(StreamKernel::Add).intensity(1.0);
        let j27 = volume(StreamKernel::Jacobi3D27).intensity(1.0);
        assert!(j27 > add, "stencils have higher intensity than ADD");
    }

    #[test]
    fn all_kernels_have_volumes() {
        for k in StreamKernel::ALL {
            let v = volume(k);
            assert!(v.load_bytes + v.store_bytes + v.flops > 0, "{}", k.name());
        }
    }

    #[test]
    fn volume_corpus_prefix_matches_the_standard_grid() {
        let arch = Arch::GoldenCove;
        let grid = variants_for(arch);
        let blocks = volume_blocks(arch, grid.len() + 3);
        assert_eq!(blocks.len(), grid.len() + 3);
        let machine = Machine::golden_cove();
        for (b, v) in blocks.iter().zip(&grid) {
            assert_eq!(b.variant, *v);
            assert_eq!(b.replica, 0);
            assert_eq!(b.kernel_label(), v.kernel.name());
            assert_eq!(b.generate(&machine), crate::generate(v, &machine));
        }
        // Past one full pass the grid wraps with replica 1.
        let wrapped = &blocks[grid.len()];
        assert_eq!(wrapped.variant, grid[0]);
        assert_eq!(wrapped.replica, 1);
        assert!(wrapped.kernel_label().ends_with("#r1"));
    }

    #[test]
    fn replica_tag_changes_text_not_parse() {
        for (arch, mk) in [
            (Arch::GoldenCove, Machine::golden_cove as fn() -> Machine),
            (Arch::NeoverseV2, Machine::neoverse_v2 as fn() -> Machine),
        ] {
            let machine = mk();
            let grid_len = variants_for(arch).len();
            let blocks = volume_blocks(arch, grid_len + 1);
            let (base, replica) = (&blocks[0], &blocks[grid_len]);
            let (a, b) = (base.generate(&machine), replica.generate(&machine));
            assert_ne!(a, b, "replica text must be distinct (distinct hash)");
            let ka = isa::parse_kernel(&a, machine.isa).unwrap();
            let kb = isa::parse_kernel(&b, machine.isa).unwrap();
            assert_eq!(ka, kb, "the tag is a comment; the kernel is identical");
        }
    }
}
