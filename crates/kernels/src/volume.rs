//! Per-kernel data volumes and flop counts (per scalar loop iteration),
//! used by the ECM/Roofline models and the bandwidth benchmarks.

use crate::StreamKernel;

/// Data traffic and work of one scalar iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Volume {
    /// Bytes loaded from the arrays (without cache reuse).
    pub load_bytes: u32,
    /// Bytes stored.
    pub store_bytes: u32,
    /// Whether the stored lines are fully overwritten (write-allocate
    /// applies unless evaded).
    pub full_line_store: bool,
    /// Floating-point operations (FMA = 2).
    pub flops: u32,
}

impl Volume {
    /// Memory traffic per iteration assuming write-allocate with factor
    /// `wa` (1.0 = evaded, 2.0 = full WA on the store stream).
    pub fn traffic_bytes(&self, wa: f64) -> f64 {
        self.load_bytes as f64 + self.store_bytes as f64 * wa
    }

    /// Arithmetic intensity in flop/byte at a given WA factor.
    pub fn intensity(&self, wa: f64) -> f64 {
        if self.traffic_bytes(wa) == 0.0 {
            f64::INFINITY
        } else {
            self.flops as f64 / self.traffic_bytes(wa)
        }
    }
}

/// The volume table for the 13 kernels.
pub fn volume(kernel: StreamKernel) -> Volume {
    use StreamKernel::*;
    match kernel {
        Init => Volume {
            load_bytes: 0,
            store_bytes: 8,
            full_line_store: true,
            flops: 0,
        },
        Copy => Volume {
            load_bytes: 8,
            store_bytes: 8,
            full_line_store: true,
            flops: 0,
        },
        Update => Volume {
            load_bytes: 8,
            store_bytes: 8,
            full_line_store: true,
            flops: 1,
        },
        Add => Volume {
            load_bytes: 16,
            store_bytes: 8,
            full_line_store: true,
            flops: 1,
        },
        StreamTriad => Volume {
            load_bytes: 16,
            store_bytes: 8,
            full_line_store: true,
            flops: 2,
        },
        SchoenauerTriad => Volume {
            load_bytes: 24,
            store_bytes: 8,
            full_line_store: true,
            flops: 2,
        },
        Sum => Volume {
            load_bytes: 8,
            store_bytes: 0,
            full_line_store: false,
            flops: 1,
        },
        Pi => Volume {
            load_bytes: 0,
            store_bytes: 0,
            full_line_store: false,
            flops: 5,
        },
        // One sweep touches 3 distinct rows; with layer reuse the effective
        // traffic per update is one load + one store stream.
        GaussSeidel2D => Volume {
            load_bytes: 24,
            store_bytes: 8,
            full_line_store: true,
            flops: 4,
        },
        Jacobi2D5 => Volume {
            load_bytes: 32,
            store_bytes: 8,
            full_line_store: true,
            flops: 4,
        },
        Jacobi3D7 => Volume {
            load_bytes: 56,
            store_bytes: 8,
            full_line_store: true,
            flops: 7,
        },
        Jacobi3D11 => Volume {
            load_bytes: 88,
            store_bytes: 8,
            full_line_store: true,
            flops: 11,
        },
        Jacobi3D27 => Volume {
            load_bytes: 216,
            store_bytes: 8,
            full_line_store: true,
            flops: 27,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StreamKernel;

    #[test]
    fn stream_triad_matches_mccalpin() {
        let v = volume(StreamKernel::StreamTriad);
        assert_eq!(v.load_bytes, 16);
        assert_eq!(v.store_bytes, 8);
        assert_eq!(v.flops, 2);
        // With full WA the triad moves 32 B per iteration.
        assert_eq!(v.traffic_bytes(2.0), 32.0);
        assert_eq!(v.traffic_bytes(1.0), 24.0);
    }

    #[test]
    fn intensity_ordering() {
        // π is compute-only; INIT is pure bandwidth.
        assert!(volume(StreamKernel::Pi).intensity(2.0).is_infinite());
        assert_eq!(volume(StreamKernel::Init).intensity(1.0), 0.0);
        let add = volume(StreamKernel::Add).intensity(1.0);
        let j27 = volume(StreamKernel::Jacobi3D27).intensity(1.0);
        assert!(j27 > add, "stencils have higher intensity than ADD");
    }

    #[test]
    fn all_kernels_have_volumes() {
        for k in StreamKernel::ALL {
            let v = volume(k);
            assert!(v.load_bytes + v.store_bytes + v.flops > 0, "{}", k.name());
        }
    }
}
