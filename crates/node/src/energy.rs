//! Power-efficiency comparison derived from Table I: TDP against achieved
//! performance and bandwidth. The paper's introduction frames the Grace
//! Superchip as an efficiency play (250 W for 72 cores vs. 350/400 W for
//! the x86 parts); this module quantifies that.

use serde::Serialize;
use uarch::Machine;

/// Efficiency metrics of one chip at full load.
#[derive(Debug, Clone, Serialize)]
pub struct Efficiency {
    pub chip: &'static str,
    pub tdp_w: f64,
    /// Achieved DP Gflop/s per watt (FMA-saturating code at sustained
    /// frequency).
    pub gflops_per_w: f64,
    /// Sustained memory bandwidth per watt, GB/s per W.
    pub gbs_per_w: f64,
    /// Watts per core at TDP.
    pub w_per_core: f64,
}

/// Compute the efficiency row for one machine.
pub fn efficiency(machine: &Machine) -> Efficiency {
    let peak_gflops = crate::peak::achieved_peak_dp_tflops(machine) * 1000.0;
    let bw = memhier::bandwidth::sustained_bandwidth_gbs(machine, machine.cores);
    Efficiency {
        chip: machine.arch.chip(),
        tdp_w: machine.tdp_w,
        gflops_per_w: peak_gflops / machine.tdp_w,
        gbs_per_w: bw / machine.tdp_w,
        w_per_core: machine.tdp_w / machine.cores as f64,
    }
}

/// Energy per double-precision flop in picojoule at full sustained load
/// (TDP / achieved flops).
pub fn pj_per_flop(machine: &Machine) -> f64 {
    let flops_per_s = crate::peak::achieved_peak_dp_tflops(machine) * 1e12;
    machine.tdp_w / flops_per_s * 1e12
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch::Machine;

    #[test]
    fn grace_leads_bandwidth_per_watt() {
        // 467 GB/s at 250 W dwarfs the DDR5 x86 parts per watt.
        let gcs = efficiency(&Machine::neoverse_v2());
        let spr = efficiency(&Machine::golden_cove());
        let genoa = efficiency(&Machine::zen4());
        assert!(
            gcs.gbs_per_w > 2.0 * spr.gbs_per_w,
            "gcs {} spr {}",
            gcs.gbs_per_w,
            spr.gbs_per_w
        );
        assert!(gcs.gbs_per_w > genoa.gbs_per_w);
    }

    #[test]
    fn grace_and_genoa_lead_flops_per_watt() {
        let gcs = efficiency(&Machine::neoverse_v2());
        let spr = efficiency(&Machine::golden_cove());
        assert!(gcs.gflops_per_w > spr.gflops_per_w);
        // SPR's AVX-512 frequency drop costs it the efficiency crown too.
        assert!(spr.gflops_per_w < 12.0, "{}", spr.gflops_per_w);
    }

    #[test]
    fn per_core_power_ordering() {
        // GCS: 250/72 ≈ 3.5 W; SPR: 350/52 ≈ 6.7 W; Genoa: 400/96 ≈ 4.2 W.
        let gcs = efficiency(&Machine::neoverse_v2());
        let spr = efficiency(&Machine::golden_cove());
        let genoa = efficiency(&Machine::zen4());
        assert!(gcs.w_per_core < genoa.w_per_core);
        assert!(genoa.w_per_core < spr.w_per_core);
        assert!((gcs.w_per_core - 3.47).abs() < 0.05);
    }

    #[test]
    fn energy_per_flop_is_tens_of_picojoules() {
        for m in uarch::all_machines() {
            let pj = pj_per_flop(&m);
            assert!(pj > 20.0 && pj < 120.0, "{}: {pj} pJ/flop", m.arch.label());
        }
    }
}
