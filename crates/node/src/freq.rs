//! Sustained-clock-frequency model (Fig. 2).
//!
//! The observed behaviour is driven by two policies:
//!
//! * **licence limits** — the single-core maximum depends on the ISA
//!   extension (Golden Cove clocks AVX-512-heavy code lower from the first
//!   core on);
//! * **package-power throttling** — past a per-ISA core count `n₀` the
//!   package redistributes a fixed power budget, and since dynamic power
//!   scales ≈ `f³` at constant workload, frequency follows
//!   `f(n) = f₁ · (n₀/n)^⅓` until it hits the sustained floor.
//!
//! Grace runs at a fixed 3.4 GHz regardless of core count or ISA — the
//! paper could not even override it — so its curve is flat.

use isa::IsaExt;
use uarch::{Arch, Machine};

/// Frequency-policy parameters for one (machine, ISA-class) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreqPolicy {
    /// Single-core (turbo/licence) frequency in GHz.
    pub f1_ghz: f64,
    /// Sustained all-core floor in GHz.
    pub floor_ghz: f64,
    /// Core count at which power throttling starts.
    pub onset_cores: u32,
}

/// The policy for a machine and the ISA extension its hot code uses.
pub fn policy(machine: &Machine, ext: IsaExt) -> FreqPolicy {
    match machine.arch {
        // Fixed frequency: no licence classes, no observable throttling.
        Arch::NeoverseV2 => FreqPolicy {
            f1_ghz: 3.4,
            floor_ghz: 3.4,
            onset_cores: u32::MAX,
        },
        Arch::GoldenCove => match ext {
            // AVX-512 behaves differently "right from the start" and falls
            // to 2.0 GHz (53 % of turbo) across the chip.
            IsaExt::Avx512 => FreqPolicy {
                f1_ghz: 3.3,
                floor_ghz: 2.0,
                onset_cores: 2,
            },
            // SSE/AVX-heavy code sustains 3.0 GHz (78 % of turbo).
            _ => FreqPolicy {
                f1_ghz: 3.8,
                floor_ghz: 3.0,
                onset_cores: 4,
            },
        },
        // Genoa throttles identically for every ISA extension, to 3.1 GHz
        // (84 % of its 3.7 GHz turbo).
        Arch::Zen4 => FreqPolicy {
            f1_ghz: 3.7,
            floor_ghz: 3.1,
            onset_cores: 8,
        },
    }
}

/// Sustained frequency for arithmetic-heavy code at `active_cores`.
pub fn sustained_freq_ghz(machine: &Machine, ext: IsaExt, active_cores: u32) -> f64 {
    let p = policy(machine, ext);
    let n = active_cores.clamp(1, machine.cores) as f64;
    if p.onset_cores == u32::MAX || n <= p.onset_cores as f64 {
        return p.f1_ghz;
    }
    let f = p.f1_ghz * (p.onset_cores as f64 / n).cbrt();
    f.max(p.floor_ghz)
}

/// ISA classes shown in Fig. 2 for a machine.
pub fn fig2_exts(machine: &Machine) -> Vec<IsaExt> {
    match machine.arch {
        Arch::NeoverseV2 => vec![IsaExt::Neon],
        _ => vec![IsaExt::Sse, IsaExt::Avx, IsaExt::Avx512],
    }
}

/// One Fig. 2 series: `(ext, [(cores, GHz)])` for each ISA class.
pub fn fig2_sweep(machine: &Machine) -> Vec<(IsaExt, Vec<(u32, f64)>)> {
    fig2_exts(machine)
        .into_iter()
        .map(|ext| {
            let series = (1..=machine.cores)
                .map(|n| (n, sustained_freq_ghz(machine, ext, n)))
                .collect();
            (ext, series)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch::Machine;

    #[test]
    fn grace_is_flat_at_base() {
        let m = Machine::neoverse_v2();
        for n in [1, 18, 36, 72] {
            assert_eq!(sustained_freq_ghz(&m, IsaExt::Neon, n), 3.4);
            assert_eq!(sustained_freq_ghz(&m, IsaExt::Sve, n), 3.4);
            assert_eq!(sustained_freq_ghz(&m, IsaExt::Scalar, n), 3.4);
        }
    }

    #[test]
    fn spr_avx512_throttles_to_2ghz() {
        let m = Machine::golden_cove();
        // Different from the start: below the SSE turbo even at one core.
        assert!(sustained_freq_ghz(&m, IsaExt::Avx512, 1) < sustained_freq_ghz(&m, IsaExt::Sse, 1));
        // Falls to the 2.0 GHz floor across the chip (53 % of turbo).
        let full = sustained_freq_ghz(&m, IsaExt::Avx512, m.cores);
        assert_eq!(full, 2.0);
        assert!((full / 3.8 - 0.53).abs() < 0.02);
    }

    #[test]
    fn spr_sse_avx_sustain_3ghz() {
        let m = Machine::golden_cove();
        for ext in [IsaExt::Sse, IsaExt::Avx] {
            let full = sustained_freq_ghz(&m, ext, m.cores);
            assert_eq!(full, 3.0);
            assert!((full / 3.8 - 0.78).abs() < 0.02);
        }
    }

    #[test]
    fn genoa_throttles_to_3_1_for_all_isa() {
        let m = Machine::zen4();
        for ext in [IsaExt::Sse, IsaExt::Avx, IsaExt::Avx512, IsaExt::Scalar] {
            assert_eq!(sustained_freq_ghz(&m, ext, 1), 3.7);
            let full = sustained_freq_ghz(&m, ext, m.cores);
            assert_eq!(full, 3.1);
            assert!((full / 3.7 - 0.84).abs() < 0.01);
        }
    }

    #[test]
    fn frequency_monotonically_nonincreasing() {
        for m in uarch::all_machines() {
            for ext in fig2_exts(&m) {
                let mut prev = f64::INFINITY;
                for n in 1..=m.cores {
                    let f = sustained_freq_ghz(&m, ext, n);
                    assert!(f <= prev + 1e-12);
                    prev = f;
                }
            }
        }
    }

    #[test]
    fn spr_is_1_7x_slower_than_gcs_for_avx512_at_scale() {
        // Paper: "1.7× higher sustained clock frequency" for GCS vs. SPR
        // with AVX-512-heavy highly parallel code.
        let gcs = Machine::neoverse_v2();
        let spr = Machine::golden_cove();
        let ratio = sustained_freq_ghz(&gcs, IsaExt::Neon, gcs.cores)
            / sustained_freq_ghz(&spr, IsaExt::Avx512, spr.cores);
        assert!((ratio - 1.7).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn sweep_shape() {
        let m = Machine::golden_cove();
        let sweep = fig2_sweep(&m);
        assert_eq!(sweep.len(), 3);
        for (_, series) in &sweep {
            assert_eq!(series.len(), m.cores as usize);
        }
    }
}
