//! Roofline model with the in-core model as the horizontal ceiling.

use uarch::Machine;

/// A Roofline evaluation for one kernel on one machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Arithmetic intensity, flop/byte.
    pub intensity: f64,
    /// Compute ceiling in Gflop/s (chip-level, at sustained frequency).
    pub p_peak_gflops: f64,
    /// Memory ceiling in Gflop/s at this intensity.
    pub p_mem_gflops: f64,
    /// The Roofline prediction `min(P_peak, I·b_s)`.
    pub p_gflops: f64,
    /// Whether the kernel is memory-bound at this intensity.
    pub memory_bound: bool,
}

/// Classic chip-level Roofline: `P = min(P_peak, I · b_s)` with the
/// achievable (frequency-throttled) peak as the horizontal ceiling and the
/// measured sustainable bandwidth as the diagonal.
pub fn roofline_gflops(machine: &Machine, intensity_flop_per_byte: f64) -> Roofline {
    let p_peak = crate::peak::achieved_peak_dp_tflops(machine) * 1000.0;
    let bw = memhier::bandwidth::sustained_bandwidth_gbs(machine, machine.cores);
    let p_mem = intensity_flop_per_byte * bw;
    let p = p_peak.min(p_mem);
    Roofline {
        intensity: intensity_flop_per_byte,
        p_peak_gflops: p_peak,
        p_mem_gflops: p_mem,
        p_gflops: p,
        memory_bound: p_mem < p_peak,
    }
}

/// In-core Roofline ceiling for a specific kernel: the analyzer's cycles
/// per iteration converted to Gflop/s at the sustained frequency — a "more
/// realistic horizontal ceiling" as the paper puts it.
pub fn incore_ceiling_gflops(
    machine: &Machine,
    analysis: &incore::Analysis,
    flops_per_loop_iter: f64,
    ext: isa::IsaExt,
    cores: u32,
) -> f64 {
    let f = crate::freq::sustained_freq_ghz(machine, ext, cores);
    let per_core = flops_per_loop_iter / analysis.prediction.max(1e-12) * f;
    per_core * cores as f64
}

/// Machine balance in flop/byte: the knee of the roofline.
pub fn machine_balance(machine: &Machine) -> f64 {
    let p_peak = crate::peak::achieved_peak_dp_tflops(machine) * 1000.0;
    let bw = memhier::bandwidth::sustained_bandwidth_gbs(machine, machine.cores);
    p_peak / bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch::Machine;

    #[test]
    fn low_intensity_is_memory_bound() {
        let m = Machine::golden_cove();
        // STREAM triad at full WA: 2 flops / 32 B = 0.0625 flop/B.
        let r = roofline_gflops(&m, 0.0625);
        assert!(r.memory_bound);
        assert!(r.p_gflops < 40.0, "p = {}", r.p_gflops);
    }

    #[test]
    fn high_intensity_is_compute_bound() {
        for m in uarch::all_machines() {
            let r = roofline_gflops(&m, 100.0);
            assert!(!r.memory_bound, "{}", m.arch.label());
            assert!((r.p_gflops - r.p_peak_gflops).abs() < 1e-9);
        }
    }

    #[test]
    fn balance_ordering() {
        // Genoa has the highest peak and middling bandwidth → highest
        // machine balance; Grace has huge bandwidth → lowest.
        let gcs = machine_balance(&Machine::neoverse_v2());
        let genoa = machine_balance(&Machine::zen4());
        assert!(genoa > gcs, "genoa={genoa} gcs={gcs}");
    }

    #[test]
    fn incore_ceiling_scales_with_cores() {
        let m = Machine::neoverse_v2();
        let k = isa::parse_kernel(
            ".L1:\n fmla v0.2d, v1.2d, v2.2d\n fmla v3.2d, v1.2d, v2.2d\n subs x5, x5, #1\n b.ne .L1\n",
            isa::Isa::AArch64,
        )
        .unwrap();
        let a = incore::analyze(&m, &k);
        let one = incore_ceiling_gflops(&m, &a, 8.0, isa::IsaExt::Neon, 1);
        let all = incore_ceiling_gflops(&m, &a, 8.0, isa::IsaExt::Neon, 72);
        assert!((all / one - 72.0).abs() < 1e-6);
    }
}
