//! Execution-Cache-Memory (ECM) model composition — the paper's stated
//! future work, built from the in-core model plus per-level transfer
//! times.
//!
//! For one cache line's worth of iterations (8 DP elements) the model
//! composes `T_core` (from the in-core analyzer) with the data-transfer
//! times `T_L1L2`, `T_L2L3`, `T_L3Mem`. We use the classic non-overlapping
//! transfer composition for the x86 machines and fully-overlapping
//! transfers for Neoverse V2 (whose load/store pipes overlap transfers
//! well), following the single-core machine models of Hofmann et al.

use incore::Analysis;
use kernels::volume::Volume;
use rayon::prelude::*;
use serde::Serialize;
use uarch::{Arch, Machine};

/// Per-level inter-cache bandwidths in bytes per cycle.
#[derive(Debug, Clone, Copy)]
pub struct LevelBw {
    pub l1_l2: f64,
    pub l2_l3: f64,
    /// L3 ↔ memory, bytes/cycle at the base frequency (derived from the
    /// sustained single-core memory bandwidth).
    pub l3_mem: f64,
}

/// Transfer-bandwidth parameters per machine.
pub fn level_bw(machine: &Machine) -> LevelBw {
    // ECM charges the memory transfer at the full memory-interface rate;
    // the single core's concurrency limit shows up as T_core overlap, and
    // multicore saturation falls out of n_sat = ⌈T_ECM / T_L3Mem⌉.
    let mem_bc = machine.memory.measured_bw_gbs() / machine.base_freq_ghz;
    match machine.arch {
        Arch::GoldenCove => LevelBw {
            l1_l2: 64.0,
            l2_l3: 32.0,
            l3_mem: mem_bc,
        },
        Arch::Zen4 => LevelBw {
            l1_l2: 32.0,
            l2_l3: 32.0,
            l3_mem: mem_bc,
        },
        Arch::NeoverseV2 => LevelBw {
            l1_l2: 32.0,
            l2_l3: 16.0,
            l3_mem: mem_bc,
        },
    }
}

/// ECM prediction for one cache line of work (8 DP iterations).
#[derive(Debug, Clone)]
pub struct Ecm {
    /// In-core execution time (cycles per cache line of iterations).
    pub t_core: f64,
    /// Data transfer contributions per level boundary, cycles/CL-of-work.
    pub t_l1_l2: f64,
    pub t_l2_l3: f64,
    pub t_l3_mem: f64,
    /// Whether transfers overlap with core execution (Neoverse V2).
    pub overlapping: bool,
    /// Predicted cycles per cache line of iterations with data in memory.
    pub t_mem: f64,
    /// Predicted cycles with data in each level: [L1, L2, L3, Mem].
    pub per_level: [f64; 4],
}

impl Ecm {
    /// Number of cores needed to saturate memory bandwidth with this
    /// kernel (ECM multicore scaling: performance scales linearly until
    /// `n_sat = ⌈T_mem-total / T_L3Mem⌉`).
    pub fn saturation_cores(&self) -> u32 {
        if self.t_l3_mem <= 0.0 {
            return 1;
        }
        (self.t_mem / self.t_l3_mem).ceil() as u32
    }
}

/// Compose the ECM model for a kernel given its in-core analysis, the
/// per-iteration data volume, and the number of scalar iterations one
/// assembly-loop iteration covers.
pub fn ecm(
    machine: &Machine,
    analysis: &Analysis,
    vol: &Volume,
    scalar_iters_per_loop: f64,
    wa_factor: f64,
) -> Ecm {
    const DP_PER_CL: f64 = 8.0;
    let bw = level_bw(machine);
    // In-core cycles per cache line of (8) scalar iterations.
    let t_core = analysis.prediction * DP_PER_CL / scalar_iters_per_loop.max(1e-12);
    // Bytes crossing each boundary per 8 scalar iterations; streaming
    // kernels move their full load/store volume through every level.
    let bytes = (vol.load_bytes as f64 + vol.store_bytes as f64 * wa_factor) * DP_PER_CL;
    let t_l1_l2 = bytes / bw.l1_l2;
    let t_l2_l3 = bytes / bw.l2_l3;
    let t_l3_mem = bytes / bw.l3_mem;
    let overlapping = machine.arch == Arch::NeoverseV2;
    // Overlapping machines hide transfers behind core execution.
    let level_time = |transfers: &[f64]| -> f64 {
        let t_data: f64 = transfers.iter().sum();
        t_core.max(t_data)
    };
    // Non-overlapping machines: T = T_core (L1) and T_core + ΣT_data for
    // deeper levels, the standard x86 ECM composition.
    let per_level = if overlapping {
        [
            t_core,
            level_time(&[t_l1_l2]),
            level_time(&[t_l1_l2, t_l2_l3]),
            level_time(&[t_l1_l2, t_l2_l3, t_l3_mem]),
        ]
    } else {
        [
            t_core,
            t_core + t_l1_l2,
            t_core + t_l1_l2 + t_l2_l3,
            t_core + t_l1_l2 + t_l2_l3 + t_l3_mem,
        ]
    };
    Ecm {
        t_core,
        t_l1_l2,
        t_l2_l3,
        t_l3_mem,
        overlapping,
        t_mem: per_level[3],
        per_level,
    }
}

/// Convenience: analyze a generated kernel variant and compose its ECM.
pub fn ecm_for_kernel(machine: &Machine, variant: &kernels::Variant, wa_factor: f64) -> Ecm {
    let k = kernels::generate_kernel(variant, machine);
    let a = incore::analyze(machine, &k);
    let cfg = kernels::gen_cfg(variant, machine);
    let elems_per_op = if cfg.width == 0 {
        1.0
    } else {
        cfg.width as f64 / 64.0
    };
    let scalar_iters = elems_per_op * cfg.unroll.max(1) as f64;
    let vol = kernels::volume::volume(variant.kernel);
    ecm(machine, &a, &vol, scalar_iters, wa_factor)
}

/// One row of the ECM summary table: STREAM triad with each machine's
/// default compiler and its paper write-allocate factor (1.0 on Neoverse
/// V2 — automatic claim — else 2.0).
#[derive(Debug, Clone, Serialize)]
pub struct EcmRow {
    pub chip: &'static str,
    pub t_core: f64,
    pub t_l1_l2: f64,
    pub t_l2_l3: f64,
    pub t_l3_mem: f64,
    pub t_mem: f64,
    pub n_sat: u32,
}

/// The ECM sweep behind `repro ecm`, fanned out on the rayon pool. The
/// map is order-preserving, so rows — and any JSON rendered from them —
/// are byte-identical at every thread count.
pub fn triad_ecm_rows(machines: &[Machine]) -> Vec<EcmRow> {
    machines
        .par_iter()
        .map(|m| {
            let compiler = kernels::Compiler::for_arch(m.arch)[0];
            let v = kernels::Variant {
                kernel: kernels::StreamKernel::StreamTriad,
                compiler,
                opt: kernels::OptLevel::O3,
                arch: m.arch,
            };
            let wa = if m.arch == Arch::NeoverseV2 { 1.0 } else { 2.0 };
            let e = ecm_for_kernel(m, &v, wa);
            EcmRow {
                chip: m.arch.chip(),
                t_core: e.t_core,
                t_l1_l2: e.t_l1_l2,
                t_l2_l3: e.t_l2_l3,
                t_l3_mem: e.t_l3_mem,
                t_mem: e.t_mem,
                n_sat: e.saturation_cores(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::{Compiler, OptLevel, StreamKernel, Variant};
    use uarch::Machine;

    fn triad_ecm(m: &Machine, compiler: Compiler) -> Ecm {
        let v = Variant {
            kernel: StreamKernel::StreamTriad,
            compiler,
            opt: OptLevel::O3,
            arch: m.arch,
        };
        ecm_for_kernel(m, &v, 2.0)
    }

    #[test]
    fn memory_level_slower_than_l1() {
        for m in uarch::all_machines() {
            let c = Compiler::for_arch(m.arch)[0];
            let e = triad_ecm(&m, c);
            assert!(e.per_level[0] <= e.per_level[1]);
            assert!(e.per_level[1] <= e.per_level[2]);
            assert!(e.per_level[2] <= e.per_level[3]);
            assert!(e.t_mem > e.t_core, "{}", m.arch.label());
        }
    }

    #[test]
    fn saturation_cores_reasonable() {
        let m = Machine::golden_cove();
        let e = triad_ecm(&m, Compiler::Gcc);
        let n = e.saturation_cores();
        // Streaming triad saturates a ccNUMA domain with a handful of cores.
        assert!((2..=26).contains(&n), "n_sat = {n}");
    }

    #[test]
    fn wa_evasion_reduces_memory_time() {
        let m = Machine::zen4();
        let v = Variant {
            kernel: StreamKernel::StreamTriad,
            compiler: Compiler::Gcc,
            opt: OptLevel::O3,
            arch: m.arch,
        };
        let full = ecm_for_kernel(&m, &v, 2.0);
        let evaded = ecm_for_kernel(&m, &v, 1.0);
        assert!(evaded.t_mem < full.t_mem);
        assert!(evaded.t_l3_mem < full.t_l3_mem);
    }

    #[test]
    fn parallel_rows_match_serial_bitwise() {
        let machines = uarch::all_machines();
        let par = triad_ecm_rows(&machines);
        let serial: Vec<EcmRow> = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("pool builds")
            .install(|| triad_ecm_rows(&machines));
        assert_eq!(par.len(), serial.len());
        for (p, s) in par.iter().zip(&serial) {
            assert_eq!(p.chip, s.chip);
            assert_eq!(p.t_mem.to_bits(), s.t_mem.to_bits());
            assert_eq!(p.t_core.to_bits(), s.t_core.to_bits());
            assert_eq!(p.n_sat, s.n_sat);
        }
    }

    #[test]
    fn grace_overlaps_transfers() {
        let m = Machine::neoverse_v2();
        let e = triad_ecm(&m, Compiler::Gcc);
        assert!(e.overlapping);
        // Overlap means the L2 level can hide fully behind the core time
        // or the transfer time, never their sum.
        assert!(e.per_level[1] <= e.t_core + e.t_l1_l2);
    }
}
