//! Theoretical and achievable DP peak performance (Table I).

use crate::freq::sustained_freq_ghz;
use isa::IsaExt;
use serde::Serialize;
use uarch::{Arch, Machine};

/// Achievable DP peak of the full chip in Tflop/s: every core running
/// FMA-saturating code at the *sustained* (throttled) frequency for the
/// machine's widest vector extension. Only the FMA pipes count — the peak
/// benchmark cannot co-issue the Zen 4 FADD pipes with useful FMA work at
/// peak register pressure, matching the paper's "achievable" row being
/// FMA-only.
pub fn achieved_peak_dp_tflops(machine: &Machine) -> f64 {
    let ext = match machine.arch {
        Arch::NeoverseV2 => IsaExt::Neon,
        Arch::GoldenCove => IsaExt::Avx512,
        Arch::Zen4 => IsaExt::Avx512,
    };
    let f = sustained_freq_ghz(machine, ext, machine.cores);
    machine.cores as f64 * f * machine.fma_dp_flops_per_cycle as f64 / 1000.0
}

/// One row of the paper's Table I.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    pub chip: &'static str,
    pub part: &'static str,
    pub cores: u32,
    pub freq_max_ghz: f64,
    pub freq_base_ghz: f64,
    pub theor_peak_tflops: f64,
    pub achieved_peak_tflops: f64,
    pub tdp_w: f64,
    pub l1_kib: u64,
    pub l2_kib: u64,
    pub l3_mib: u64,
    pub mem_gb: u32,
    pub mem_type: &'static str,
    pub numa_domains: u32,
    pub theor_bw_gbs: f64,
    pub measured_bw_gbs: f64,
}

/// Compute the Table I row for a machine (bandwidth from the saturation
/// model in `memhier`).
pub fn table1_row(machine: &Machine) -> Table1Row {
    Table1Row {
        chip: machine.arch.chip(),
        part: machine.part,
        cores: machine.cores,
        freq_max_ghz: machine.max_freq_ghz,
        freq_base_ghz: machine.base_freq_ghz,
        theor_peak_tflops: machine.theor_peak_dp_tflops(),
        achieved_peak_tflops: achieved_peak_dp_tflops(machine),
        tdp_w: machine.tdp_w,
        l1_kib: machine.caches[0].size_kib,
        l2_kib: machine.caches[1].size_kib,
        l3_mib: machine.caches[2].size_kib / 1024,
        mem_gb: machine.memory.size_gb,
        mem_type: machine.memory.mem_type,
        numa_domains: machine.numa_domains,
        theor_bw_gbs: machine.memory.theor_bw_gbs,
        measured_bw_gbs: memhier::bandwidth::sustained_bandwidth_gbs(machine, machine.cores),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch::Machine;

    #[test]
    fn achieved_peak_shape_matches_table1() {
        // Paper: 3.82 / 3.49 / 5.1 Tflop/s. Our sustained-frequency model
        // reproduces the ordering and rough magnitudes.
        let gcs = achieved_peak_dp_tflops(&Machine::neoverse_v2());
        let spr = achieved_peak_dp_tflops(&Machine::golden_cove());
        let genoa = achieved_peak_dp_tflops(&Machine::zen4());
        assert!(
            genoa > gcs && gcs > spr,
            "genoa={genoa} gcs={gcs} spr={spr}"
        );
        assert!((gcs - 3.92).abs() < 0.15, "gcs={gcs}");
        assert!((spr - 3.49).abs() < 0.35, "spr={spr}");
        assert!((genoa - 5.1).abs() < 0.45, "genoa={genoa}");
    }

    #[test]
    fn achieved_never_exceeds_theoretical() {
        for m in uarch::all_machines() {
            assert!(achieved_peak_dp_tflops(&m) <= m.theor_peak_dp_tflops() + 1e-9);
        }
    }

    #[test]
    fn table1_rows_complete() {
        let row = table1_row(&Machine::golden_cove());
        assert_eq!(row.chip, "SPR");
        assert_eq!(row.cores, 52);
        assert_eq!(row.numa_domains, 4);
        assert_eq!(row.l3_mib, 105);
        assert!((row.measured_bw_gbs - 273.0).abs() < 10.0);
    }

    #[test]
    fn spr_theoretical_beats_achieved_by_large_margin() {
        // The AVX-512 frequency drop costs SPR ~45 % of its paper peak.
        let m = Machine::golden_cove();
        let row = table1_row(&m);
        assert!(row.achieved_peak_tflops / row.theor_peak_tflops < 0.60);
    }
}
