//! Node-level performance models layered on top of the in-core model:
//!
//! * [`freq`] — the sustained-clock-frequency governor model behind Fig. 2
//!   (AVX-512 licence throttling on Sapphire Rapids, package-power
//!   throttling on Genoa, Grace's fixed 3.4 GHz);
//! * [`peak`] — theoretical and achievable DP peak (Table I);
//! * [`ecm`] — the Execution-Cache-Memory model composition the paper
//!   names as future work: in-core time + per-level data-transfer times;
//! * [`roofline`] — classic Roofline ceilings using the in-core model as
//!   the horizontal ceiling.

pub mod ecm;
pub mod energy;
pub mod freq;
pub mod peak;
pub mod roofline;

pub use ecm::{ecm_for_kernel, Ecm};
pub use freq::{fig2_sweep, sustained_freq_ghz};
pub use peak::{achieved_peak_dp_tflops, table1_row, Table1Row};
pub use roofline::{roofline_gflops, Roofline};
