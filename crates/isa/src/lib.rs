//! Instruction-set layer: registers, operands, instructions, and assembly
//! parsers for the two ISAs covered by the paper — x86-64 (AT&T syntax, as
//! emitted by GCC/Clang/ICX) and AArch64 (as emitted by GCC/armclang),
//! including SVE.
//!
//! This crate is deliberately free of any microarchitectural knowledge: it
//! answers *what* an instruction is (operands, dataflow, ISA extension,
//! load/store/branch semantics), never *how fast* it is. Timing lives in the
//! `uarch` crate.
//!
//! # Example
//!
//! ```
//! use isa::{parse_kernel, Isa};
//!
//! let asm = r#"
//! .L2:
//!     vmovupd (%rsi,%rax), %zmm0
//!     vaddpd  (%rdx,%rax), %zmm0, %zmm1
//!     vmovupd %zmm1, (%rdi,%rax)
//!     addq    $64, %rax
//!     cmpq    %rcx, %rax
//!     jne     .L2
//! "#;
//! let kernel = parse_kernel(asm, Isa::X86).unwrap();
//! assert_eq!(kernel.instructions.len(), 6);
//! assert!(kernel.instructions[0].is_load());
//! assert!(kernel.instructions[2].is_store());
//! ```

pub mod compact;
pub mod dataflow;
pub mod ext;
pub mod inst;
pub mod intern;
pub mod kernel;
pub mod operand;
pub mod parse;
pub mod reg;

pub use compact::{CompactInst, CompactKernel, CompactOp, ParseArena};
pub use ext::IsaExt;
pub use inst::{Instruction, Isa};
pub use intern::{Interner, Sym};
pub use kernel::{parse_kernel, parse_kernel_reference, Kernel};
pub use operand::{AddrMode, MemOperand, OpSig, Operand};
pub use parse::ParseError;
pub use reg::{RegClass, Register};
