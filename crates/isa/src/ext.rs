//! ISA-extension classification of instructions.
//!
//! The sustained-frequency study (Fig. 2 of the paper) needs to know which
//! vector extension a kernel exercises, because Golden Cove derates its
//! clock for AVX-512-heavy (and, less so, AVX-heavy) code while Neoverse V2
//! and Zen 4 hold their frequency.

use crate::inst::{Instruction, Isa};
use crate::reg::RegClass;

/// Vector/scalar instruction-set extension class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IsaExt {
    /// Scalar integer or scalar FP.
    Scalar,
    /// 128-bit legacy SSE.
    Sse,
    /// 128/256-bit VEX-encoded AVX/AVX2.
    Avx,
    /// 512-bit (or EVEX-encoded) AVX-512.
    Avx512,
    /// 128-bit AArch64 Advanced SIMD.
    Neon,
    /// Arm Scalable Vector Extension.
    Sve,
}

impl IsaExt {
    /// Human-readable label used in reports and figures.
    pub fn label(&self) -> &'static str {
        match self {
            IsaExt::Scalar => "scalar",
            IsaExt::Sse => "SSE",
            IsaExt::Avx => "AVX",
            IsaExt::Avx512 => "AVX-512",
            IsaExt::Neon => "NEON",
            IsaExt::Sve => "SVE",
        }
    }

    /// Register width in bits this extension operates on (SVE reported at
    /// the Neoverse V2 implementation width).
    pub fn simd_width_bits(&self) -> u16 {
        match self {
            IsaExt::Scalar => 64,
            IsaExt::Sse | IsaExt::Neon | IsaExt::Sve => 128,
            IsaExt::Avx => 256,
            IsaExt::Avx512 => 512,
        }
    }
}

/// Classify a single instruction.
pub fn classify(inst: &Instruction) -> IsaExt {
    match inst.isa {
        Isa::X86 => classify_x86(inst),
        Isa::AArch64 => classify_aarch64(inst),
    }
}

fn classify_x86(inst: &Instruction) -> IsaExt {
    let uses_vec = inst
        .operands
        .iter()
        .any(|o| o.as_reg().is_some_and(|r| r.class == RegClass::Vec));
    let uses_mask = inst.predicate.is_some()
        || inst
            .operands
            .iter()
            .any(|o| o.as_reg().is_some_and(|r| r.class == RegClass::Mask));
    if !uses_vec && !uses_mask {
        return IsaExt::Scalar;
    }
    let w = inst.max_vec_width();
    if w >= 512 || uses_mask {
        return IsaExt::Avx512;
    }
    if inst.mnemonic.starts_with('v') {
        return IsaExt::Avx;
    }
    IsaExt::Sse
}

fn classify_aarch64(inst: &Instruction) -> IsaExt {
    let has_pred = inst.predicate.is_some()
        || inst
            .operands
            .iter()
            .any(|o| o.as_reg().is_some_and(|r| r.class == RegClass::Pred));
    if has_pred || is_sve_mnemonic(inst.base_mnemonic()) {
        return IsaExt::Sve;
    }
    // NEON if any full vector register with arrangement appears (we record
    // them as 128-bit Vec) *and* the raw text uses `v`/`q` views — scalar FP
    // (`d`/`s` views) counts as scalar for frequency purposes.
    let max_vec = inst.max_vec_width();
    if max_vec == 128 {
        IsaExt::Neon
    } else {
        IsaExt::Scalar
    }
}

fn is_sve_mnemonic(m: &str) -> bool {
    matches!(
        m,
        "whilelo"
            | "whilelt"
            | "ptrue"
            | "ptest"
            | "cntd"
            | "cntw"
            | "cnth"
            | "cntb"
            | "incd"
            | "incw"
    ) || m.starts_with("ld1")
        || m.starts_with("st1")
        || m.starts_with("ldff1")
        || m.starts_with("ldnt1")
        || m.starts_with("stnt1")
}

/// The dominant extension of a block: the widest/most specialized extension
/// used by any arithmetic instruction (loads/stores inherit it).
pub fn dominant_ext(insts: &[Instruction]) -> IsaExt {
    insts
        .iter()
        .map(classify)
        .max_by_key(|e| match e {
            IsaExt::Scalar => 0,
            IsaExt::Sse | IsaExt::Neon => 1,
            IsaExt::Avx | IsaExt::Sve => 2,
            IsaExt::Avx512 => 3,
        })
        .unwrap_or(IsaExt::Scalar)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_line_aarch64, parse_line_x86};

    fn x86(s: &str) -> Instruction {
        parse_line_x86(s, 1).unwrap().unwrap()
    }
    fn a64(s: &str) -> Instruction {
        parse_line_aarch64(s, 1).unwrap().unwrap()
    }

    #[test]
    fn x86_classes() {
        assert_eq!(classify(&x86("addq $1, %rax")), IsaExt::Scalar);
        assert_eq!(classify(&x86("addpd %xmm0, %xmm1")), IsaExt::Sse);
        assert_eq!(classify(&x86("vaddpd %ymm0, %ymm1, %ymm2")), IsaExt::Avx);
        assert_eq!(classify(&x86("vaddpd %zmm0, %zmm1, %zmm2")), IsaExt::Avx512);
        assert_eq!(classify(&x86("vaddpd %xmm0, %xmm1, %xmm2")), IsaExt::Avx);
        // EVEX masking forces AVX-512 even at narrow width.
        assert_eq!(
            classify(&x86("vaddpd %xmm1, %xmm2, %xmm3{%k1}{z}")),
            IsaExt::Avx512
        );
    }

    #[test]
    fn scalar_sd_is_sse() {
        // Scalar double math on xmm is encoded as SSE but is *scalar* work;
        // the paper's frequency study treats it via the SSE licence class on
        // SPR, so we keep it SSE here.
        assert_eq!(classify(&x86("addsd %xmm0, %xmm1")), IsaExt::Sse);
    }

    #[test]
    fn aarch64_classes() {
        assert_eq!(classify(&a64("add x0, x1, x2")), IsaExt::Scalar);
        assert_eq!(classify(&a64("fadd d0, d1, d2")), IsaExt::Scalar);
        assert_eq!(classify(&a64("fadd v0.2d, v1.2d, v2.2d")), IsaExt::Neon);
        assert_eq!(classify(&a64("fmla z0.d, p0/m, z1.d, z2.d")), IsaExt::Sve);
        assert_eq!(classify(&a64("whilelo p0.d, x3, x4")), IsaExt::Sve);
        assert_eq!(classify(&a64("ld1d {z0.d}, p0/z, [x0]")), IsaExt::Sve);
    }

    #[test]
    fn dominant_is_widest() {
        let block = vec![
            x86("movq (%rax), %rbx"),
            x86("vaddpd %zmm0, %zmm1, %zmm2"),
            x86("addq $8, %rax"),
        ];
        assert_eq!(dominant_ext(&block), IsaExt::Avx512);
        assert_eq!(dominant_ext(&[]), IsaExt::Scalar);
    }

    #[test]
    fn labels() {
        assert_eq!(IsaExt::Avx512.label(), "AVX-512");
        assert_eq!(IsaExt::Avx512.simd_width_bits(), 512);
        assert_eq!(IsaExt::Sve.simd_width_bits(), 128);
    }
}
