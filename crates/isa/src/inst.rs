//! Instruction representation and ISA-level semantic queries.

use crate::operand::{OpSig, Operand};
use crate::reg::Register;
use std::fmt;

/// The two instruction sets the toolchain understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Isa {
    /// x86-64 in AT&T syntax (source, …, destination order).
    X86,
    /// AArch64 (destination-first order), including NEON and SVE.
    AArch64,
}

/// A parsed assembly instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// Canonical lower-case mnemonic, including any AT&T width suffix
    /// (`addq`) or AArch64 condition (`b.ne` is stored as `b.ne`).
    pub mnemonic: String,
    /// Operands in *source order as written* (AT&T: sources first,
    /// destination last; AArch64: destination first).
    pub operands: Vec<Operand>,
    pub isa: Isa,
    /// SVE governing predicate with merge/zero flag, e.g. `p0/m`.
    pub predicate: Option<(Register, PredMode)>,
    /// 1-based source line for diagnostics.
    pub line: usize,
    /// Original source text (trimmed).
    pub raw: String,
}

/// SVE predication mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredMode {
    /// `/m` — inactive lanes keep the destination's old value (destination
    /// is therefore also a source).
    Merge,
    /// `/z` — inactive lanes are zeroed.
    Zero,
    /// Implicit predication without a suffix (e.g. `ld1d {z0.d}, p0/z` is
    /// written with an explicit mode, but gather/scatter forms are not).
    Plain,
}

impl Instruction {
    /// Base mnemonic with AT&T width suffix and AArch64 condition stripped:
    /// `vaddpd` → `vaddpd`, `addq` → `add`, `b.ne` → `b`.
    pub fn base_mnemonic(&self) -> &str {
        let m = &self.mnemonic;
        if self.isa == Isa::AArch64 {
            return m.split('.').next().unwrap_or(m);
        }
        m
    }

    /// Whether this instruction reads memory.
    pub fn is_load(&self) -> bool {
        match self.isa {
            Isa::X86 => {
                if self.is_branch() || self.base_mnemonic() == "lea" {
                    return false;
                }
                if self.is_store_mnemonic_x86() {
                    return false;
                }
                // A memory operand anywhere except a pure-store position is a
                // load; for RMW instructions (`addq $1, (%rax)`) the memory
                // destination is both loaded and stored.
                match self.mem_position() {
                    Some(pos) => pos + 1 < self.operands.len() || self.is_rmw(),
                    None => false,
                }
            }
            Isa::AArch64 => {
                let b = self.base_mnemonic();
                b.starts_with("ld") || b == "prfm"
            }
        }
    }

    /// Whether this instruction writes memory.
    pub fn is_store(&self) -> bool {
        match self.isa {
            Isa::X86 => {
                if self.is_branch() || self.base_mnemonic() == "lea" {
                    return false;
                }
                // AT&T destination is the last operand.
                matches!(self.operands.last(), Some(Operand::Mem(_)))
                    && !matches!(self.base_x86(), "cmp" | "test" | "prefetch")
                    && !self.mnemonic.starts_with("prefetch")
            }
            Isa::AArch64 => self.base_mnemonic().starts_with("st"),
        }
    }

    /// Whether the store bypasses the cache hierarchy (non-temporal).
    pub fn is_nt_store(&self) -> bool {
        match self.isa {
            Isa::X86 => {
                matches!(
                    self.mnemonic.as_str(),
                    "movntdq" | "movntpd" | "movntps" | "movnti"
                ) || self.mnemonic.starts_with("vmovnt")
            }
            Isa::AArch64 => {
                let b = self.base_mnemonic();
                b == "stnp" || b.starts_with("stnt")
            }
        }
    }

    /// Whether this is a control-flow instruction.
    pub fn is_branch(&self) -> bool {
        mnemonic_is_branch(&self.mnemonic, self.isa)
    }

    /// Whether this is a conditional branch (reads flags or a register).
    pub fn is_cond_branch(&self) -> bool {
        match self.isa {
            Isa::X86 => {
                self.is_branch()
                    && self.mnemonic != "jmp"
                    && self.mnemonic != "call"
                    && self.mnemonic != "ret"
            }
            Isa::AArch64 => {
                let b = self.base_mnemonic();
                (self.mnemonic.contains('.') && b == "b")
                    || matches!(b, "cbz" | "cbnz" | "tbz" | "tbnz")
            }
        }
    }

    /// Recognizes register-zeroing idioms that modern renamers execute with
    /// zero latency and no functional unit (e.g. `xorps %xmm0, %xmm0`,
    /// `eor x0, x0, x0`, `movi v0.2d, #0`).
    pub fn is_zero_idiom(&self) -> bool {
        let same_two_regs = |a: usize, b: usize| match (
            self.operands.get(a).and_then(Operand::as_reg),
            self.operands.get(b).and_then(Operand::as_reg),
        ) {
            (Some(x), Some(y)) => x.aliases(&y),
            _ => false,
        };
        match self.isa {
            Isa::X86 => {
                let m = self.base_x86();
                let is_xor = matches!(m, "xor" | "pxor" | "xorps" | "xorpd")
                    || matches!(
                        self.mnemonic.as_str(),
                        "vpxor" | "vpxord" | "vpxorq" | "vxorps" | "vxorpd"
                    );
                let is_sub = matches!(m, "sub" | "psubb" | "psubw" | "psubd" | "psubq");
                (is_xor || is_sub)
                    && self.operands.len() >= 2
                    && self.operands.iter().all(|o| !o.is_mem())
                    && same_two_regs(0, 1)
            }
            Isa::AArch64 => {
                let b = self.base_mnemonic();
                if b == "movi" {
                    return matches!(self.operands.get(1), Some(Operand::Imm(0)));
                }
                if b == "eor" && self.operands.len() == 3 {
                    return same_two_regs(1, 2) && same_two_regs(0, 1);
                }
                false
            }
        }
    }

    /// Whether this is a register-register move eligible for move
    /// elimination in the renamer.
    pub fn is_reg_move(&self) -> bool {
        let all_regs =
            self.operands.len() == 2 && self.operands.iter().all(|o| o.as_reg().is_some());
        if !all_regs {
            return false;
        }
        match self.isa {
            Isa::X86 => {
                matches!(
                    self.base_x86(),
                    "mov" | "movaps" | "movapd" | "movups" | "movupd" | "movdqa" | "movdqu"
                ) || matches!(
                    self.mnemonic.as_str(),
                    "vmovaps"
                        | "vmovapd"
                        | "vmovups"
                        | "vmovupd"
                        | "vmovdqa"
                        | "vmovdqu"
                        | "vmovdqa64"
                        | "vmovdqu64"
                )
            }
            Isa::AArch64 => matches!(self.base_mnemonic(), "mov" | "fmov" | "orr"),
        }
    }

    /// Whether this instruction is a no-op for modeling purposes
    /// (`vzeroupper` executes but costs nothing in a steady-state loop).
    pub fn is_nop(&self) -> bool {
        matches!(
            self.base_mnemonic(),
            "nop" | "nopw" | "nopl" | "endbr64" | "hint" | "vzeroupper" | "vzeroall" | "lfence"
        )
    }

    /// The base register updated by an addressing-mode writeback (AArch64
    /// pre-/post-index), if any. Such updates complete in one cycle on the
    /// AGU/ALU, independent of the access latency — dependency analyses use
    /// this to avoid charging the full load latency on pointer increments.
    pub fn writeback_base(&self) -> Option<crate::reg::Register> {
        let pos = self.mem_position()?;
        let mem = self.operands[pos].as_mem()?;
        if mem.writeback {
            return mem.base;
        }
        // Post-index: `[x0], #16` parses as a memory operand followed by a
        // bare immediate.
        if (self.is_load() || self.is_store())
            && matches!(self.operands.get(pos + 1), Some(Operand::Imm(_)))
        {
            return mem.base;
        }
        None
    }

    /// Position of the first memory operand, if any.
    pub fn mem_position(&self) -> Option<usize> {
        self.operands.iter().position(Operand::is_mem)
    }

    /// Number of bytes moved by this instruction's memory access, derived
    /// from register widths / mnemonic suffixes. Returns 0 for non-memory
    /// instructions.
    pub fn mem_access_bytes(&self) -> u32 {
        if self.mem_position().is_none() {
            return 0;
        }
        match self.isa {
            Isa::X86 => {
                // Width from the widest register operand, else the suffix.
                if let Some(w) = self
                    .operands
                    .iter()
                    .filter_map(Operand::as_reg)
                    .map(|r| r.width)
                    .max()
                {
                    return (w / 8) as u32;
                }
                match self.mnemonic.chars().last() {
                    Some('q') => 8,
                    Some('l') => 4,
                    Some('w') => 2,
                    Some('b') => 1,
                    _ => 8,
                }
            }
            Isa::AArch64 => {
                let b = self.base_mnemonic();
                let per_reg = self
                    .operands
                    .iter()
                    .filter_map(Operand::as_reg)
                    .filter(|r| {
                        r.class == crate::reg::RegClass::Vec || r.class == crate::reg::RegClass::Gpr
                    })
                    .map(|r| (r.width / 8) as u32)
                    .next()
                    .unwrap_or(8);
                // Pair instructions move two registers.
                if b == "ldp" || b == "stp" || b == "stnp" || b == "ldnp" {
                    2 * per_reg
                } else if b.starts_with("ld1")
                    || b.starts_with("st1")
                    || b.starts_with("ldnt1")
                    || b.starts_with("stnt1")
                {
                    // SVE full-vector structure access at VL=128.
                    16
                } else {
                    per_reg
                }
            }
        }
    }

    /// Structured form key for microarchitecture database lookups, e.g.
    /// `vfmadd231pd v512,v512,v512`.
    pub fn form_key(&self) -> String {
        use std::fmt::Write;
        let mut s = self.mnemonic.clone();
        s.push(' ');
        for (i, o) in self.operands.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}", o.sig());
        }
        s
    }

    /// Operand signature list.
    pub fn op_sigs(&self) -> Vec<OpSig> {
        self.operands.iter().map(Operand::sig).collect()
    }

    /// The widest vector register accessed, in bits (0 if none).
    pub fn max_vec_width(&self) -> u16 {
        self.operands
            .iter()
            .filter_map(Operand::as_reg)
            .filter(|r| r.class == crate::reg::RegClass::Vec)
            .map(|r| r.width)
            .max()
            .unwrap_or(0)
    }

    /// ISA-normalized mnemonic for database lookups: AT&T width suffixes are
    /// stripped from integer mnemonics (`addq` → `add`), AArch64 condition
    /// suffixes are dropped (`b.ne` → `b`). SSE/AVX mnemonics keep their full
    /// name (`vaddpd` stays `vaddpd`).
    pub fn norm_mnemonic(&self) -> &str {
        match self.isa {
            Isa::X86 => self.base_x86(),
            Isa::AArch64 => self.base_mnemonic(),
        }
    }

    fn base_x86(&self) -> &str {
        // Strip a trailing width suffix from common integer mnemonics:
        // addq→add, movl→mov. SSE/AVX mnemonics keep their full name.
        let m = self.mnemonic.as_str();
        strip_att_suffix(m)
    }

    /// Whether an x86 instruction with a memory destination also reads it
    /// (read-modify-write).
    fn is_rmw(&self) -> bool {
        self.isa == Isa::X86
            && matches!(
                self.base_x86(),
                "add" | "sub" | "and" | "or" | "xor" | "inc" | "dec" | "neg" | "not"
            )
            && matches!(self.operands.last(), Some(Operand::Mem(_)))
    }

    fn is_store_mnemonic_x86(&self) -> bool {
        // Pure stores: mov-family with memory destination and no other mem op.
        matches!(self.operands.last(), Some(Operand::Mem(_)))
            && (self.base_x86() == "mov"
                || self.mnemonic.starts_with("vmov")
                || self.mnemonic.starts_with("mov"))
            && self.operands.iter().filter(|o| o.is_mem()).count() == 1
            && !self.is_rmw()
    }
}

/// Branch test on a bare (already-lowercased) mnemonic string. Shared by
/// [`Instruction::is_branch`] and the compact parse path's loop detection,
/// which has only interned symbols and no `Instruction` to call through.
pub(crate) fn mnemonic_is_branch(m: &str, isa: Isa) -> bool {
    match isa {
        Isa::X86 => {
            matches!(m, "jmp" | "call" | "ret" | "jcxz" | "jecxz" | "jrcxz")
                || (m.starts_with('j') && m.len() <= 4)
        }
        Isa::AArch64 => {
            let b = m.split('.').next().unwrap_or(m);
            matches!(
                b,
                "b" | "bl" | "br" | "blr" | "ret" | "cbz" | "cbnz" | "tbz" | "tbnz"
            )
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic)?;
        for (i, o) in self.operands.iter().enumerate() {
            write!(f, "{}{}", if i == 0 { " " } else { ", " }, o)?;
        }
        Ok(())
    }
}

/// Strip an AT&T width suffix (`b`/`w`/`l`/`q`) from integer mnemonics:
/// `addq` → `add`, `cmovgq` → `cmovg`, `popcntl` → `popcnt`. SSE/AVX
/// mnemonics (`addsd`, `vmulpd`, …) are left untouched.
pub(crate) fn strip_att_suffix(m: &str) -> &str {
    const SUFFIXED: [&str; 39] = [
        "mov", "add", "sub", "and", "or", "xor", "cmp", "test", "lea", "inc", "dec", "imul",
        "idiv", "mul", "div", "neg", "not", "shl", "shr", "sar", "push", "pop", "movz", "movs",
        "adc", "sbb", "popcnt", "lzcnt", "tzcnt", "bswap", "bts", "btr", "btc", "bt", "shld",
        "shrd", "andn", "xchg", "movbe",
    ];
    // Conditional moves: strip one width character after the condition.
    if let Some(rest) = m.strip_prefix("cmov") {
        if rest.len() >= 2 {
            let (cond, tail) = rest.split_at(rest.len() - 1);
            if !cond.is_empty() && tail.chars().all(|c| "bwlq".contains(c)) {
                return &m[..4 + cond.len()];
            }
        }
        return m;
    }
    for base in SUFFIXED {
        if let Some(rest) = m.strip_prefix(base) {
            if rest.len() <= 2 && !rest.is_empty() && rest.chars().all(|c| "bwlq".contains(c)) {
                return base;
            }
            if rest.is_empty() {
                return base;
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_line_aarch64, parse_line_x86};

    fn x86(s: &str) -> Instruction {
        parse_line_x86(s, 1).unwrap().unwrap()
    }
    fn a64(s: &str) -> Instruction {
        parse_line_aarch64(s, 1).unwrap().unwrap()
    }

    #[test]
    fn x86_load_store_classification() {
        assert!(x86("vmovupd (%rax), %zmm0").is_load());
        assert!(!x86("vmovupd (%rax), %zmm0").is_store());
        assert!(x86("vmovupd %zmm0, (%rax)").is_store());
        assert!(!x86("vmovupd %zmm0, (%rax)").is_load());
        assert!(x86("vaddpd (%rax), %zmm1, %zmm2").is_load());
        assert!(!x86("lea 8(%rax), %rbx").is_load());
        assert!(!x86("addq $1, %rax").is_load());
    }

    #[test]
    fn x86_rmw_is_load_and_store() {
        let i = x86("addq $1, (%rax)");
        assert!(i.is_load() && i.is_store());
    }

    #[test]
    fn x86_nt_stores() {
        assert!(x86("vmovntpd %zmm0, (%rax)").is_nt_store());
        assert!(x86("movnti %rax, (%rbx)").is_nt_store());
        assert!(!x86("vmovupd %zmm0, (%rax)").is_nt_store());
    }

    #[test]
    fn x86_branches() {
        assert!(x86("jne .L2").is_branch());
        assert!(x86("jne .L2").is_cond_branch());
        assert!(x86("jmp .L2").is_branch());
        assert!(!x86("jmp .L2").is_cond_branch());
        assert!(!x86("addq $1, %rax").is_branch());
    }

    #[test]
    fn x86_zero_idioms() {
        assert!(x86("xorl %eax, %eax").is_zero_idiom());
        assert!(x86("vpxor %xmm0, %xmm0, %xmm0").is_zero_idiom());
        assert!(!x86("xorl %eax, %ebx").is_zero_idiom());
    }

    #[test]
    fn aarch64_load_store_classification() {
        assert!(a64("ldr q0, [x0, #16]").is_load());
        assert!(a64("str q0, [x0], #16").is_store());
        assert!(a64("ldp q0, q1, [x0]").is_load());
        assert!(a64("ld1d {z0.d}, p0/z, [x0, x1, lsl #3]").is_load());
        assert!(a64("st1d {z0.d}, p0, [x0, x1, lsl #3]").is_store());
        assert!(!a64("fadd v0.2d, v1.2d, v2.2d").is_load());
    }

    #[test]
    fn aarch64_nt_and_branch() {
        assert!(a64("stnp q0, q1, [x0]").is_nt_store());
        assert!(a64("b.ne .L2").is_cond_branch());
        assert!(a64("cbnz x3, .L2").is_cond_branch());
        assert!(a64("b .L2").is_branch());
        assert!(!a64("b .L2").is_cond_branch());
    }

    #[test]
    fn mem_bytes() {
        assert_eq!(x86("vmovupd (%rax), %zmm0").mem_access_bytes(), 64);
        assert_eq!(x86("movq (%rax), %rbx").mem_access_bytes(), 8);
        assert_eq!(a64("ldp q0, q1, [x0]").mem_access_bytes(), 32);
        assert_eq!(a64("ldr d0, [x0]").mem_access_bytes(), 8);
        assert_eq!(a64("ld1d {z0.d}, p0/z, [x0]").mem_access_bytes(), 16);
        assert_eq!(x86("addq $1, %rax").mem_access_bytes(), 0);
    }

    #[test]
    fn form_keys() {
        assert_eq!(
            x86("vaddpd %zmm0, %zmm1, %zmm2").form_key(),
            "vaddpd v512,v512,v512"
        );
        assert_eq!(
            a64("fadd v0.2d, v1.2d, v2.2d").form_key(),
            "fadd v128,v128,v128"
        );
    }

    #[test]
    fn reg_moves() {
        assert!(x86("movq %rax, %rbx").is_reg_move());
        assert!(x86("vmovaps %ymm1, %ymm2").is_reg_move());
        assert!(!x86("movq (%rax), %rbx").is_reg_move());
        assert!(a64("mov x0, x1").is_reg_move());
        assert!(a64("fmov d0, d1").is_reg_move());
    }
}
