//! String interning for the compact parse path.
//!
//! A corpus of assembly blocks repeats the same mnemonics, labels, and raw
//! lines over and over; the interner maps each distinct string to a dense
//! [`Sym`] (`u32`) exactly once, so the compact instruction representation
//! ([`crate::compact`]) can carry symbol ids instead of owned `String`s.
//! Lookups of already-interned strings are allocation-free, which is what
//! makes the second pass over a corpus run without touching the heap.

use std::collections::HashMap;

/// Dense id of an interned string. Valid only for the [`Interner`] that
/// produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl Sym {
    /// Raw index into the interner's storage table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Append-only string table with O(1) amortized intern and resolve.
///
/// Storage is a single `Vec<Box<str>>`; the map borrows nothing from the
/// storage (it owns parallel boxes) so the structure stays safely movable.
/// Interning the same string twice returns the same [`Sym`] without
/// allocating.
#[derive(Debug, Default)]
pub struct Interner {
    map: HashMap<Box<str>, Sym>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// Empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Intern `s`, returning its stable id. Allocates only on first sight.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Sym(self.strings.len() as u32);
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Id of `s` if it has been interned before, without inserting.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.map.get(s).copied()
    }

    /// Resolve a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("vfmadd231pd");
        let b = i.intern("vmovupd");
        let a2 = i.intern("vfmadd231pd");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let syms: Vec<Sym> = ["ldp", "stp", "fmla", ".L3", ""]
            .iter()
            .map(|s| i.intern(s))
            .collect();
        for (s, sym) in ["ldp", "stp", "fmla", ".L3", ""].iter().zip(&syms) {
            assert_eq!(i.resolve(*sym), *s);
        }
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert!(i.get("mov").is_none());
        let s = i.intern("mov");
        assert_eq!(i.get("mov"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
    }
}
