//! Compact, interned instruction representation and the zero-copy parse
//! path behind [`parse_kernel`](crate::parse_kernel).
//!
//! The legacy parse path builds one heap-heavy [`Instruction`] per line —
//! a `String` mnemonic, a `String` raw line, a `Vec` of operands, and a
//! cloned loop body. On a corpus sweep that is millions of transient
//! allocations for text the corpus repeats endlessly. This module keeps a
//! whole parsed kernel in three flat arenas instead:
//!
//! * an [`Interner`] mapping each distinct mnemonic / label / raw line to a
//!   `u32` [`Sym`],
//! * one `Vec<CompactOp>` holding every operand of every instruction
//!   (instructions address it by range), and
//! * one `Vec<CompactInst>` of fixed-size instruction records.
//!
//! A [`ParseArena`] owns the arenas and is reused across kernels: `clear()`
//! keeps capacity and the interner, so re-parsing previously seen text
//! performs **zero** heap allocations on the steady path (the
//! `pipeline_core` bench asserts exactly this with a counting allocator).
//!
//! The parser here is a line-for-line port of the legacy dialect parsers in
//! [`crate::parse`], including error messages and loop detection, and the
//! legacy path is kept as [`crate::kernel::parse_kernel_reference`]; the
//! equivalence suite pins both paths to identical output over the full
//! generated corpus.

use std::collections::HashMap;

use crate::inst::{mnemonic_is_branch, Instruction, Isa, PredMode};
use crate::intern::{Interner, Sym};
use crate::kernel::Kernel;
use crate::operand::{AddrMode, MemOperand, Operand};
use crate::parse::{
    contains_ignore_ascii_case, parse_int, parse_shift_modifier, split_operands_iter,
    strip_comment, ParseError,
};
use crate::reg::{aarch64_register, x86_register, RegClass, Register};

/// SVE vector length in bytes assumed for `mul vl` addressing (Neoverse V2).
/// Mirrors `parse::aarch64::SVE_VL_BYTES`.
const SVE_VL_BYTES: i64 = 16;

/// A parsed operand in compact form. Identical to [`Operand`] except that
/// symbolic labels are interned rather than owned, making the type `Copy`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompactOp {
    /// Register operand.
    Reg(Register),
    /// Integer immediate.
    Imm(i64),
    /// Floating-point immediate.
    FpImm(f64),
    /// Memory operand.
    Mem(MemOperand),
    /// Symbolic label (branch target or symbol), interned.
    Label(Sym),
}

/// A parsed instruction in compact form: fixed size, no owned heap data.
/// Operands live in the arena's shared operand table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactInst {
    /// Interned (lowercased, prefix-folded) mnemonic.
    pub mnemonic: Sym,
    /// Interned comment-stripped source text.
    pub raw: Sym,
    /// Operand range `[ops_start, ops_end)` in the arena operand table.
    ops_start: u32,
    ops_end: u32,
    /// Mask/predicate annotation (EVEX `{%k}{z}`, SVE `p0/z`).
    pub predicate: Option<(Register, PredMode)>,
    /// 1-based source line within the parsed region.
    pub line: u32,
}

/// A parsed kernel in compact form: an instruction range into the arena
/// plus the detected loop label.
#[derive(Debug, Clone, Copy)]
pub struct CompactKernel {
    inst_start: u32,
    inst_end: u32,
    /// ISA the kernel was parsed as.
    pub isa: Isa,
    /// Interned label of the loop head, if a loop was detected.
    pub loop_label: Option<Sym>,
}

impl CompactKernel {
    /// Number of instructions in the kernel body.
    pub fn len(&self) -> usize {
        (self.inst_end - self.inst_start) as usize
    }

    /// Whether the body is empty.
    pub fn is_empty(&self) -> bool {
        self.inst_start == self.inst_end
    }
}

/// What one parsed item turned out to be, in item (program) order.
#[derive(Debug, Clone, Copy)]
enum CompactItem {
    /// Index into the arena instruction table.
    Inst(u32),
    /// A label definition.
    Label(Sym),
}

/// Reusable parse state: interner plus flat instruction/operand arenas.
///
/// One arena holds one kernel at a time — [`ParseArena::parse`] clears the
/// per-kernel tables (keeping capacity and the interner) before filling
/// them, so a long-lived arena reaches a steady state where parsing
/// previously seen text does not allocate at all.
#[derive(Debug, Default)]
pub struct ParseArena {
    interner: Interner,
    ops: Vec<CompactOp>,
    insts: Vec<CompactInst>,
    items: Vec<CompactItem>,
    label_pos: HashMap<Sym, u32>,
    scratch: String,
}

impl ParseArena {
    /// Fresh, empty arena.
    pub fn new() -> Self {
        ParseArena::default()
    }

    /// Parse an assembly listing into the arena, replacing any previously
    /// parsed kernel. Marker handling, dialect detection, loop detection,
    /// and error reporting all match [`crate::kernel::parse_kernel_reference`].
    pub fn parse(&mut self, asm: &str, isa: Isa) -> Result<CompactKernel, ParseError> {
        self.ops.clear();
        self.insts.clear();
        self.items.clear();
        self.label_pos.clear();
        if let Some((begin, end)) = marked_region_bounds(asm) {
            let region = asm.lines().skip(begin + 1).take(end - begin - 1);
            return self.parse_lines(region, isa);
        }
        self.parse_lines(asm.lines(), isa)
    }

    /// Number of distinct strings interned so far. Callers holding a
    /// long-lived arena (e.g. a server) can use this to bound growth and
    /// swap in a fresh arena past a threshold.
    pub fn interned_strings(&self) -> usize {
        self.interner.len()
    }

    /// Resolve an interned symbol.
    pub fn resolve(&self, sym: Sym) -> &str {
        self.interner.resolve(sym)
    }

    /// Instructions of a parsed kernel, in program order.
    pub fn insts(&self, k: &CompactKernel) -> &[CompactInst] {
        &self.insts[k.inst_start as usize..k.inst_end as usize]
    }

    /// Operands of one instruction.
    pub fn ops(&self, inst: &CompactInst) -> &[CompactOp] {
        &self.ops[inst.ops_start as usize..inst.ops_end as usize]
    }

    /// Expand a compact kernel into the legacy heap-allocating [`Kernel`]
    /// the downstream predictors consume (the conversion shim).
    pub fn expand(&self, k: &CompactKernel) -> Kernel {
        Kernel {
            instructions: self
                .insts(k)
                .iter()
                .map(|ci| self.expand_inst(ci, k.isa))
                .collect(),
            isa: k.isa,
            loop_label: k.loop_label.map(|s| self.resolve(s).to_string()),
        }
    }

    /// Expand one compact instruction into a legacy [`Instruction`].
    pub fn expand_inst(&self, ci: &CompactInst, isa: Isa) -> Instruction {
        Instruction {
            mnemonic: self.resolve(ci.mnemonic).to_string(),
            operands: self.ops(ci).iter().map(|op| self.expand_op(op)).collect(),
            isa,
            predicate: ci.predicate,
            line: ci.line as usize,
            raw: self.resolve(ci.raw).to_string(),
        }
    }

    /// Expand one compact operand into a legacy [`Operand`].
    pub fn expand_op(&self, op: &CompactOp) -> Operand {
        match *op {
            CompactOp::Reg(r) => Operand::Reg(r),
            CompactOp::Imm(v) => Operand::Imm(v),
            CompactOp::FpImm(f) => Operand::FpImm(f),
            CompactOp::Mem(m) => Operand::Mem(m),
            CompactOp::Label(s) => Operand::Label(self.resolve(s).to_string()),
        }
    }

    fn parse_lines<'a, I>(&mut self, lines: I, isa: Isa) -> Result<CompactKernel, ParseError>
    where
        I: Iterator<Item = &'a str> + Clone,
    {
        // x86 listings may be in AT&T or Intel syntax; detect once per block.
        let intel = isa == Isa::X86 && looks_like_intel_lines(lines.clone());
        for (idx, line) in lines.enumerate() {
            let lineno = idx + 1;
            let text = match isa {
                Isa::X86 if intel => strip_comment(line, &["#", ";"]),
                Isa::X86 => strip_comment(line, &["#"]),
                Isa::AArch64 => strip_comment(line, &["//", "@"]),
            };
            if let Some(label) = text.strip_suffix(':') {
                let label = label.trim();
                if !label.is_empty() && !label.contains(char::is_whitespace) {
                    let sym = self.interner.intern(label);
                    self.items.push(CompactItem::Label(sym));
                    continue;
                }
            }
            let pushed = match isa {
                Isa::X86 if intel => self.parse_line_x86_intel(line, lineno)?,
                Isa::X86 => self.parse_line_x86(line, lineno)?,
                Isa::AArch64 => self.parse_line_aarch64(line, lineno)?,
            };
            if pushed {
                self.items
                    .push(CompactItem::Inst(self.insts.len() as u32 - 1));
            }
        }
        Ok(self.detect_loop(isa))
    }

    /// Loop detection over the parsed items: find the *last shortest*
    /// backward branch, exactly like the legacy path.
    fn detect_loop(&mut self, isa: Isa) -> CompactKernel {
        for (pos, item) in self.items.iter().enumerate() {
            if let CompactItem::Label(l) = item {
                self.label_pos.insert(*l, pos as u32);
            }
        }
        let mut best: Option<(u32, u32, Sym)> = None; // (start, end, label)
        for (pos, item) in self.items.iter().enumerate() {
            let CompactItem::Inst(ii) = *item else {
                continue;
            };
            let inst = &self.insts[ii as usize];
            if !mnemonic_is_branch(self.interner.resolve(inst.mnemonic), isa) {
                continue;
            }
            let first_op =
                (inst.ops_start < inst.ops_end).then(|| self.ops[inst.ops_start as usize]);
            let Some(CompactOp::Label(target)) = first_op else {
                continue;
            };
            let Some(&tpos) = self.label_pos.get(&target) else {
                continue;
            };
            if (tpos as usize) < pos {
                // Prefer the innermost (shortest) loop body when several
                // candidates exist; ties go to the later branch.
                let len = pos as u32 - tpos;
                match &best {
                    Some((s, e, _)) if e - s <= len => {}
                    _ => best = Some((tpos, pos as u32, target)),
                }
            }
        }
        match best {
            Some((start, end, label)) => {
                let mut first_inst = None;
                let mut last_inst = None;
                for item in &self.items[start as usize..=end as usize] {
                    if let CompactItem::Inst(i) = item {
                        if first_inst.is_none() {
                            first_inst = Some(*i);
                        }
                        last_inst = Some(*i);
                    }
                }
                match (first_inst, last_inst) {
                    (Some(f), Some(l)) => CompactKernel {
                        inst_start: f,
                        inst_end: l + 1,
                        isa,
                        loop_label: Some(label),
                    },
                    _ => CompactKernel {
                        inst_start: 0,
                        inst_end: 0,
                        isa,
                        loop_label: Some(label),
                    },
                }
            }
            None => CompactKernel {
                inst_start: 0,
                inst_end: self.insts.len() as u32,
                isa,
                loop_label: None,
            },
        }
    }

    /// Lowercase `src` into the scratch buffer (no allocation at steady
    /// capacity) and return it for interning.
    fn lower_into_scratch(&mut self, src: &str) {
        self.scratch.clear();
        for c in src.chars() {
            self.scratch.push(c.to_ascii_lowercase());
        }
    }

    /// Port of [`crate::parse::parse_line_x86`] into the arena.
    fn parse_line_x86(&mut self, line: &str, lineno: usize) -> Result<bool, ParseError> {
        let text = strip_comment(line, &["#"]);
        if text.is_empty() || text.ends_with(':') || text.starts_with('.') {
            return Ok(false);
        }
        let (mnemonic_src, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (text, ""),
        };
        self.lower_into_scratch(mnemonic_src);
        // `rep` string prefixes: fold prefix into the mnemonic.
        let rest = if self.scratch == "rep" || self.scratch == "repe" || self.scratch == "repne" {
            let (m2, r2) = match rest.split_once(char::is_whitespace) {
                Some((m, r)) => (m, r.trim()),
                None => (rest, ""),
            };
            self.scratch.push(' ');
            for c in m2.chars() {
                self.scratch.push(c.to_ascii_lowercase());
            }
            r2
        } else {
            rest
        };
        let mnemonic = self.interner.intern(&self.scratch);

        let ops_start = self.ops.len() as u32;
        let mut predicate = None;
        for part in split_operands_iter(rest) {
            let (op, mask) = parse_x86_operand(&mut self.interner, part, lineno, line)?;
            if let Some(m) = mask {
                predicate = Some(m);
            }
            self.ops.push(op);
        }
        let raw = self.interner.intern(text);
        self.insts.push(CompactInst {
            mnemonic,
            raw,
            ops_start,
            ops_end: self.ops.len() as u32,
            predicate,
            line: lineno as u32,
        });
        Ok(true)
    }

    /// Port of [`crate::parse::parse_line_aarch64`] into the arena.
    fn parse_line_aarch64(&mut self, line: &str, lineno: usize) -> Result<bool, ParseError> {
        let text = strip_comment(line, &["//", "@"]);
        if text.is_empty() || text.ends_with(':') || text.starts_with('.') {
            return Ok(false);
        }
        let (mnemonic_src, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (text, ""),
        };
        self.lower_into_scratch(mnemonic_src);
        let mnemonic = self.interner.intern(&self.scratch);

        let ops_start = self.ops.len() as u32;
        let mut predicate = None;
        for part in split_operands_iter(rest) {
            // Shift/extend modifiers attached to the previous register
            // operand: `add x0, x1, x2, lsl #3`.
            if let Some((_kind, amt)) = parse_shift_modifier(part) {
                self.ops.push(CompactOp::Imm(amt));
                continue;
            }
            parse_aarch64_operand(
                &mut self.interner,
                &mut self.ops,
                &mut predicate,
                part,
                lineno,
                line,
            )?;
        }
        let raw = self.interner.intern(text);
        self.insts.push(CompactInst {
            mnemonic,
            raw,
            ops_start,
            ops_end: self.ops.len() as u32,
            predicate,
            line: lineno as u32,
        });
        Ok(true)
    }

    /// Port of [`crate::parse::parse_line_x86_intel`] into the arena.
    fn parse_line_x86_intel(&mut self, line: &str, lineno: usize) -> Result<bool, ParseError> {
        let text = strip_comment(line, &["#", ";"]);
        if text.is_empty() || text.ends_with(':') || text.starts_with('.') {
            return Ok(false);
        }
        let (mnemonic_src, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (text, ""),
        };
        self.lower_into_scratch(mnemonic_src);

        let ops_start = self.ops.len() as u32;
        let mut width_suffix: Option<char> = None;
        for part in split_operands_iter(rest) {
            let (op, suffix) = parse_intel_operand(&mut self.interner, part, lineno, line)?;
            if suffix.is_some() {
                width_suffix = suffix;
            }
            self.ops.push(op);
        }
        // Intel order is destination-first; the internal representation is
        // AT&T destination-last.
        self.ops[ops_start as usize..].reverse();

        // Attach the ptr-directive width to integer mnemonics so
        // memory-only forms keep their access size.
        if let Some(sfx) = width_suffix {
            let has_reg = self.ops[ops_start as usize..]
                .iter()
                .any(|o| matches!(o, CompactOp::Reg(_)));
            let simd = self.scratch.starts_with('v')
                || self.scratch.ends_with("pd")
                || self.scratch.ends_with("ps")
                || self.scratch.ends_with("sd")
                || self.scratch.ends_with("ss");
            if !has_reg && !simd {
                self.scratch.push(sfx);
            }
        }
        let mnemonic = self.interner.intern(&self.scratch);
        let raw = self.interner.intern(text);
        self.insts.push(CompactInst {
            mnemonic,
            raw,
            ops_start,
            ops_end: self.ops.len() as u32,
            predicate: None,
            line: lineno as u32,
        });
        Ok(true)
    }
}

/// Bounds of the OSACA/IACA marked region, if both markers are present in
/// order. Mirrors `kernel::marked_region` without joining the lines.
fn marked_region_bounds(asm: &str) -> Option<(usize, usize)> {
    let is_begin = |l: &str| l.contains("OSACA-BEGIN") || l.contains("IACA START");
    let is_end = |l: &str| l.contains("OSACA-END") || l.contains("IACA END");
    let begin = asm.lines().position(is_begin)?;
    let end = asm.lines().position(is_end)?;
    (begin < end).then_some((begin, end))
}

/// Line-iterating, allocation-free equivalent of
/// [`crate::parse::looks_like_intel_x86`]. None of the needles contain a
/// newline, so per-line scanning matches scanning the joined text.
fn looks_like_intel_lines<'a, I>(mut lines: I) -> bool
where
    I: Iterator<Item = &'a str> + Clone,
{
    if lines.clone().any(|l| l.contains('%')) {
        return false;
    }
    lines
        .clone()
        .any(|l| contains_ignore_ascii_case(l, "ptr ["))
        || lines.clone().any(|l| l.contains('['))
        || lines.any(|l| {
            [
                " rax", " rbx", " rcx", " rdx", " rsi", " rdi", " xmm", " ymm", " zmm",
            ]
            .iter()
            .any(|r| contains_ignore_ascii_case(l, r))
        })
}

type MaskAnnotation = (Register, PredMode);

/// Port of `parse::x86::parse_operand` producing a [`CompactOp`].
fn parse_x86_operand(
    interner: &mut Interner,
    s: &str,
    lineno: usize,
    raw: &str,
) -> Result<(CompactOp, Option<MaskAnnotation>), ParseError> {
    let err = |m: &str| ParseError::new(lineno, m.to_string(), raw.to_string());
    let mut s = s.trim();
    // Indirect jump target `*%rax` / `*(%rax)` — strip the star.
    if let Some(rest) = s.strip_prefix('*') {
        s = rest.trim();
    }
    // EVEX masking: `%zmm0{%k1}{z}`.
    let mut mask: Option<MaskAnnotation> = None;
    if let Some(brace) = s.find('{') {
        let ann = &s[brace..];
        let zeroing = ann.contains("{z}");
        for piece in ann.split(['{', '}']) {
            if let Some(k) = piece.trim().strip_prefix('%') {
                if let Some(r) = x86_register(k) {
                    mask = Some((
                        r,
                        if zeroing {
                            PredMode::Zero
                        } else {
                            PredMode::Merge
                        },
                    ));
                }
            }
        }
        s = s[..brace].trim();
    }

    if let Some(imm) = s.strip_prefix('$') {
        let v = parse_int(imm).ok_or_else(|| err("bad immediate"))?;
        return Ok((CompactOp::Imm(v), mask));
    }
    if let Some(reg) = s.strip_prefix('%') {
        let r = x86_register(reg).ok_or_else(|| err("unknown register"))?;
        return Ok((CompactOp::Reg(r), mask));
    }
    // Memory operand `disp(base,index,scale)` — any component optional.
    if let Some(open) = s.find('(') {
        let close = s
            .rfind(')')
            .filter(|&c| c > open)
            .ok_or_else(|| err("unbalanced memory operand"))?;
        let disp_str = &s[..open];
        let disp = if disp_str.trim().is_empty() {
            0
        } else {
            // Symbolic displacements (e.g. `arr(%rip)`) become 0.
            parse_int(disp_str).unwrap_or(0)
        };
        let inner = &s[open + 1..close];
        let get_reg = |p: &str| -> Result<Option<Register>, ParseError> {
            if p.is_empty() {
                return Ok(None);
            }
            let name = p
                .strip_prefix('%')
                .ok_or_else(|| err("expected register in memory operand"))?;
            Ok(Some(x86_register(name).ok_or_else(|| {
                err("unknown register in memory operand")
            })?))
        };
        let mut parts = inner.split(',').map(str::trim);
        let base = get_reg(parts.next().unwrap_or(""))?;
        let index = get_reg(parts.next().unwrap_or(""))?;
        let scale = match parts.next() {
            Some(p) if !p.is_empty() => parse_int(p)
                .filter(|s| [1, 2, 4, 8].contains(s))
                .ok_or_else(|| err("bad scale"))? as u8,
            _ => 1,
        };
        return Ok((
            CompactOp::Mem(MemOperand {
                base,
                index,
                scale,
                disp,
                ..Default::default()
            }),
            mask,
        ));
    }
    // Bare symbol: branch target or absolute symbolic memory reference.
    if s.chars()
        .next()
        .is_some_and(|c| c.is_ascii_digit() || c == '-')
    {
        let disp = parse_int(s).ok_or_else(|| err("bad absolute address"))?;
        return Ok((
            CompactOp::Mem(MemOperand {
                disp,
                scale: 1,
                ..Default::default()
            }),
            mask,
        ));
    }
    Ok((CompactOp::Label(interner.intern(s)), mask))
}

/// Port of `parse::aarch64::parse_operand` writing into the shared operand
/// table (register lists flatten in place instead of via a `Vec`).
fn parse_aarch64_operand(
    interner: &mut Interner,
    ops: &mut Vec<CompactOp>,
    predicate: &mut Option<(Register, PredMode)>,
    s: &str,
    lineno: usize,
    raw: &str,
) -> Result<(), ParseError> {
    let err = |m: &str| ParseError::new(lineno, m.to_string(), raw.to_string());
    let s = s.trim();

    // Register list `{v0.2d, v1.2d}` / `{z0.d}`.
    if let Some(inner) = s.strip_prefix('{') {
        let inner = inner
            .strip_suffix('}')
            .ok_or_else(|| err("unbalanced register list"))?;
        for piece in inner.split(',') {
            let piece = piece.trim();
            // Range form `{v0.2d - v3.2d}`.
            if let Some((a, b)) = piece.split_once('-') {
                let ra = aarch64_register(a.trim()).ok_or_else(|| err("bad register in list"))?;
                let rb = aarch64_register(b.trim()).ok_or_else(|| err("bad register in list"))?;
                for idx in ra.index..=rb.index {
                    ops.push(CompactOp::Reg(Register { index: idx, ..ra }));
                }
            } else if !piece.is_empty() {
                ops.push(CompactOp::Reg(
                    aarch64_register(piece).ok_or_else(|| err("bad register in list"))?,
                ));
            }
        }
        return Ok(());
    }

    // Memory operand `[...]` optionally followed by `!` (pre-index); the
    // post-index immediate arrives as a separate operand after the `]`.
    if s.starts_with('[') {
        let pre_index = s.ends_with('!');
        let body = s.trim_end_matches('!');
        let inner = body
            .strip_prefix('[')
            .and_then(|b| b.strip_suffix(']'))
            .ok_or_else(|| err("unbalanced memory operand"))?;
        let mut mem = MemOperand {
            scale: 1,
            ..Default::default()
        };
        let mut piece_iter = split_operands_iter(inner);
        if let Some(first) = piece_iter.next() {
            mem.base =
                Some(aarch64_register(first.trim()).ok_or_else(|| err("bad base register"))?);
        }
        let mut mul_vl = false;
        for piece in piece_iter {
            if let Some(imm) = piece.strip_prefix('#') {
                mem.disp = parse_int(imm).ok_or_else(|| err("bad displacement"))?;
            } else if let Some((kind, amt)) = parse_shift_modifier(piece) {
                if kind == "lsl" {
                    mem.scale = 1u8 << amt.clamp(0, 3);
                }
            } else if piece == "mul vl" || piece == "mul" {
                // `[x0, #1, mul vl]` — GCC may split "mul vl" on the comma.
                mul_vl = true;
            } else if piece == "vl" {
                mul_vl = true;
            } else if let Some(r) = aarch64_register(piece) {
                mem.index = Some(r);
            } else if let Some(v) = parse_int(piece) {
                mem.disp = v;
            } else {
                return Err(err("bad memory operand piece"));
            }
        }
        if mul_vl {
            mem.disp *= SVE_VL_BYTES;
        }
        if pre_index {
            mem.mode = AddrMode::PreIndex;
            mem.writeback = true;
        }
        ops.push(CompactOp::Mem(mem));
        return Ok(());
    }

    // Immediate `#imm` or `#fp`.
    if let Some(imm) = s.strip_prefix('#') {
        if let Some(v) = parse_int(imm) {
            ops.push(CompactOp::Imm(v));
            return Ok(());
        }
        if let Ok(f) = imm.parse::<f64>() {
            ops.push(CompactOp::FpImm(f));
            return Ok(());
        }
        return Err(err("bad immediate"));
    }

    // Predicate with mode suffix `p0/z` or `p0/m`.
    if let Some((p, mode)) = s.split_once('/') {
        if let Some(r) = aarch64_register(p) {
            if r.class == RegClass::Pred {
                let mode = match mode.trim() {
                    "z" => PredMode::Zero,
                    "m" => PredMode::Merge,
                    _ => PredMode::Plain,
                };
                *predicate = Some((r, mode));
                // Keep the predicate in the operand list too: it is read.
                ops.push(CompactOp::Reg(r));
                return Ok(());
            }
        }
    }

    // Plain register (possibly with arrangement suffix).
    if let Some(r) = aarch64_register(s) {
        if r.class == RegClass::Pred {
            *predicate = Some((r, PredMode::Plain));
        }
        ops.push(CompactOp::Reg(r));
        return Ok(());
    }

    // Bare integer (e.g. `lsl x0, x1, 3` GCC style without '#').
    if let Some(v) = parse_int(s) {
        ops.push(CompactOp::Imm(v));
        return Ok(());
    }

    // Branch target / symbol.
    ops.push(CompactOp::Label(interner.intern(s)));
    Ok(())
}

/// Port of `parse::x86_intel::parse_operand` producing a [`CompactOp`];
/// the `[base + index*scale + disp]` term scan works on slices instead of
/// accumulating `String`s.
fn parse_intel_operand(
    interner: &mut Interner,
    s: &str,
    lineno: usize,
    raw: &str,
) -> Result<(CompactOp, Option<char>), ParseError> {
    let err = |m: &str| ParseError::new(lineno, m.to_string(), raw.to_string());
    let mut s = s.trim();
    let mut suffix = None;

    // Width directives: `qword ptr [..]`.
    for (dir, sfx) in [
        ("byte", 'b'),
        ("word", 'w'),
        ("dword", 'l'),
        ("qword", 'q'),
        ("xmmword", 'x'),
        ("ymmword", 'y'),
        ("zmmword", 'z'),
    ] {
        if s.len() >= dir.len() && s.as_bytes()[..dir.len()].eq_ignore_ascii_case(dir.as_bytes()) {
            let rest = s[dir.len()..].trim_start();
            if rest.len() >= 3 && rest.as_bytes()[..3].eq_ignore_ascii_case(b"ptr") {
                let after = &rest[3..];
                let consumed = s.len() - after.len();
                s = s[consumed..].trim_start();
                if matches!(sfx, 'b' | 'w' | 'l' | 'q') {
                    suffix = Some(sfx);
                }
                break;
            }
        }
    }

    // Memory operand `[base + index*scale + disp]`.
    if let Some(open) = s.find('[') {
        let close = s
            .rfind(']')
            .filter(|&c| c > open)
            .ok_or_else(|| err("unbalanced memory operand"))?;
        let inner = &s[open + 1..close];
        let mut mem = MemOperand {
            scale: 1,
            ..Default::default()
        };
        let mut handle_term = |sign: i64, term: &str| -> Result<(), ParseError> {
            if let Some((r, sc)) = term.split_once('*') {
                let reg = x86_register(r.trim()).ok_or_else(|| err("bad index register"))?;
                let scale = parse_int(sc.trim())
                    .filter(|v| [1, 2, 4, 8].contains(v))
                    .ok_or_else(|| err("bad scale"))?;
                mem.index = Some(reg);
                mem.scale = scale as u8;
            } else if let Some(reg) = x86_register(term) {
                if mem.base.is_none() {
                    mem.base = Some(reg);
                } else if mem.index.is_none() {
                    mem.index = Some(reg);
                } else {
                    return Err(err("too many registers in memory operand"));
                }
            } else if let Some(v) = parse_int(term) {
                mem.disp += sign * v;
            }
            // Symbolic displacement (`[rip + sym]` keeps disp 0).
            Ok(())
        };
        // Split on +/- keeping the sign with each term.
        let mut sign = 1i64;
        let mut start = 0usize;
        for (i, c) in inner.char_indices() {
            if c == '+' || c == '-' {
                let term = inner[start..i].trim();
                if !term.is_empty() {
                    handle_term(sign, term)?;
                }
                sign = if c == '+' { 1 } else { -1 };
                start = i + c.len_utf8();
            }
        }
        let term = inner[start..].trim();
        if !term.is_empty() {
            handle_term(sign, term)?;
        }
        return Ok((CompactOp::Mem(mem), suffix));
    }

    // Register.
    if let Some(r) = x86_register(s) {
        return Ok((CompactOp::Reg(r), suffix));
    }
    // Immediate.
    if let Some(v) = parse_int(s) {
        return Ok((CompactOp::Imm(v), suffix));
    }
    // Label / symbol.
    Ok((CompactOp::Label(interner.intern(s)), suffix))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::parse_kernel_reference;

    fn both(asm: &str, isa: Isa) -> (Result<Kernel, ParseError>, Result<Kernel, ParseError>) {
        let mut arena = ParseArena::new();
        let compact = arena.parse(asm, isa).map(|k| arena.expand(&k));
        (compact, parse_kernel_reference(asm, isa))
    }

    fn assert_equivalent(asm: &str, isa: Isa) {
        let (compact, reference) = both(asm, isa);
        assert_eq!(compact, reference, "compact vs reference on:\n{asm}");
    }

    #[test]
    fn att_loop_matches_reference() {
        assert_equivalent(
            r#"
    .text
add_kernel:
    xorl %eax, %eax
.L2:
    vmovupd (%rsi,%rax), %zmm0
    vaddpd  (%rdx,%rax), %zmm0, %zmm1
    vmovupd %zmm1, (%rdi,%rax)
    addq    $64, %rax
    cmpq    %rcx, %rax
    jne     .L2
    ret
"#,
            Isa::X86,
        );
    }

    #[test]
    fn aarch64_loop_matches_reference() {
        assert_equivalent(
            r#"
.L3:
    ldr q0, [x1, x3]
    ld1d {z0.d - z1.d}, p0/z, [x0, x1, lsl #3]
    fadd v0.2d, v0.2d, v1.2d
    str q0, [x0, #16]!
    ldr q2, [x0], #16
    fmov d0, #1.5
    add x3, x3, #16
    cmp x3, x4
    b.ne .L3
"#,
            Isa::AArch64,
        );
    }

    #[test]
    fn intel_kernel_matches_reference() {
        assert_equivalent(
            "loop:\n  vmovupd zmm0, zmmword ptr [rax + rcx*8 + 16]\n  add qword ptr [rbx - 8], 5\n  add rcx, 64\n  cmp rcx, rdx\n  jne loop\n",
            Isa::X86,
        );
    }

    #[test]
    fn marked_regions_match_reference() {
        assert_equivalent(
            "    movq %r9, %r10\n# OSACA-BEGIN\n.L2:\n    addq $8, %rax\n    jne .L2\n# OSACA-END\n    ret\n",
            Isa::X86,
        );
        assert_equivalent(
            "// IACA START\n    fadd d0, d1, d2\n// IACA END\n    fmul d3, d4, d5\n",
            Isa::AArch64,
        );
        assert_equivalent("# OSACA-END\n addq $1, %rax\n# OSACA-BEGIN\n", Isa::X86);
    }

    #[test]
    fn nested_loops_match_reference() {
        assert_equivalent(
            ".Louter:\n movq %r8, %r9\n.Linner:\n addq $1, %r9\n cmpq %r10, %r9\n jne .Linner\n addq $1, %r8\n cmpq %r11, %r8\n jne .Louter\n",
            Isa::X86,
        );
    }

    #[test]
    fn errors_match_reference() {
        for asm in [
            "movq )(%rax, %rbx\n",
            "movq 8(%rax, %rbx\n",
            "movq %bogus, %rax\n",
            "movq 8(%rax,%rbx,3), %rcx\n",
            "vaddpd %zmm0, %zmm1, %zmm2\nmovq $zz, %rax\n",
        ] {
            let (compact, reference) = both(asm, Isa::X86);
            assert_eq!(compact, reference, "error equivalence on {asm:?}");
            assert!(reference.is_err());
        }
        for asm in ["ldr q0, [x0, #zz]\n", "ld1d {zq9.d}, p0/z, [x0]\n"] {
            let (compact, reference) = both(asm, Isa::AArch64);
            assert_eq!(compact, reference, "error equivalence on {asm:?}");
            assert!(reference.is_err());
        }
        // Intel detection must agree before the dialects even run.
        let (compact, reference) = both("mov rax, ][rbx\n", Isa::X86);
        assert_eq!(compact, reference);
        assert!(reference.is_err());
    }

    #[test]
    fn arena_reuse_preserves_results() {
        let mut arena = ParseArena::new();
        let a1 = arena
            .parse("addq $1, %rax\n", Isa::X86)
            .map(|k| arena.expand(&k))
            .unwrap();
        // Parse something else in between, then re-parse the first text.
        arena.parse("fadd d0, d1, d2\n", Isa::AArch64).unwrap();
        let a2 = arena
            .parse("addq $1, %rax\n", Isa::X86)
            .map(|k| arena.expand(&k))
            .unwrap();
        assert_eq!(a1, a2);
    }

    #[test]
    fn compact_accessors_expose_the_parse() {
        let mut arena = ParseArena::new();
        let k = arena
            .parse(".L1:\n addq $8, %rax\n jne .L1\n", Isa::X86)
            .unwrap();
        assert_eq!(k.len(), 2);
        assert!(!k.is_empty());
        let insts = arena.insts(&k);
        assert_eq!(arena.resolve(insts[0].mnemonic), "addq");
        assert_eq!(arena.ops(&insts[0]).len(), 2);
        assert_eq!(arena.resolve(k.loop_label.unwrap()), ".L1");
        assert!(arena.interned_strings() > 0);
    }
}
