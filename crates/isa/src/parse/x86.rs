//! AT&T-syntax x86-64 parser.

use super::{parse_int, split_operands, strip_comment, ParseError};
use crate::inst::{Instruction, Isa, PredMode};
use crate::operand::{MemOperand, Operand};
use crate::reg::x86_register;

/// Parse one line of AT&T assembly. Returns `Ok(None)` for blank lines,
/// labels, and directives.
pub fn parse_line_x86(line: &str, lineno: usize) -> Result<Option<Instruction>, ParseError> {
    let text = strip_comment(line, &["#"]);
    if text.is_empty() || text.ends_with(':') || text.starts_with('.') {
        return Ok(None);
    }
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (text, ""),
    };
    let mnemonic = mnemonic.to_ascii_lowercase();
    // `rep` string prefixes: fold prefix into the mnemonic.
    let (mnemonic, rest) = if mnemonic == "rep" || mnemonic == "repe" || mnemonic == "repne" {
        let (m2, r2) = match rest.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (rest, ""),
        };
        (format!("{mnemonic} {}", m2.to_ascii_lowercase()), r2)
    } else {
        (mnemonic, rest)
    };

    let mut predicate = None;
    let mut operands = Vec::new();
    for part in split_operands(rest) {
        let (op, mask) = parse_operand(part, lineno, line)?;
        if let Some(m) = mask {
            predicate = Some(m);
        }
        operands.push(op);
    }
    Ok(Some(Instruction {
        mnemonic,
        operands,
        isa: Isa::X86,
        predicate,
        line: lineno,
        raw: text.to_string(),
    }))
}

type MaskAnnotation = (crate::reg::Register, PredMode);

/// Parse one AT&T operand; returns the operand plus any `{%k}`/`{z}` mask
/// annotation found on it.
fn parse_operand(
    s: &str,
    lineno: usize,
    raw: &str,
) -> Result<(Operand, Option<MaskAnnotation>), ParseError> {
    let err = |m: &str| ParseError::new(lineno, m.to_string(), raw.to_string());
    let mut s = s.trim();
    // Indirect jump target `*%rax` / `*(%rax)` — strip the star.
    if let Some(rest) = s.strip_prefix('*') {
        s = rest.trim();
    }
    // EVEX masking: `%zmm0{%k1}{z}`.
    let mut mask: Option<MaskAnnotation> = None;
    if let Some(brace) = s.find('{') {
        let ann = &s[brace..];
        let zeroing = ann.contains("{z}");
        for piece in ann.split(['{', '}']) {
            if let Some(k) = piece.trim().strip_prefix('%') {
                if let Some(r) = x86_register(k) {
                    mask = Some((
                        r,
                        if zeroing {
                            PredMode::Zero
                        } else {
                            PredMode::Merge
                        },
                    ));
                }
            }
        }
        s = s[..brace].trim();
    }

    if let Some(imm) = s.strip_prefix('$') {
        let v = parse_int(imm).ok_or_else(|| err("bad immediate"))?;
        return Ok((Operand::Imm(v), mask));
    }
    if let Some(reg) = s.strip_prefix('%') {
        let r = x86_register(reg).ok_or_else(|| err("unknown register"))?;
        return Ok((Operand::Reg(r), mask));
    }
    // Memory operand `disp(base,index,scale)` — any component optional.
    if let Some(open) = s.find('(') {
        // `filter` also rejects a `)` *before* the `(` (e.g. `)(`), which
        // would otherwise panic when slicing the inner text below.
        let close = s
            .rfind(')')
            .filter(|&c| c > open)
            .ok_or_else(|| err("unbalanced memory operand"))?;
        let disp_str = &s[..open];
        let disp = if disp_str.trim().is_empty() {
            0
        } else {
            // Symbolic displacements (e.g. `arr(%rip)`) become 0.
            parse_int(disp_str).unwrap_or(0)
        };
        let inner = &s[open + 1..close];
        let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
        let get_reg = |p: &str| -> Result<Option<crate::reg::Register>, ParseError> {
            if p.is_empty() {
                return Ok(None);
            }
            let name = p
                .strip_prefix('%')
                .ok_or_else(|| err("expected register in memory operand"))?;
            Ok(Some(x86_register(name).ok_or_else(|| {
                err("unknown register in memory operand")
            })?))
        };
        let base = get_reg(parts.first().copied().unwrap_or(""))?;
        let index = get_reg(parts.get(1).copied().unwrap_or(""))?;
        let scale = match parts.get(2) {
            Some(p) if !p.is_empty() => parse_int(p)
                .filter(|s| [1, 2, 4, 8].contains(s))
                .ok_or_else(|| err("bad scale"))? as u8,
            _ => 1,
        };
        return Ok((
            Operand::Mem(MemOperand {
                base,
                index,
                scale,
                disp,
                ..Default::default()
            }),
            mask,
        ));
    }
    // Bare symbol: branch target or absolute symbolic memory reference.
    if s.chars()
        .next()
        .is_some_and(|c| c.is_ascii_digit() || c == '-')
    {
        // Absolute address used as memory (rare); treat as plain memory.
        let disp = parse_int(s).ok_or_else(|| err("bad absolute address"))?;
        return Ok((
            Operand::Mem(MemOperand {
                disp,
                scale: 1,
                ..Default::default()
            }),
            mask,
        ));
    }
    Ok((Operand::Label(s.to_string()), mask))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operand::Operand;
    use crate::reg::Register;

    fn p(s: &str) -> Instruction {
        parse_line_x86(s, 7).unwrap().unwrap()
    }

    #[test]
    fn labels_and_directives_skipped() {
        assert_eq!(parse_line_x86(".L2:", 1).unwrap(), None);
        assert_eq!(parse_line_x86(".align 16", 1).unwrap(), None);
        assert_eq!(parse_line_x86("", 1).unwrap(), None);
        assert_eq!(parse_line_x86("   # comment", 1).unwrap(), None);
    }

    #[test]
    fn simple_mov() {
        let i = p("movq %rax, %rbx");
        assert_eq!(i.mnemonic, "movq");
        assert_eq!(i.operands.len(), 2);
        assert_eq!(i.operands[0], Operand::Reg(Register::gpr(0, 64)));
        assert_eq!(i.operands[1], Operand::Reg(Register::gpr(3, 64)));
        assert_eq!(i.line, 7);
    }

    #[test]
    fn immediates() {
        let i = p("addq $-16, %rsp");
        assert_eq!(i.operands[0], Operand::Imm(-16));
        let i = p("andq $0xff, %rax");
        assert_eq!(i.operands[0], Operand::Imm(255));
    }

    #[test]
    fn full_memory_operand() {
        let i = p("vmovupd 8(%rsi,%rax,8), %zmm3");
        let m = i.operands[0].as_mem().unwrap();
        assert_eq!(m.disp, 8);
        assert_eq!(m.base, Some(Register::gpr(6, 64)));
        assert_eq!(m.index, Some(Register::gpr(0, 64)));
        assert_eq!(m.scale, 8);
    }

    #[test]
    fn partial_memory_operands() {
        let m = p("movq (%rax), %rbx");
        assert_eq!(
            m.operands[0].as_mem().unwrap().base,
            Some(Register::gpr(0, 64))
        );
        let m = p("movq (,%rax,4), %rbx");
        let mem = m.operands[0].as_mem().unwrap();
        assert_eq!(mem.base, None);
        assert_eq!(mem.index, Some(Register::gpr(0, 64)));
        let m = p("movq -24(%rbp), %rax");
        assert_eq!(m.operands[0].as_mem().unwrap().disp, -24);
    }

    #[test]
    fn rip_relative() {
        let i = p("movsd x(%rip), %xmm0");
        let m = i.operands[0].as_mem().unwrap();
        assert_eq!(m.base.unwrap().class, crate::reg::RegClass::Ip);
    }

    #[test]
    fn evex_masking() {
        let i = p("vaddpd %zmm1, %zmm2, %zmm3{%k1}{z}");
        assert_eq!(i.operands.len(), 3);
        let (k, mode) = i.predicate.unwrap();
        assert_eq!(k, Register::mask(1));
        assert_eq!(mode, PredMode::Zero);
    }

    #[test]
    fn branch_label() {
        let i = p("jne .L4");
        assert_eq!(i.operands[0], Operand::Label(".L4".into()));
        assert!(i.is_cond_branch());
    }

    #[test]
    fn indirect_jump() {
        let i = p("jmp *%rax");
        assert_eq!(i.operands[0], Operand::Reg(Register::gpr(0, 64)));
    }

    #[test]
    fn malformed_memory_operands_error_instead_of_panicking() {
        // `)` before `(` used to slice out of range.
        assert!(parse_line_x86("movq )(%rax, %rbx", 1).is_err());
        assert!(parse_line_x86("movq 8(%rax, %rbx", 1).is_err());
    }

    #[test]
    fn bad_register_errors() {
        assert!(parse_line_x86("movq %bogus, %rax", 3).is_err());
        let e = parse_line_x86("movq %bogus, %rax", 3).unwrap_err();
        assert_eq!(e.line, 3);
    }
}
