//! Assembly text parsing for both ISAs.
//!
//! The parsers accept compiler-emitted assembly (GCC/Clang/ICX for x86 in
//! AT&T syntax, GCC/armclang for AArch64), skipping directives and comments
//! and returning one [`Instruction`](crate::Instruction) per instruction
//! line.

mod aarch64;
mod x86;
mod x86_intel;

pub use aarch64::parse_line_aarch64;
pub(crate) use aarch64::parse_shift_modifier;
pub use x86::parse_line_x86;
pub use x86_intel::{looks_like_intel_x86, parse_line_x86_intel};

use std::fmt;

/// A parse failure with source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
    pub source_line: String,
}

impl ParseError {
    pub fn new(line: usize, message: impl Into<String>, source_line: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
            source_line: source_line.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}: {} in `{}`",
            self.line, self.message, self.source_line
        )
    }
}

impl std::error::Error for ParseError {}

/// What a single source line turned out to be.
#[derive(Debug, Clone, PartialEq)]
pub enum Line {
    /// An instruction.
    Inst(crate::Instruction),
    /// A label definition (`".L2"`).
    Label(String),
    /// Directive, comment, or blank — ignored by analysis.
    Ignored,
}

/// Strip comments (`#` for AT&T, `//` and `@` for ARM) outside of any
/// string literal, and trim.
pub(crate) fn strip_comment<'a>(line: &'a str, markers: &[&str]) -> &'a str {
    let mut cut = line.len();
    for m in markers {
        if let Some(pos) = line.find(m) {
            cut = cut.min(pos);
        }
    }
    line[..cut].trim()
}

/// Split an operand string on top-level commas (commas inside `()`, `[]`,
/// or `{}` do not separate operands).
pub(crate) fn split_operands(s: &str) -> Vec<&str> {
    split_operands_iter(s).collect()
}

/// Allocation-free form of [`split_operands`]: yields the same trimmed,
/// non-empty segments without building a `Vec`. This is what the compact
/// parse path ([`crate::compact`]) uses on its steady state.
pub(crate) fn split_operands_iter(s: &str) -> OperandSplit<'_> {
    OperandSplit { rest: Some(s) }
}

/// Iterator over top-level comma-separated operand segments.
#[derive(Clone)]
pub(crate) struct OperandSplit<'a> {
    rest: Option<&'a str>,
}

impl<'a> Iterator for OperandSplit<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        loop {
            let s = self.rest?;
            let mut depth = 0usize;
            let mut split_at = None;
            for (i, c) in s.char_indices() {
                match c {
                    '(' | '[' | '{' => depth += 1,
                    ')' | ']' | '}' => depth = depth.saturating_sub(1),
                    ',' if depth == 0 => {
                        split_at = Some(i);
                        break;
                    }
                    _ => {}
                }
            }
            let piece = match split_at {
                Some(i) => {
                    self.rest = Some(&s[i + 1..]);
                    &s[..i]
                }
                None => {
                    self.rest = None;
                    s
                }
            };
            let piece = piece.trim();
            if !piece.is_empty() {
                return Some(piece);
            }
            self.rest?;
        }
    }
}

/// Case-insensitive ASCII substring search without allocating a lowercased
/// copy. `needle` must already be ASCII-lowercase.
pub(crate) fn contains_ignore_ascii_case(hay: &str, needle: &str) -> bool {
    let (hay, needle) = (hay.as_bytes(), needle.as_bytes());
    if needle.is_empty() {
        return true;
    }
    if hay.len() < needle.len() {
        return false;
    }
    hay.windows(needle.len())
        .any(|w| w.eq_ignore_ascii_case(needle))
}

/// Parse an integer that may be decimal, hex (`0x`), or negative.
pub(crate) fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    let (neg, s) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        s.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_respects_brackets() {
        assert_eq!(
            split_operands("%rax, 8(%rbx,%rcx,4), %rdx"),
            vec!["%rax", "8(%rbx,%rcx,4)", "%rdx"]
        );
        assert_eq!(split_operands("q0, [x0, #16]"), vec!["q0", "[x0, #16]"]);
        assert_eq!(
            split_operands("{z0.d, z1.d}, p0/z, [x0]"),
            vec!["{z0.d, z1.d}", "p0/z", "[x0]"]
        );
        assert_eq!(split_operands(""), Vec::<&str>::new());
    }

    #[test]
    fn split_drops_empty_segments() {
        assert_eq!(split_operands("a,,b"), vec!["a", "b"]);
        assert_eq!(split_operands(",a,"), vec!["a"]);
        assert_eq!(split_operands(" , "), Vec::<&str>::new());
        assert_eq!(split_operands("a(b,c"), vec!["a(b,c"]);
    }

    #[test]
    fn case_insensitive_contains() {
        assert!(contains_ignore_ascii_case("QWORD PTR [rax]", "ptr ["));
        assert!(contains_ignore_ascii_case("ptr [", "ptr ["));
        assert!(!contains_ignore_ascii_case("ptr", "ptr ["));
        assert!(contains_ignore_ascii_case("x", ""));
    }

    #[test]
    fn int_parsing() {
        assert_eq!(parse_int("42"), Some(42));
        assert_eq!(parse_int("-8"), Some(-8));
        assert_eq!(parse_int("0x40"), Some(64));
        assert_eq!(parse_int("-0x10"), Some(-16));
        assert_eq!(parse_int("zz"), None);
    }

    #[test]
    fn comments_stripped() {
        assert_eq!(
            strip_comment("add x0, x1, x2 // hi", &["//", "@"]),
            "add x0, x1, x2"
        );
        assert_eq!(
            strip_comment("  movq %rax, %rbx # c", &["#"]),
            "movq %rax, %rbx"
        );
        assert_eq!(strip_comment("# only", &["#"]), "");
    }
}
