//! AArch64 assembly parser (base ISA, NEON, SVE).

use super::{parse_int, split_operands, strip_comment, ParseError};
use crate::inst::{Instruction, Isa, PredMode};
use crate::operand::{AddrMode, MemOperand, Operand};
use crate::reg::aarch64_register;

/// SVE vector length in bytes assumed for `mul vl` addressing (Neoverse V2).
const SVE_VL_BYTES: i64 = 16;

/// Parse one line of AArch64 assembly. Returns `Ok(None)` for blank lines,
/// labels, and directives.
pub fn parse_line_aarch64(line: &str, lineno: usize) -> Result<Option<Instruction>, ParseError> {
    let text = strip_comment(line, &["//", "@"]);
    if text.is_empty() || text.ends_with(':') || text.starts_with('.') {
        return Ok(None);
    }
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (text, ""),
    };
    let mnemonic = mnemonic.to_ascii_lowercase();

    let mut operands = Vec::new();
    let mut predicate = None;
    let parts = split_operands(rest);
    let mut i = 0;
    while i < parts.len() {
        let part = parts[i];
        // Shift/extend modifiers attached to the previous register operand:
        // `add x0, x1, x2, lsl #3`.
        if let Some((kind, amt)) = parse_shift_modifier(part) {
            let _ = kind;
            operands.push(Operand::Imm(amt));
            i += 1;
            continue;
        }
        match parse_operand(part, lineno, line)? {
            Parsed::Op(op) => operands.push(op),
            Parsed::Pred(r, mode) => {
                predicate = Some((r, mode));
                // Keep the predicate in the operand list too: it is read.
                operands.push(Operand::Reg(r));
            }
            Parsed::RegList(regs) => operands.extend(regs.into_iter().map(Operand::Reg)),
        }
        i += 1;
    }
    Ok(Some(Instruction {
        mnemonic,
        operands,
        isa: Isa::AArch64,
        predicate,
        line: lineno,
        raw: text.to_string(),
    }))
}

enum Parsed {
    Op(Operand),
    Pred(crate::reg::Register, PredMode),
    RegList(Vec<crate::reg::Register>),
}

pub(crate) fn parse_shift_modifier(s: &str) -> Option<(&str, i64)> {
    let s = s.trim();
    for kind in ["lsl", "lsr", "asr", "uxtw", "sxtw", "uxtx", "sxtx"] {
        if let Some(rest) = s.strip_prefix(kind) {
            let rest = rest.trim();
            if rest.is_empty() {
                return Some((kind, 0));
            }
            if let Some(imm) = rest.strip_prefix('#') {
                if let Some(v) = parse_int(imm) {
                    return Some((kind, v));
                }
            }
        }
    }
    None
}

fn parse_operand(s: &str, lineno: usize, raw: &str) -> Result<Parsed, ParseError> {
    let err = |m: &str| ParseError::new(lineno, m.to_string(), raw.to_string());
    let s = s.trim();

    // Register list `{v0.2d, v1.2d}` / `{z0.d}`.
    if let Some(inner) = s.strip_prefix('{') {
        let inner = inner
            .strip_suffix('}')
            .ok_or_else(|| err("unbalanced register list"))?;
        let mut regs = Vec::new();
        for piece in inner.split(',') {
            let piece = piece.trim();
            // Range form `{v0.2d - v3.2d}`.
            if let Some((a, b)) = piece.split_once('-') {
                let ra = aarch64_register(a.trim()).ok_or_else(|| err("bad register in list"))?;
                let rb = aarch64_register(b.trim()).ok_or_else(|| err("bad register in list"))?;
                for idx in ra.index..=rb.index {
                    regs.push(crate::reg::Register { index: idx, ..ra });
                }
            } else if !piece.is_empty() {
                regs.push(aarch64_register(piece).ok_or_else(|| err("bad register in list"))?);
            }
        }
        return Ok(Parsed::RegList(regs));
    }

    // Memory operand `[...]` optionally followed by `!` (pre-index) — the
    // post-index immediate arrives as a *separate* operand after the `]`,
    // e.g. `ldr q0, [x0], #16`; `split_operands` keeps `[x0]` and `#16`
    // apart, so post-index is stitched in `normalize_postindex` below via
    // the standalone immediate following a writeback-less memory operand.
    if s.starts_with('[') {
        let pre_index = s.ends_with('!');
        let body = s.trim_end_matches('!');
        let inner = body
            .strip_prefix('[')
            .and_then(|b| b.strip_suffix(']'))
            .ok_or_else(|| err("unbalanced memory operand"))?;
        let mut mem = MemOperand {
            scale: 1,
            ..Default::default()
        };
        let pieces: Vec<&str> = split_operands(inner);
        let mut piece_iter = pieces.iter().peekable();
        if let Some(first) = piece_iter.next() {
            mem.base =
                Some(aarch64_register(first.trim()).ok_or_else(|| err("bad base register"))?);
        }
        let mut mul_vl = false;
        while let Some(piece) = piece_iter.next() {
            let piece = piece.trim();
            if let Some(imm) = piece.strip_prefix('#') {
                mem.disp = parse_int(imm).ok_or_else(|| err("bad displacement"))?;
            } else if let Some((kind, amt)) = parse_shift_modifier(piece) {
                if kind == "lsl" {
                    mem.scale = 1u8 << amt.clamp(0, 3);
                }
            } else if piece == "mul vl" || piece == "mul" {
                // `[x0, #1, mul vl]` — GCC may split "mul vl" on the comma.
                mul_vl = true;
                if piece == "mul" {
                    let _ = piece_iter.peek(); // the "vl" token, if split
                }
            } else if piece == "vl" {
                mul_vl = true;
            } else if let Some(r) = aarch64_register(piece) {
                mem.index = Some(r);
            } else if let Some(v) = parse_int(piece) {
                mem.disp = v;
            } else {
                return Err(err("bad memory operand piece"));
            }
        }
        if mul_vl {
            mem.disp *= SVE_VL_BYTES;
        }
        if pre_index {
            mem.mode = AddrMode::PreIndex;
            mem.writeback = true;
        }
        return Ok(Parsed::Op(Operand::Mem(mem)));
    }

    // Immediate `#imm` or `#fp`.
    if let Some(imm) = s.strip_prefix('#') {
        if let Some(v) = parse_int(imm) {
            return Ok(Parsed::Op(Operand::Imm(v)));
        }
        if let Ok(f) = imm.parse::<f64>() {
            return Ok(Parsed::Op(Operand::FpImm(f)));
        }
        return Err(err("bad immediate"));
    }

    // Predicate with mode suffix `p0/z` or `p0/m`.
    if let Some((p, mode)) = s.split_once('/') {
        if let Some(r) = aarch64_register(p) {
            if r.class == crate::reg::RegClass::Pred {
                let mode = match mode.trim() {
                    "z" => PredMode::Zero,
                    "m" => PredMode::Merge,
                    _ => PredMode::Plain,
                };
                return Ok(Parsed::Pred(r, mode));
            }
        }
    }

    // Plain register (possibly with arrangement suffix).
    if let Some(r) = aarch64_register(s) {
        if r.class == crate::reg::RegClass::Pred {
            return Ok(Parsed::Pred(r, PredMode::Plain));
        }
        return Ok(Parsed::Op(Operand::Reg(r)));
    }

    // Bare integer (e.g. `lsl x0, x1, 3` GCC style without '#').
    if let Some(v) = parse_int(s) {
        return Ok(Parsed::Op(Operand::Imm(v)));
    }

    // Branch target / symbol.
    Ok(Parsed::Op(Operand::Label(s.to_string())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operand::Operand;
    use crate::reg::{RegClass, Register};

    fn p(s: &str) -> Instruction {
        parse_line_aarch64(s, 3).unwrap().unwrap()
    }

    #[test]
    fn skip_non_instructions() {
        assert_eq!(parse_line_aarch64(".L2:", 1).unwrap(), None);
        assert_eq!(parse_line_aarch64("\t.cfi_startproc", 1).unwrap(), None);
        assert_eq!(parse_line_aarch64("// c", 1).unwrap(), None);
    }

    #[test]
    fn three_operand_fp() {
        let i = p("fadd v0.2d, v1.2d, v2.2d");
        assert_eq!(i.mnemonic, "fadd");
        assert_eq!(i.operands.len(), 3);
        assert_eq!(i.operands[0], Operand::Reg(Register::vec(0, 128)));
    }

    #[test]
    fn loads_with_offsets() {
        let i = p("ldr q0, [x0, #32]");
        let m = i.operands[1].as_mem().unwrap();
        assert_eq!(m.disp, 32);
        assert_eq!(m.base.unwrap(), Register::gpr(0, 64));

        let i = p("ldr d1, [x0, x1, lsl #3]");
        let m = i.operands[1].as_mem().unwrap();
        assert_eq!(m.index.unwrap(), Register::gpr(1, 64));
        assert_eq!(m.scale, 8);
    }

    #[test]
    fn pre_index_writeback() {
        let i = p("ldr q0, [x0, #16]!");
        let m = i.operands[1].as_mem().unwrap();
        assert_eq!(m.mode, AddrMode::PreIndex);
        assert!(m.writeback);
    }

    #[test]
    fn post_index_as_separate_imm() {
        let i = p("ldr q0, [x0], #16");
        // Post-index: memory operand plus trailing immediate.
        assert!(i.operands[1].is_mem());
        assert_eq!(i.operands[2], Operand::Imm(16));
    }

    #[test]
    fn sve_predicated_load() {
        let i = p("ld1d {z0.d}, p0/z, [x0, x1, lsl #3]");
        assert_eq!(i.operands[0], Operand::Reg(Register::vec(0, 128)));
        let (pr, mode) = i.predicate.unwrap();
        assert_eq!(pr, Register::pred(0));
        assert_eq!(mode, PredMode::Zero);
        assert!(i.is_load());
    }

    #[test]
    fn sve_mul_vl_displacement() {
        let i = p("ld1d {z1.d}, p0/z, [x0, #1, mul vl]");
        let m = i.operands.iter().find_map(|o| o.as_mem()).unwrap();
        assert_eq!(m.disp, 16);
    }

    #[test]
    fn register_lists_flatten() {
        let i = p("ld2 {v0.2d, v1.2d}, [x0]");
        assert_eq!(
            i.operands.iter().filter(|o| o.as_reg().is_some()).count(),
            2
        );
    }

    #[test]
    fn whilelo_predicates() {
        let i = p("whilelo p0.d, x3, x4");
        assert_eq!(i.operands[0].as_reg().unwrap().class, RegClass::Pred);
    }

    #[test]
    fn shift_modifier_operand() {
        let i = p("add x0, x1, x2, lsl #3");
        assert_eq!(i.operands.len(), 4);
        assert_eq!(i.operands[3], Operand::Imm(3));
    }

    #[test]
    fn fp_immediates() {
        let i = p("fmov d0, #1.0");
        assert_eq!(i.operands[1], Operand::FpImm(1.0));
    }

    #[test]
    fn zero_register() {
        let i = p("mov x0, xzr");
        assert!(i.operands[1].as_reg().unwrap().is_zero_reg());
    }

    #[test]
    fn conditional_branch() {
        let i = p("b.ne .L2");
        assert!(i.is_cond_branch());
        assert_eq!(i.base_mnemonic(), "b");
    }
}
