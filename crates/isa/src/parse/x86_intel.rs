//! Intel-syntax x86-64 parser (the syntax llvm-mca consumes by default and
//! MSVC/objdump `-M intel` emit). Lines are normalized to the crate's
//! internal AT&T-ordered representation: operands are reversed
//! (destination-last) and memory width directives (`qword ptr`) become
//! AT&T width suffixes on integer mnemonics, so all downstream semantics
//! (dataflow, database lookup) work unchanged.

use super::{contains_ignore_ascii_case, parse_int, split_operands, strip_comment, ParseError};
use crate::inst::{Instruction, Isa};
use crate::operand::{MemOperand, Operand};
use crate::reg::x86_register;

/// Heuristic: is this x86 listing written in Intel syntax? (No `%` sigils,
/// and either `ptr [` directives or bare register names appear.)
/// Allocation-free: the case-insensitive checks scan in place.
pub fn looks_like_intel_x86(asm: &str) -> bool {
    if asm.contains('%') {
        return false;
    }
    contains_ignore_ascii_case(asm, "ptr [")
        || asm.contains('[')
        || [
            " rax", " rbx", " rcx", " rdx", " rsi", " rdi", " xmm", " ymm", " zmm",
        ]
        .iter()
        .any(|r| contains_ignore_ascii_case(asm, r))
}

/// Parse one line of Intel-syntax assembly. Returns `Ok(None)` for blank
/// lines, labels, and directives.
pub fn parse_line_x86_intel(line: &str, lineno: usize) -> Result<Option<Instruction>, ParseError> {
    let text = strip_comment(line, &["#", ";"]);
    if text.is_empty() || text.ends_with(':') || text.starts_with('.') {
        return Ok(None);
    }
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (text, ""),
    };
    let mut mnemonic = mnemonic.to_ascii_lowercase();

    let mut operands = Vec::new();
    let mut width_suffix: Option<char> = None;
    for part in split_operands(rest) {
        let (op, suffix) = parse_operand(part, lineno, line)?;
        if suffix.is_some() {
            width_suffix = suffix;
        }
        operands.push(op);
    }
    // Intel order is destination-first; the internal representation is
    // AT&T destination-last.
    operands.reverse();

    // Attach the ptr-directive width to integer mnemonics so memory-only
    // forms keep their access size (`mov qword ptr [rax], 5` → `movq`).
    if let Some(sfx) = width_suffix {
        let has_reg = operands.iter().any(|o| o.as_reg().is_some());
        let simd = mnemonic.starts_with('v')
            || mnemonic.ends_with("pd")
            || mnemonic.ends_with("ps")
            || mnemonic.ends_with("sd")
            || mnemonic.ends_with("ss");
        if !has_reg && !simd {
            mnemonic.push(sfx);
        }
    }

    Ok(Some(Instruction {
        mnemonic,
        operands,
        isa: Isa::X86,
        predicate: None,
        line: lineno,
        raw: text.to_string(),
    }))
}

/// Parse one Intel operand; returns the operand plus a width-suffix letter
/// if a `ptr` directive was seen.
fn parse_operand(s: &str, lineno: usize, raw: &str) -> Result<(Operand, Option<char>), ParseError> {
    let err = |m: &str| ParseError::new(lineno, m.to_string(), raw.to_string());
    let mut s = s.trim();
    let mut suffix = None;

    // Width directives: `qword ptr [..]`.
    for (dir, sfx) in [
        ("byte", 'b'),
        ("word", 'w'),
        ("dword", 'l'),
        ("qword", 'q'),
        ("xmmword", 'x'),
        ("ymmword", 'y'),
        ("zmmword", 'z'),
    ] {
        // Case-insensitive prefix match without lowercasing a copy; a match
        // is all-ASCII, so the byte offsets below are char boundaries.
        if s.len() >= dir.len() && s.as_bytes()[..dir.len()].eq_ignore_ascii_case(dir.as_bytes()) {
            let rest = s[dir.len()..].trim_start();
            if rest.len() >= 3 && rest.as_bytes()[..3].eq_ignore_ascii_case(b"ptr") {
                let after = &rest[3..];
                let consumed = s.len() - after.len();
                s = s[consumed..].trim_start();
                if matches!(sfx, 'b' | 'w' | 'l' | 'q') {
                    suffix = Some(sfx);
                }
                break;
            }
        }
    }

    // Memory operand `[base + index*scale + disp]`.
    if let Some(open) = s.find('[') {
        // `filter` also rejects a `]` *before* the `[` (e.g. `][`), which
        // would otherwise panic when slicing the inner text below.
        let close = s
            .rfind(']')
            .filter(|&c| c > open)
            .ok_or_else(|| err("unbalanced memory operand"))?;
        let inner = &s[open + 1..close];
        let mut mem = MemOperand {
            scale: 1,
            ..Default::default()
        };
        // Split on +/- keeping the sign with each term.
        let mut terms: Vec<(i64, String)> = Vec::new();
        let mut sign = 1i64;
        let mut cur = String::new();
        for c in inner.chars() {
            match c {
                '+' => {
                    if !cur.trim().is_empty() {
                        terms.push((sign, cur.trim().to_string()));
                    }
                    cur.clear();
                    sign = 1;
                }
                '-' => {
                    if !cur.trim().is_empty() {
                        terms.push((sign, cur.trim().to_string()));
                    }
                    cur.clear();
                    sign = -1;
                }
                _ => cur.push(c),
            }
        }
        if !cur.trim().is_empty() {
            terms.push((sign, cur.trim().to_string()));
        }
        for (sign, term) in terms {
            if let Some((r, sc)) = term.split_once('*') {
                let reg = x86_register(r.trim()).ok_or_else(|| err("bad index register"))?;
                let scale = parse_int(sc.trim())
                    .filter(|v| [1, 2, 4, 8].contains(v))
                    .ok_or_else(|| err("bad scale"))?;
                mem.index = Some(reg);
                mem.scale = scale as u8;
            } else if let Some(reg) = x86_register(&term) {
                if mem.base.is_none() {
                    mem.base = Some(reg);
                } else if mem.index.is_none() {
                    mem.index = Some(reg);
                } else {
                    return Err(err("too many registers in memory operand"));
                }
            } else if let Some(v) = parse_int(&term) {
                mem.disp += sign * v;
            } else {
                // Symbolic displacement (`[rip + sym]` keeps disp 0).
                continue;
            }
        }
        return Ok((Operand::Mem(mem), suffix));
    }

    // Register.
    if let Some(r) = x86_register(s) {
        return Ok((Operand::Reg(r), suffix));
    }
    // Immediate.
    if let Some(v) = parse_int(s) {
        return Ok((Operand::Imm(v), suffix));
    }
    // Label / symbol.
    Ok((Operand::Label(s.to_string()), suffix))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Register;

    fn p(s: &str) -> Instruction {
        parse_line_x86_intel(s, 1).unwrap().unwrap()
    }

    #[test]
    fn operand_order_is_normalized_to_att() {
        // Intel: add rax, rbx → rax += rbx. Internal: dest last.
        let i = p("add rax, rbx");
        assert_eq!(i.operands[0], Operand::Reg(Register::gpr(3, 64))); // src rbx
        assert_eq!(i.operands[1], Operand::Reg(Register::gpr(0, 64))); // dst rax
        let df = crate::dataflow::dataflow(&i);
        assert!(df.writes.iter().any(|r| r.index == 0));
        assert!(df.reads.iter().any(|r| r.index == 3));
    }

    #[test]
    fn memory_operands() {
        let i = p("mov rax, qword ptr [rbx + rcx*8 + 16]");
        let m = i.operands[0].as_mem().unwrap();
        assert_eq!(m.base.unwrap(), Register::gpr(3, 64));
        assert_eq!(m.index.unwrap(), Register::gpr(1, 64));
        assert_eq!(m.scale, 8);
        assert_eq!(m.disp, 16);
        assert!(i.is_load());
    }

    #[test]
    fn negative_displacement() {
        let i = p("mov rax, qword ptr [rbp - 24]");
        assert_eq!(i.operands[0].as_mem().unwrap().disp, -24);
    }

    #[test]
    fn store_direction() {
        let i = p("vmovupd zmmword ptr [rdi + rax], zmm2");
        assert!(i.is_store());
        assert!(!i.is_load());
        assert_eq!(i.mem_access_bytes(), 64);
    }

    #[test]
    fn memory_only_form_gets_width_suffix() {
        let i = p("add qword ptr [rax], 5");
        assert_eq!(i.mnemonic, "addq");
        assert!(i.is_load() && i.is_store());
        assert_eq!(i.mem_access_bytes(), 8);
    }

    #[test]
    fn fma_normalizes_like_att() {
        let intel = p("vfmadd231pd zmm3, zmm1, zmm2");
        let att = crate::parse::parse_line_x86("vfmadd231pd %zmm2, %zmm1, %zmm3", 1)
            .unwrap()
            .unwrap();
        assert_eq!(intel.operands, att.operands);
        let df = crate::dataflow::dataflow(&intel);
        assert!(df.reads.iter().any(|r| r.index == 3), "accumulator read");
        assert!(df.writes.iter().any(|r| r.index == 3));
    }

    #[test]
    fn branches_and_immediates() {
        let i = p("jne .L2");
        assert!(i.is_cond_branch());
        let i = p("cmp rax, 0x40");
        assert_eq!(i.operands[0], Operand::Imm(64));
    }

    #[test]
    fn malformed_memory_operands_error_instead_of_panicking() {
        // `]` before `[` used to slice out of range.
        assert!(parse_line_x86_intel("mov rax, ][rbx", 1).is_err());
        assert!(parse_line_x86_intel("mov rax, [rbx", 1).is_err());
    }

    #[test]
    fn syntax_detection() {
        assert!(looks_like_intel_x86("add rax, rbx\n"));
        assert!(looks_like_intel_x86("vmovupd zmm0, zmmword ptr [rax]\n"));
        assert!(!looks_like_intel_x86("addq %rax, %rbx\n"));
        assert!(!looks_like_intel_x86(""));
    }

    #[test]
    fn semicolon_comments() {
        let i = p("add rax, rbx ; comment");
        assert_eq!(i.operands.len(), 2);
    }
}
