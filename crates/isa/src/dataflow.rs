//! Per-instruction dataflow extraction: which registers an instruction
//! reads and writes. This feeds the critical-path and loop-carried
//! dependency analyses in `incore` and the register renamer in `exec`.

use crate::inst::{Instruction, Isa, PredMode};
use crate::operand::Operand;
use crate::reg::{RegClass, Register};

/// Register and memory effects of one instruction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataflow {
    pub reads: Vec<Register>,
    pub writes: Vec<Register>,
    pub mem_read: bool,
    pub mem_write: bool,
    // Sorted packed-identity keys mirroring `reads`/`writes`, so each
    // insert is a binary-search probe instead of an alias scan over every
    // register accumulated so far (the old path was O(n²) per instruction
    // across the whole extraction).
    read_keys: KeySet,
    write_keys: KeySet,
}

impl Dataflow {
    fn read(&mut self, r: Register) {
        if !r.is_zero_reg() && self.read_keys.insert_probe(&self.reads, r) {
            self.reads.push(r);
        }
    }
    fn write(&mut self, r: Register) {
        if !r.is_zero_reg() && self.write_keys.insert_probe(&self.writes, r) {
            self.writes.push(r);
        }
    }
    fn clear_reads(&mut self) {
        self.reads.clear();
        self.read_keys = KeySet::default();
    }
}

/// Inline sorted set of packed `(class, index)` register identities — the
/// same identity [`Register::aliases`] compares. Capacity covers any real
/// instruction (≤ a handful of distinct registers); on the off chance it
/// fills up, membership falls back to the exact linear alias scan.
#[derive(Debug, Clone, Default, PartialEq)]
struct KeySet {
    len: u8,
    keys: [u16; KEYSET_CAP],
}

const KEYSET_CAP: usize = 12;

fn reg_key(r: &Register) -> u16 {
    let (class, index) = r.id();
    ((class as u16) << 8) | index as u16
}

impl KeySet {
    /// Probe-and-insert: returns `true` when `r` was not yet present (the
    /// caller then appends it to the mirrored `Vec<Register>`).
    fn insert_probe(&mut self, regs: &[Register], r: Register) -> bool {
        let key = reg_key(&r);
        let live = &self.keys[..self.len as usize];
        match live.binary_search(&key) {
            Ok(_) => false,
            Err(pos) => {
                if (self.len as usize) < KEYSET_CAP {
                    self.keys.copy_within(pos..self.len as usize, pos + 1);
                    self.keys[pos] = key;
                    self.len += 1;
                    true
                } else {
                    // Saturated: the keys only cover the first KEYSET_CAP
                    // registers, so answer from the authoritative list.
                    !regs.iter().any(|x| x.aliases(&r))
                }
            }
        }
    }
}

/// Compute the dataflow of an instruction.
pub fn dataflow(inst: &Instruction) -> Dataflow {
    match inst.isa {
        Isa::X86 => dataflow_x86(inst),
        Isa::AArch64 => dataflow_aarch64(inst),
    }
}

fn dataflow_x86(inst: &Instruction) -> Dataflow {
    let mut df = Dataflow {
        mem_read: inst.is_load(),
        mem_write: inst.is_store(),
        ..Default::default()
    };
    let m = inst.mnemonic.as_str();
    let base = strip_suffix_x86(m);

    if inst.is_nop() {
        return df;
    }

    // Address registers of every memory operand are read regardless of
    // load/store direction.
    for op in &inst.operands {
        if let Operand::Mem(mem) = op {
            for r in mem.address_regs() {
                df.read(r);
            }
        }
    }

    // Mask predicate is read; with merge-masking the destination is, too.
    if let Some((k, mode)) = inst.predicate {
        df.read(k);
        if mode == PredMode::Merge {
            if let Some(Operand::Reg(d)) = inst.operands.last() {
                df.read(*d);
            }
        }
    }

    if inst.is_zero_idiom() {
        // Dependency-breaking: writes the destination, reads nothing.
        if let Some(Operand::Reg(d)) = inst.operands.last() {
            df.write(*d);
        }
        if sets_flags_x86(base) {
            df.write(Register::flags());
        }
        df.clear_reads();
        return df;
    }

    if inst.is_branch() {
        if inst.is_cond_branch() {
            df.read(Register::flags());
        }
        for op in &inst.operands {
            if let Operand::Reg(r) = op {
                df.read(*r);
            }
        }
        return df;
    }

    match base {
        "cmp" | "test" | "ucomisd" | "ucomiss" | "comisd" | "comiss" | "vucomisd" | "vucomiss" => {
            for op in &inst.operands {
                if let Operand::Reg(r) = op {
                    df.read(*r);
                }
            }
            df.write(Register::flags());
            return df;
        }
        "push" => {
            if let Some(Operand::Reg(r)) = inst.operands.first() {
                df.read(*r);
            }
            let rsp = Register::gpr(4, 64);
            df.read(rsp);
            df.write(rsp);
            df.mem_write = true;
            return df;
        }
        "pop" => {
            if let Some(Operand::Reg(r)) = inst.operands.first() {
                df.write(*r);
            }
            let rsp = Register::gpr(4, 64);
            df.read(rsp);
            df.write(rsp);
            df.mem_read = true;
            return df;
        }
        "div" | "idiv" => {
            // One-operand divide: implicit rdx:rax / operand → rax, rdx.
            let rax = Register::gpr(0, 64);
            let rdx = Register::gpr(2, 64);
            df.read(rax);
            df.read(rdx);
            df.write(rax);
            df.write(rdx);
            for op in &inst.operands {
                if let Operand::Reg(r) = op {
                    df.read(*r);
                }
            }
            df.write(Register::flags());
            return df;
        }
        _ => {}
    }

    // General rule: last operand is the destination, everything else a
    // source. Memory destination means no register write.
    if let Some((last, rest)) = inst.operands.split_last() {
        for op in rest {
            if let Operand::Reg(r) = op {
                df.read(*r);
            }
        }
        match last {
            Operand::Reg(d) => {
                df.write(*d);
                if dest_is_source_x86(inst, base) {
                    df.read(*d);
                }
            }
            Operand::Mem(_) => {
                // RMW memory destination already accounted via is_load.
            }
            _ => {}
        }
    }

    // Single-operand RMW forms (`incq %rax`).
    if inst.operands.len() == 1 && matches!(base, "inc" | "dec" | "neg" | "not") {
        if let Some(Operand::Reg(r)) = inst.operands.first() {
            df.read(*r);
        }
    }

    if sets_flags_x86(base) {
        df.write(Register::flags());
    }
    if reads_flags_x86(base) {
        df.read(Register::flags());
    }
    df
}

/// AT&T width-suffix stripping shared with `Instruction::norm_mnemonic`.
fn strip_suffix_x86(m: &str) -> &str {
    crate::inst::strip_att_suffix(m)
}

fn sets_flags_x86(base: &str) -> bool {
    matches!(
        base,
        "add"
            | "sub"
            | "and"
            | "or"
            | "xor"
            | "inc"
            | "dec"
            | "neg"
            | "cmp"
            | "test"
            | "imul"
            | "mul"
            | "shl"
            | "shr"
            | "sar"
            | "adc"
            | "sbb"
    )
}

fn reads_flags_x86(base: &str) -> bool {
    base.starts_with("cmov") || base.starts_with("set") || matches!(base, "adc" | "sbb")
}

/// Whether an x86 destination register is also an input.
fn dest_is_source_x86(inst: &Instruction, base: &str) -> bool {
    // Two-operand RMW integer & legacy-SSE arithmetic.
    if matches!(
        base,
        "add" | "sub" | "and" | "or" | "xor" | "imul" | "shl" | "shr" | "sar" | "adc" | "sbb"
    ) {
        return true;
    }
    let m = inst.mnemonic.as_str();
    // FMA reads its accumulator destination.
    if m.starts_with("vfmadd")
        || m.starts_with("vfmsub")
        || m.starts_with("vfnmadd")
        || m.starts_with("vfnmsub")
    {
        return true;
    }
    // Legacy (non-VEX) SSE two-operand arithmetic is RMW by encoding.
    if !m.starts_with('v') && inst.operands.len() == 2 {
        const SSE_RMW: [&str; 16] = [
            "addpd", "addps", "addsd", "addss", "subpd", "subps", "subsd", "subss", "mulpd",
            "mulps", "mulsd", "mulss", "divpd", "divps", "divsd", "divss",
        ];
        if SSE_RMW.contains(&m)
            || m.starts_with("p") && !m.starts_with("pop") && !m.starts_with("push")
        {
            return true;
        }
        if matches!(
            m,
            "maxpd"
                | "maxsd"
                | "minpd"
                | "minsd"
                | "andpd"
                | "andps"
                | "orpd"
                | "orps"
                | "xorpd"
                | "xorps"
                | "unpcklpd"
                | "unpckhpd"
                | "shufpd"
                | "sqrtsd"
                | "sqrtpd"
        ) {
            return !matches!(m, "sqrtsd" | "sqrtpd");
        }
    }
    false
}

fn dataflow_aarch64(inst: &Instruction) -> Dataflow {
    let mut df = Dataflow {
        mem_read: inst.is_load(),
        mem_write: inst.is_store(),
        ..Default::default()
    };
    let base = inst.base_mnemonic().to_string();
    let base = base.as_str();

    if inst.is_nop() {
        return df;
    }

    for op in &inst.operands {
        if let Operand::Mem(mem) = op {
            for r in mem.address_regs() {
                df.read(r);
            }
            if mem.writeback {
                if let Some(b) = mem.base {
                    df.write(b);
                }
            }
        }
    }
    // Post-index: a memory operand followed by a bare immediate updates the
    // base register.
    if let Some(mem_pos) = inst.mem_position() {
        if matches!(inst.operands.get(mem_pos + 1), Some(Operand::Imm(_)))
            && (inst.is_load() || inst.is_store())
        {
            if let Some(b) = inst.operands[mem_pos].as_mem().and_then(|m| m.base) {
                df.write(b);
            }
        }
    }

    if let Some((p, mode)) = inst.predicate {
        df.read(p);
        if mode == PredMode::Merge {
            if let Some(Operand::Reg(d)) = inst.operands.first() {
                df.read(*d);
            }
        }
    }

    if inst.is_zero_idiom() {
        if let Some(Operand::Reg(d)) = inst.operands.first() {
            df.write(*d);
        }
        df.clear_reads();
        return df;
    }

    if inst.is_branch() {
        if inst.is_cond_branch() && matches!(base, "b") {
            df.read(Register::flags());
        }
        for op in &inst.operands {
            if let Operand::Reg(r) = op {
                df.read(*r);
            }
        }
        return df;
    }

    match base {
        // Stores: every register operand is a source.
        _ if base.starts_with("st") => {
            for op in &inst.operands {
                if let Operand::Reg(r) = op {
                    df.read(*r);
                }
            }
            return df;
        }
        // Loads: leading register operands (before the memory operand) are
        // destinations.
        _ if base.starts_with("ld") => {
            let mem_pos = inst.mem_position().unwrap_or(inst.operands.len());
            for (i, op) in inst.operands.iter().enumerate() {
                if let Operand::Reg(r) = op {
                    if i < mem_pos && r.class != RegClass::Pred {
                        df.write(*r);
                    } else if r.class == RegClass::Pred {
                        df.read(*r);
                    }
                }
            }
            return df;
        }
        "cmp" | "cmn" | "tst" | "fcmp" | "fcmpe" | "ccmp" => {
            for op in &inst.operands {
                if let Operand::Reg(r) = op {
                    df.read(*r);
                }
            }
            df.write(Register::flags());
            if base == "ccmp" {
                df.read(Register::flags());
            }
            return df;
        }
        "whilelo" | "whilelt" | "whilele" | "whilels" => {
            // Writes predicate + flags, reads the two GPR bounds.
            if let Some(Operand::Reg(p)) = inst.operands.first() {
                df.write(*p);
            }
            for op in &inst.operands[1..] {
                if let Operand::Reg(r) = op {
                    df.read(*r);
                }
            }
            df.write(Register::flags());
            return df;
        }
        "ptrue" | "pfalse" => {
            if let Some(Operand::Reg(p)) = inst.operands.first() {
                df.write(*p);
            }
            return df;
        }
        "prfm" | "prfd" | "prfw" => return df,
        _ => {}
    }

    // General rule: first operand is the destination, rest are sources.
    if let Some((first, rest)) = inst.operands.split_first() {
        if let Operand::Reg(d) = first {
            df.write(*d);
            if dest_is_source_aarch64(base) {
                df.read(*d);
            }
        }
        for op in rest {
            if let Operand::Reg(r) = op {
                df.read(*r);
            }
        }
    }

    if sets_flags_aarch64(base) {
        df.write(Register::flags());
    }
    if reads_flags_aarch64(base, &inst.mnemonic) {
        df.read(Register::flags());
    }
    df
}

fn dest_is_source_aarch64(base: &str) -> bool {
    // Multiply-accumulate families read their accumulator destination, and
    // the SVE element/predicate-count increments (`incd x4` = x4 += #lanes)
    // are read-modify-write on theirs.
    matches!(
        base,
        "fmla"
            | "fmls"
            | "mla"
            | "mls"
            | "bfmlalb"
            | "bfmlalt"
            | "sdot"
            | "udot"
            | "fcadd"
            | "fcmla"
            | "ins"
            | "incb"
            | "inch"
            | "incw"
            | "incd"
            | "incp"
            | "decb"
            | "dech"
            | "decw"
            | "decd"
            | "decp"
    )
}

fn sets_flags_aarch64(base: &str) -> bool {
    base.ends_with('s') && matches!(base, "adds" | "subs" | "ands" | "bics" | "negs")
}

fn reads_flags_aarch64(base: &str, _full: &str) -> bool {
    matches!(
        base,
        "csel" | "csinc" | "csinv" | "csneg" | "cset" | "csetm" | "fcsel" | "cinc" | "adc" | "sbc"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_line_aarch64, parse_line_x86};

    fn x86(s: &str) -> Dataflow {
        dataflow(&parse_line_x86(s, 1).unwrap().unwrap())
    }
    fn a64(s: &str) -> Dataflow {
        dataflow(&parse_line_aarch64(s, 1).unwrap().unwrap())
    }
    fn has(v: &[Register], r: Register) -> bool {
        v.iter().any(|x| x.aliases(&r))
    }

    #[test]
    fn x86_mov_is_not_rmw() {
        let df = x86("movq %rax, %rbx");
        assert!(has(&df.reads, Register::gpr(0, 64)));
        assert!(has(&df.writes, Register::gpr(3, 64)));
        assert!(!has(&df.reads, Register::gpr(3, 64)));
    }

    #[test]
    fn x86_add_is_rmw_and_sets_flags() {
        let df = x86("addq %rax, %rbx");
        assert!(has(&df.reads, Register::gpr(3, 64)));
        assert!(has(&df.writes, Register::gpr(3, 64)));
        assert!(has(&df.writes, Register::flags()));
    }

    #[test]
    fn x86_vex_three_op_not_rmw() {
        let df = x86("vaddpd %zmm0, %zmm1, %zmm2");
        assert!(!has(&df.reads, Register::vec(2, 512)));
        assert!(has(&df.writes, Register::vec(2, 512)));
    }

    #[test]
    fn x86_fma_reads_accumulator() {
        let df = x86("vfmadd231pd %zmm0, %zmm1, %zmm2");
        assert!(has(&df.reads, Register::vec(2, 512)));
        assert!(has(&df.writes, Register::vec(2, 512)));
    }

    #[test]
    fn x86_legacy_sse_rmw() {
        let df = x86("addpd %xmm0, %xmm1");
        assert!(has(&df.reads, Register::vec(1, 128)));
        assert!(has(&df.writes, Register::vec(1, 128)));
    }

    #[test]
    fn x86_zero_idiom_breaks_dependency() {
        let df = x86("xorl %eax, %eax");
        assert!(df.reads.is_empty());
        assert!(has(&df.writes, Register::gpr(0, 64)));
    }

    #[test]
    fn x86_load_address_regs_read() {
        let df = x86("vmovupd 8(%rsi,%rax,8), %zmm3");
        assert!(has(&df.reads, Register::gpr(6, 64)));
        assert!(has(&df.reads, Register::gpr(0, 64)));
        assert!(df.mem_read && !df.mem_write);
    }

    #[test]
    fn x86_store_reads_data() {
        let df = x86("vmovupd %zmm3, (%rdi)");
        assert!(has(&df.reads, Register::vec(3, 512)));
        assert!(df.mem_write && !df.mem_read);
        assert!(df.writes.is_empty());
    }

    #[test]
    fn x86_cmp_and_jcc_flags_chain() {
        let c = x86("cmpq %rcx, %rax");
        assert!(has(&c.writes, Register::flags()));
        let j = x86("jne .L2");
        assert!(has(&j.reads, Register::flags()));
    }

    #[test]
    fn x86_div_implicit_regs() {
        let df = x86("idivq %rcx");
        assert!(has(&df.reads, Register::gpr(0, 64)));
        assert!(has(&df.reads, Register::gpr(2, 64)));
        assert!(has(&df.writes, Register::gpr(0, 64)));
    }

    #[test]
    fn a64_three_op() {
        let df = a64("fadd v0.2d, v1.2d, v2.2d");
        assert!(has(&df.writes, Register::vec(0, 128)));
        assert!(has(&df.reads, Register::vec(1, 128)));
        assert!(!has(&df.reads, Register::vec(0, 128)));
    }

    #[test]
    fn a64_fmla_reads_accumulator() {
        let df = a64("fmla v0.2d, v1.2d, v2.2d");
        assert!(has(&df.reads, Register::vec(0, 128)));
        assert!(has(&df.writes, Register::vec(0, 128)));
    }

    #[test]
    fn a64_sve_count_increment_is_rmw() {
        // `incd x4` is x4 += #lanes: it must read its own destination, or
        // back-to-back increments look like dead stores and the induction
        // chain through the counter is lost.
        let df = a64("incd x4");
        assert!(has(&df.reads, Register::gpr(4, 64)));
        assert!(has(&df.writes, Register::gpr(4, 64)));
    }

    #[test]
    fn a64_load_writes_dest_reads_base() {
        let df = a64("ldr q0, [x0, #16]");
        assert!(has(&df.writes, Register::vec(0, 128)));
        assert!(has(&df.reads, Register::gpr(0, 64)));
        assert!(df.mem_read);
    }

    #[test]
    fn a64_post_index_writes_base() {
        let df = a64("ldr q0, [x0], #16");
        assert!(has(&df.writes, Register::gpr(0, 64)));
        assert!(has(&df.writes, Register::vec(0, 128)));
    }

    #[test]
    fn a64_store_reads_everything() {
        let df = a64("stp q0, q1, [x2]");
        assert!(has(&df.reads, Register::vec(0, 128)));
        assert!(has(&df.reads, Register::vec(1, 128)));
        assert!(has(&df.reads, Register::gpr(2, 64)));
        assert!(df.writes.is_empty());
    }

    #[test]
    fn a64_sve_predicated_merge_reads_dest() {
        let df = a64("fadd z0.d, p0/m, z0.d, z1.d");
        assert!(has(&df.reads, Register::pred(0)));
        assert!(has(&df.reads, Register::vec(0, 128)));
    }

    #[test]
    fn a64_whilelo_flags() {
        let df = a64("whilelo p0.d, x3, x4");
        assert!(has(&df.writes, Register::pred(0)));
        assert!(has(&df.writes, Register::flags()));
        assert!(has(&df.reads, Register::gpr(3, 64)));
    }

    #[test]
    fn a64_subs_cbnz_chain() {
        let s = a64("subs x3, x3, #1");
        assert!(has(&s.writes, Register::flags()));
        let b = a64("cbnz x3, .L2");
        assert!(has(&b.reads, Register::gpr(3, 64)));
    }

    #[test]
    fn a64_zero_register_no_dependency() {
        let df = a64("add x0, xzr, x1");
        assert!(!df.reads.iter().any(|r| r.is_zero_reg()));
        assert_eq!(df.reads.len(), 1);
    }
}
