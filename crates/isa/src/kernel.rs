//! Kernel (loop body) extraction from an assembly listing.
//!
//! Analysis operates on the innermost loop body — the block between a label
//! and the backward branch that targets it, matching how OSACA and LLVM-MCA
//! treat their input. If no loop is found, the whole instruction sequence is
//! treated as one straight-line block.

use crate::inst::{Instruction, Isa};
use crate::operand::Operand;
use crate::parse::{parse_line_aarch64, parse_line_x86, ParseError};

/// A parsed analysis kernel: the instructions of one loop body.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Loop-body instructions, in program order, including the back branch.
    pub instructions: Vec<Instruction>,
    pub isa: Isa,
    /// Label of the loop head, if a loop was detected.
    pub loop_label: Option<String>,
}

impl Kernel {
    /// Instructions excluding nops.
    pub fn effective_instructions(&self) -> impl Iterator<Item = &Instruction> {
        self.instructions.iter().filter(|i| !i.is_nop())
    }

    /// Number of loads / stores in the body.
    pub fn load_count(&self) -> usize {
        self.instructions.iter().filter(|i| i.is_load()).count()
    }

    /// Number of stores in the body.
    pub fn store_count(&self) -> usize {
        self.instructions.iter().filter(|i| i.is_store()).count()
    }

    /// Dominant ISA extension of the body.
    pub fn dominant_ext(&self) -> crate::ext::IsaExt {
        crate::ext::dominant_ext(&self.instructions)
    }
}

/// Parse an assembly listing and extract the analysis region.
///
/// If the listing contains OSACA/IACA-style markers — comment lines
/// containing `OSACA-BEGIN` and `OSACA-END` (or `IACA START`/`IACA END`) —
/// only the marked region is analyzed, exactly like OSACA's marker
/// workflow. Otherwise the innermost loop is auto-detected: find the *last*
/// backward branch whose target label appears earlier; the kernel is the
/// instructions from that label to the branch (inclusive).
///
/// Internally this runs the interned compact parse path
/// ([`crate::compact::ParseArena`]) through a reused thread-local arena and
/// expands the result; output is pinned identical to
/// [`parse_kernel_reference`] by the equivalence suite.
pub fn parse_kernel(asm: &str, isa: Isa) -> Result<Kernel, ParseError> {
    use std::cell::RefCell;
    thread_local! {
        static ARENA: RefCell<crate::compact::ParseArena> =
            RefCell::new(crate::compact::ParseArena::new());
    }
    // Long-lived processes (servers) feed the arena arbitrary text; cap the
    // interner so a hostile or endless corpus cannot grow it unboundedly.
    const MAX_INTERNED: usize = 1 << 20;
    ARENA.with(|cell| {
        let mut arena = cell.borrow_mut();
        if arena.interned_strings() > MAX_INTERNED {
            *arena = crate::compact::ParseArena::new();
        }
        let compact = arena.parse(asm, isa)?;
        Ok(arena.expand(&compact))
    })
}

/// The original (pre-interning) parse path, kept verbatim as the oracle the
/// compact path is tested against. Allocates per line and per operand;
/// prefer [`parse_kernel`].
pub fn parse_kernel_reference(asm: &str, isa: Isa) -> Result<Kernel, ParseError> {
    if let Some(region) = marked_region(asm) {
        return parse_kernel_unmarked(&region, isa);
    }
    parse_kernel_unmarked(asm, isa)
}

/// Extract the text between OSACA/IACA markers, if both are present in
/// order.
fn marked_region(asm: &str) -> Option<String> {
    let is_begin = |l: &str| l.contains("OSACA-BEGIN") || l.contains("IACA START");
    let is_end = |l: &str| l.contains("OSACA-END") || l.contains("IACA END");
    let lines: Vec<&str> = asm.lines().collect();
    let begin = lines.iter().position(|l| is_begin(l))?;
    let end = lines.iter().position(|l| is_end(l))?;
    (begin < end).then(|| lines[begin + 1..end].join("\n"))
}

fn parse_kernel_unmarked(asm: &str, isa: Isa) -> Result<Kernel, ParseError> {
    // x86 listings may be in AT&T or Intel syntax; detect once per block.
    let intel = isa == Isa::X86 && crate::parse::looks_like_intel_x86(asm);
    let mut items: Vec<Item> = Vec::new();
    for (idx, line) in asm.lines().enumerate() {
        let lineno = idx + 1;
        let text = match isa {
            Isa::X86 if intel => crate::parse::strip_comment(line, &["#", ";"]),
            Isa::X86 => crate::parse::strip_comment(line, &["#"]),
            Isa::AArch64 => crate::parse::strip_comment(line, &["//", "@"]),
        };
        if let Some(label) = text.strip_suffix(':') {
            let label = label.trim();
            if !label.is_empty() && !label.contains(char::is_whitespace) {
                items.push(Item::Label(label.to_string()));
                continue;
            }
        }
        let inst = match isa {
            Isa::X86 if intel => crate::parse::parse_line_x86_intel(line, lineno)?,
            Isa::X86 => parse_line_x86(line, lineno)?,
            Isa::AArch64 => parse_line_aarch64(line, lineno)?,
        };
        if let Some(i) = inst {
            items.push(Item::Inst(i));
        }
    }

    // Locate backward branches.
    let mut label_pos: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for (pos, item) in items.iter().enumerate() {
        if let Item::Label(l) = item {
            label_pos.insert(l.as_str(), pos);
        }
    }
    let mut best: Option<(usize, usize, String)> = None; // (start, end, label)
    for (pos, item) in items.iter().enumerate() {
        if let Item::Inst(inst) = item {
            if inst.is_branch() {
                if let Some(Operand::Label(target)) = inst.operands.first() {
                    if let Some(&tpos) = label_pos.get(target.as_str()) {
                        if tpos < pos {
                            // Prefer the innermost (shortest) loop body when
                            // several candidates exist; ties go to the later
                            // branch (the hot loop usually comes last).
                            let len = pos - tpos;
                            match &best {
                                Some((s, e, _)) if e - s <= len => {}
                                _ => best = Some((tpos, pos, target.clone())),
                            }
                        }
                    }
                }
            }
        }
    }

    let (instructions, loop_label) = match best {
        Some((start, end, label)) => {
            let body: Vec<Instruction> = items[start..=end]
                .iter()
                .filter_map(|it| match it {
                    Item::Inst(i) => Some(i.clone()),
                    Item::Label(_) => None,
                })
                .collect();
            (body, Some(label))
        }
        None => (
            items
                .into_iter()
                .filter_map(|it| match it {
                    Item::Inst(i) => Some(i),
                    Item::Label(_) => None,
                })
                .collect(),
            None,
        ),
    };

    Ok(Kernel {
        instructions,
        isa,
        loop_label,
    })
}

enum Item {
    Label(String),
    Inst(Instruction),
}

#[cfg(test)]
mod tests {
    use super::*;

    const X86_LOOP: &str = r#"
    .text
    .globl add_kernel
add_kernel:
    xorl %eax, %eax
.L2:
    vmovupd (%rsi,%rax), %zmm0
    vaddpd  (%rdx,%rax), %zmm0, %zmm1
    vmovupd %zmm1, (%rdi,%rax)
    addq    $64, %rax
    cmpq    %rcx, %rax
    jne     .L2
    ret
"#;

    #[test]
    fn extracts_loop_body() {
        let k = parse_kernel(X86_LOOP, Isa::X86).unwrap();
        assert_eq!(k.loop_label.as_deref(), Some(".L2"));
        assert_eq!(k.instructions.len(), 6);
        assert_eq!(k.instructions[0].mnemonic, "vmovupd");
        assert!(k.instructions[5].is_branch());
        assert_eq!(k.load_count(), 2);
        assert_eq!(k.store_count(), 1);
    }

    #[test]
    fn innermost_of_nested_loops() {
        let asm = r#"
.Louter:
    movq %r8, %r9
.Linner:
    addq $1, %r9
    cmpq %r10, %r9
    jne .Linner
    addq $1, %r8
    cmpq %r11, %r8
    jne .Louter
"#;
        let k = parse_kernel(asm, Isa::X86).unwrap();
        assert_eq!(k.loop_label.as_deref(), Some(".Linner"));
        assert_eq!(k.instructions.len(), 3);
    }

    #[test]
    fn straight_line_without_loop() {
        let asm = "movq %rax, %rbx\naddq $1, %rbx\n";
        let k = parse_kernel(asm, Isa::X86).unwrap();
        assert!(k.loop_label.is_none());
        assert_eq!(k.instructions.len(), 2);
    }

    #[test]
    fn aarch64_loop() {
        let asm = r#"
.L3:
    ldr q0, [x1, x3]
    ldr q1, [x2, x3]
    fadd v0.2d, v0.2d, v1.2d
    str q0, [x0, x3]
    add x3, x3, #16
    cmp x3, x4
    b.ne .L3
"#;
        let k = parse_kernel(asm, Isa::AArch64).unwrap();
        assert_eq!(k.instructions.len(), 7);
        assert_eq!(k.load_count(), 2);
        assert_eq!(k.store_count(), 1);
        assert_eq!(k.dominant_ext(), crate::ext::IsaExt::Neon);
    }

    #[test]
    fn osaca_markers_select_region() {
        let asm = r#"
    movq %r9, %r10          # outside
# OSACA-BEGIN
.L2:
    vaddpd %zmm0, %zmm1, %zmm2
    addq $8, %rax
    cmpq %rcx, %rax
    jne .L2
# OSACA-END
    addq $1, %r11           # outside
"#;
        let k = parse_kernel(asm, Isa::X86).unwrap();
        assert_eq!(k.instructions.len(), 4);
        assert_eq!(k.loop_label.as_deref(), Some(".L2"));
        assert!(!k
            .instructions
            .iter()
            .any(|i| i.mnemonic.starts_with("movq")));
    }

    #[test]
    fn iaca_markers_work_too() {
        let asm = "// IACA START\n    fadd d0, d1, d2\n// IACA END\n    fmul d3, d4, d5\n";
        let k = parse_kernel(asm, Isa::AArch64).unwrap();
        assert_eq!(k.instructions.len(), 1);
        assert_eq!(k.instructions[0].base_mnemonic(), "fadd");
    }

    #[test]
    fn unordered_markers_are_ignored() {
        let asm = "# OSACA-END\n addq $1, %rax\n# OSACA-BEGIN\n";
        let k = parse_kernel(asm, Isa::X86).unwrap();
        assert_eq!(k.instructions.len(), 1);
    }

    #[test]
    fn forward_branches_do_not_loop() {
        let asm = r#"
    cmpq %rax, %rbx
    je .Ldone
    addq $1, %rax
.Ldone:
    ret
"#;
        let k = parse_kernel(asm, Isa::X86).unwrap();
        assert!(k.loop_label.is_none());
        assert_eq!(k.instructions.len(), 4);
    }
}
