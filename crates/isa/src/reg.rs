//! Architectural register model with aliasing-aware canonical identities.
//!
//! Dependency analysis needs to know that `eax` and `rax` are the same
//! storage, that `xmm3`/`ymm3`/`zmm3` overlap, and that `w5` is the low half
//! of `x5`. A [`Register`] therefore carries a *canonical* `(class, index)`
//! identity plus an access width in bits; two registers conflict iff their
//! canonical identities are equal.

use std::fmt;

/// Register file a register belongs to. Identity for dependency purposes is
/// `(class, index)`; width is an access property, not an identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// General-purpose integer registers (x86 `rax..r15`, AArch64 `x0..x30`).
    Gpr,
    /// SIMD/FP registers (x86 `xmm/ymm/zmm`, AArch64 `b/h/s/d/q/v/z`).
    Vec,
    /// AVX-512 opmask registers `k0..k7`.
    Mask,
    /// SVE predicate registers `p0..p15`.
    Pred,
    /// Condition flags (x86 `rflags`, AArch64 `nzcv`). Index is always 0.
    Flags,
    /// Stack pointer (AArch64 `sp`; x86 `rsp` is a plain GPR but AArch64
    /// separates `sp` from `x31`/`xzr`).
    Sp,
    /// Instruction pointer (x86 `rip`-relative addressing).
    Ip,
    /// The AArch64 zero register `xzr`/`wzr` — reads as zero, writes are
    /// discarded, never creates a dependency.
    Zero,
}

/// A concrete architectural register reference as written in assembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Register {
    /// Register file.
    pub class: RegClass,
    /// Canonical index within the file (aliasing views share an index).
    pub index: u8,
    /// Access width in bits (8–512 for real accesses).
    pub width: u16,
}

impl Register {
    /// Construct a register; prefer the named constructors where possible.
    pub const fn new(class: RegClass, index: u8, width: u16) -> Self {
        Register {
            class,
            index,
            width,
        }
    }

    /// General-purpose register of a given width.
    pub const fn gpr(index: u8, width: u16) -> Self {
        Register::new(RegClass::Gpr, index, width)
    }

    /// Vector register of a given width.
    pub const fn vec(index: u8, width: u16) -> Self {
        Register::new(RegClass::Vec, index, width)
    }

    /// AVX-512 mask register.
    pub const fn mask(index: u8) -> Self {
        Register::new(RegClass::Mask, index, 64)
    }

    /// SVE predicate register.
    pub const fn pred(index: u8) -> Self {
        Register::new(RegClass::Pred, index, 16)
    }

    /// The flags register of either ISA.
    pub const fn flags() -> Self {
        Register::new(RegClass::Flags, 0, 64)
    }

    /// Whether a write to `self` is observable by a read of `other`
    /// (same storage, width-independent).
    pub fn aliases(&self, other: &Register) -> bool {
        self.class == other.class && self.index == other.index
    }

    /// Whether this register never carries a dependency (the zero register).
    pub fn is_zero_reg(&self) -> bool {
        self.class == RegClass::Zero
    }

    /// Canonical identity used as a map key in dependency analysis.
    pub fn id(&self) -> (RegClass, u8) {
        (self.class, self.index)
    }
}

/// x86-64 GPR canonical indices in encoding order.
pub const X86_GPR_NAMES: [&str; 16] = [
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi", "r8", "r9", "r10", "r11", "r12", "r13",
    "r14", "r15",
];

/// Look up an x86 register name (without the `%` sigil). Handles all
/// aliasing sub-register views.
///
/// Compiler-emitted lowercase names resolve without allocating; mixed-case
/// input falls back to one lowercased copy.
pub fn x86_register(name: &str) -> Option<Register> {
    if name.bytes().any(|b| b.is_ascii_uppercase()) {
        return x86_register_lower(&name.to_ascii_lowercase());
    }
    x86_register_lower(name)
}

fn x86_register_lower(n: &str) -> Option<Register> {
    // 64-bit canonical names and legacy sub-registers.
    if let Some(i) = X86_GPR_NAMES.iter().position(|&g| g == n) {
        return Some(Register::gpr(i as u8, 64));
    }
    const R32: [&str; 8] = ["eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"];
    if let Some(i) = R32.iter().position(|&g| g == n) {
        return Some(Register::gpr(i as u8, 32));
    }
    const R16: [&str; 8] = ["ax", "cx", "dx", "bx", "sp", "bp", "si", "di"];
    if let Some(i) = R16.iter().position(|&g| g == n) {
        return Some(Register::gpr(i as u8, 16));
    }
    const R8: [&str; 8] = ["al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil"];
    if let Some(i) = R8.iter().position(|&g| g == n) {
        return Some(Register::gpr(i as u8, 8));
    }
    const R8H: [&str; 4] = ["ah", "ch", "dh", "bh"];
    if let Some(i) = R8H.iter().position(|&g| g == n) {
        return Some(Register::gpr(i as u8, 8));
    }
    // r8..r15 with d/w/b suffixes.
    if let Some(rest) = n.strip_prefix('r') {
        let (digits, width) = match rest {
            _ if rest.ends_with('d') => (&rest[..rest.len() - 1], 32),
            _ if rest.ends_with('w') => (&rest[..rest.len() - 1], 16),
            _ if rest.ends_with('b') => (&rest[..rest.len() - 1], 8),
            _ => (rest, 64),
        };
        if let Ok(i) = digits.parse::<u8>() {
            if (8..=15).contains(&i) {
                return Some(Register::gpr(i, width));
            }
        }
    }
    // Vector registers.
    for (prefix, width) in [("xmm", 128u16), ("ymm", 256), ("zmm", 512)] {
        if let Some(d) = n.strip_prefix(prefix) {
            if let Ok(i) = d.parse::<u8>() {
                if i < 32 {
                    return Some(Register::vec(i, width));
                }
            }
        }
    }
    // Mask registers.
    if let Some(d) = n.strip_prefix('k') {
        if let Ok(i) = d.parse::<u8>() {
            if i < 8 {
                return Some(Register::mask(i));
            }
        }
    }
    if n == "rip" {
        return Some(Register::new(RegClass::Ip, 0, 64));
    }
    if n == "rflags" || n == "eflags" {
        return Some(Register::flags());
    }
    None
}

/// Look up an AArch64 register name. Returns the register together with the
/// element width implied by the name (`x`/`w`, `d`/`s`, `v`/`z` views).
///
/// Compiler-emitted lowercase names resolve without allocating; mixed-case
/// input falls back to one lowercased copy.
pub fn aarch64_register(name: &str) -> Option<Register> {
    if name.bytes().any(|b| b.is_ascii_uppercase()) {
        return aarch64_register_lower(&name.to_ascii_lowercase());
    }
    aarch64_register_lower(name)
}

fn aarch64_register_lower(n: &str) -> Option<Register> {
    // Strip SVE/NEON arrangement suffixes like `v0.2d`, `z3.s`, `p1/m`.
    let base = n.split(['.', '/']).next().unwrap_or(n);
    match base {
        "sp" => return Some(Register::new(RegClass::Sp, 31, 64)),
        "wsp" => return Some(Register::new(RegClass::Sp, 31, 32)),
        "xzr" => return Some(Register::new(RegClass::Zero, 31, 64)),
        "wzr" => return Some(Register::new(RegClass::Zero, 31, 32)),
        "lr" => return Some(Register::gpr(30, 64)),
        "nzcv" => return Some(Register::flags()),
        _ => {}
    }
    if base.len() < 2 || !base.is_ascii() {
        return None;
    }
    let (head, digits) = base.split_at(1);
    let idx: u8 = digits.parse().ok()?;
    match head {
        "x" if idx <= 30 => Some(Register::gpr(idx, 64)),
        "w" if idx <= 30 => Some(Register::gpr(idx, 32)),
        "b" if idx < 32 => Some(Register::vec(idx, 8)),
        "h" if idx < 32 => Some(Register::vec(idx, 16)),
        "s" if idx < 32 => Some(Register::vec(idx, 32)),
        "d" if idx < 32 => Some(Register::vec(idx, 64)),
        "q" if idx < 32 => Some(Register::vec(idx, 128)),
        // NEON arrangement views (`v0.2d` etc.) are 128-bit accesses; SVE `z`
        // registers are vector-length-agnostic — callers that know the VL can
        // re-widen, we default to the 128-bit VL of Neoverse V2.
        "v" if idx < 32 => Some(Register::vec(idx, 128)),
        "z" if idx < 32 => Some(Register::vec(idx, 128)),
        "p" if idx < 16 => Some(Register::pred(idx)),
        _ => None,
    }
}

impl fmt::Display for Register {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Gpr => {
                if (self.index as usize) < X86_GPR_NAMES.len() {
                    write!(f, "{}:{}", X86_GPR_NAMES[self.index as usize], self.width)
                } else {
                    write!(f, "gpr{}:{}", self.index, self.width)
                }
            }
            RegClass::Vec => write!(f, "v{}:{}", self.index, self.width),
            RegClass::Mask => write!(f, "k{}", self.index),
            RegClass::Pred => write!(f, "p{}", self.index),
            RegClass::Flags => write!(f, "flags"),
            RegClass::Sp => write!(f, "sp"),
            RegClass::Ip => write!(f, "ip"),
            RegClass::Zero => write!(f, "zr"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x86_gpr_aliasing() {
        let rax = x86_register("rax").unwrap();
        let eax = x86_register("eax").unwrap();
        let al = x86_register("al").unwrap();
        let ah = x86_register("ah").unwrap();
        assert!(rax.aliases(&eax));
        assert!(rax.aliases(&al));
        assert!(eax.aliases(&ah));
        assert_eq!(rax.width, 64);
        assert_eq!(eax.width, 32);
    }

    #[test]
    fn x86_extended_gprs() {
        assert_eq!(x86_register("r10").unwrap(), Register::gpr(10, 64));
        assert_eq!(x86_register("r10d").unwrap(), Register::gpr(10, 32));
        assert_eq!(x86_register("r10w").unwrap(), Register::gpr(10, 16));
        assert_eq!(x86_register("r10b").unwrap(), Register::gpr(10, 8));
        assert!(x86_register("r16").is_none());
    }

    #[test]
    fn x86_vector_aliasing() {
        let x = x86_register("xmm7").unwrap();
        let y = x86_register("ymm7").unwrap();
        let z = x86_register("zmm7").unwrap();
        assert!(x.aliases(&y) && y.aliases(&z));
        assert_eq!((x.width, y.width, z.width), (128, 256, 512));
        assert!(!x.aliases(&x86_register("xmm8").unwrap()));
    }

    #[test]
    fn x86_masks_and_special() {
        assert_eq!(x86_register("k3").unwrap().class, RegClass::Mask);
        assert_eq!(x86_register("rip").unwrap().class, RegClass::Ip);
        assert!(x86_register("k9").is_none());
        assert!(x86_register("bogus").is_none());
    }

    #[test]
    fn aarch64_gpr_aliasing() {
        let x5 = aarch64_register("x5").unwrap();
        let w5 = aarch64_register("w5").unwrap();
        assert!(x5.aliases(&w5));
        assert_eq!(w5.width, 32);
        assert!(aarch64_register("x31").is_none());
    }

    #[test]
    fn aarch64_zero_and_sp() {
        let xzr = aarch64_register("xzr").unwrap();
        assert!(xzr.is_zero_reg());
        let sp = aarch64_register("sp").unwrap();
        assert_eq!(sp.class, RegClass::Sp);
        assert!(!xzr.aliases(&sp));
    }

    #[test]
    fn aarch64_fp_views_alias() {
        let d3 = aarch64_register("d3").unwrap();
        let v3 = aarch64_register("v3.2d").unwrap();
        let z3 = aarch64_register("z3.d").unwrap();
        let s3 = aarch64_register("s3").unwrap();
        assert!(d3.aliases(&v3) && v3.aliases(&z3) && z3.aliases(&s3));
        assert_eq!(v3.width, 128);
    }

    #[test]
    fn aarch64_predicates() {
        let p = aarch64_register("p0/z").unwrap();
        assert_eq!(p.class, RegClass::Pred);
        assert!(aarch64_register("p16").is_none());
    }

    #[test]
    fn mixed_case_still_resolves() {
        assert_eq!(x86_register("RAX"), x86_register("rax"));
        assert_eq!(x86_register("Zmm3"), x86_register("zmm3"));
        assert_eq!(aarch64_register("X5"), aarch64_register("x5"));
        assert_eq!(aarch64_register("V3.2D"), aarch64_register("v3.2d"));
        assert!(x86_register("BOGUS").is_none());
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(x86_register("rax").unwrap().to_string(), "rax:64");
        assert_eq!(x86_register("zmm1").unwrap().to_string(), "v1:512");
    }
}
