//! Operand representation shared by both ISAs.

use crate::reg::Register;
use std::fmt;

/// Addressing mode of a memory operand. x86 only uses [`AddrMode::Offset`];
/// AArch64 additionally has pre-/post-indexed forms that write the base
/// register back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AddrMode {
    /// `disp(base, index, scale)` / `[base, #imm]` — no base writeback.
    #[default]
    Offset,
    /// `[base, #imm]!` — base is updated *before* the access.
    PreIndex,
    /// `[base], #imm` — base is updated *after* the access.
    PostIndex,
}

/// A memory reference: `disp(base, index, scale)` in AT&T syntax or
/// `[base, index, lsl #s]` / `[base, #disp]` on AArch64.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MemOperand {
    pub base: Option<Register>,
    pub index: Option<Register>,
    /// Scale applied to the index register (1, 2, 4, or 8).
    pub scale: u8,
    pub disp: i64,
    pub mode: AddrMode,
    /// Post/pre-index increment on AArch64 (equals `disp` for immediate
    /// forms; kept separately for clarity of intent).
    pub writeback: bool,
}

impl MemOperand {
    /// A simple base-register dereference.
    pub fn base(base: Register) -> Self {
        MemOperand {
            base: Some(base),
            scale: 1,
            ..Default::default()
        }
    }

    /// Base + displacement.
    pub fn base_disp(base: Register, disp: i64) -> Self {
        MemOperand {
            base: Some(base),
            disp,
            scale: 1,
            ..Default::default()
        }
    }

    /// Base + scaled index (+ displacement).
    pub fn base_index(base: Register, index: Register, scale: u8, disp: i64) -> Self {
        MemOperand {
            base: Some(base),
            index: Some(index),
            scale,
            disp,
            ..Default::default()
        }
    }

    /// Registers read to form the address.
    pub fn address_regs(&self) -> impl Iterator<Item = Register> + '_ {
        self.base.into_iter().chain(self.index)
    }
}

/// A single instruction operand.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    Reg(Register),
    /// Integer immediate.
    Imm(i64),
    /// Floating-point immediate (AArch64 `fmov d0, #1.0`).
    FpImm(f64),
    Mem(MemOperand),
    /// Branch target or symbolic reference.
    Label(String),
}

impl Operand {
    pub fn as_reg(&self) -> Option<Register> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }

    pub fn as_mem(&self) -> Option<&MemOperand> {
        match self {
            Operand::Mem(m) => Some(m),
            _ => None,
        }
    }

    pub fn is_mem(&self) -> bool {
        matches!(self, Operand::Mem(_))
    }

    /// Coarse signature of this operand for instruction-form matching in the
    /// microarchitecture database.
    pub fn sig(&self) -> OpSig {
        match self {
            Operand::Reg(r) => match r.class {
                crate::reg::RegClass::Vec => OpSig::Vec(r.width),
                crate::reg::RegClass::Mask => OpSig::Mask,
                crate::reg::RegClass::Pred => OpSig::Pred,
                _ => OpSig::Gpr(r.width),
            },
            Operand::Imm(_) | Operand::FpImm(_) => OpSig::Imm,
            Operand::Mem(_) => OpSig::Mem,
            Operand::Label(_) => OpSig::Label,
        }
    }
}

/// Coarse operand kind used to key instruction-form lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpSig {
    Gpr(u16),
    Vec(u16),
    Mask,
    Pred,
    Imm,
    Mem,
    Label,
}

impl fmt::Display for OpSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpSig::Gpr(w) => write!(f, "r{w}"),
            OpSig::Vec(w) => write!(f, "v{w}"),
            OpSig::Mask => write!(f, "k"),
            OpSig::Pred => write!(f, "p"),
            OpSig::Imm => write!(f, "i"),
            OpSig::Mem => write!(f, "m"),
            OpSig::Label => write!(f, "l"),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "${i}"),
            Operand::FpImm(x) => write!(f, "#{x}"),
            Operand::Label(l) => write!(f, "{l}"),
            Operand::Mem(m) => {
                write!(f, "{}(", m.disp)?;
                if let Some(b) = m.base {
                    write!(f, "{b}")?;
                }
                if let Some(i) = m.index {
                    write!(f, ",{i},{}", m.scale)?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Register;

    #[test]
    fn mem_address_regs() {
        let m = MemOperand::base_index(Register::gpr(0, 64), Register::gpr(1, 64), 8, 16);
        let regs: Vec<_> = m.address_regs().collect();
        assert_eq!(regs.len(), 2);
        let m2 = MemOperand::base(Register::gpr(3, 64));
        assert_eq!(m2.address_regs().count(), 1);
    }

    #[test]
    fn operand_signatures() {
        assert_eq!(Operand::Reg(Register::gpr(0, 64)).sig(), OpSig::Gpr(64));
        assert_eq!(Operand::Reg(Register::vec(1, 512)).sig(), OpSig::Vec(512));
        assert_eq!(Operand::Imm(3).sig(), OpSig::Imm);
        assert_eq!(Operand::Mem(MemOperand::default()).sig(), OpSig::Mem);
        assert_eq!(Operand::Reg(Register::mask(1)).sig(), OpSig::Mask);
    }

    #[test]
    fn accessors() {
        let r = Operand::Reg(Register::gpr(2, 64));
        assert!(r.as_reg().is_some());
        assert!(r.as_mem().is_none());
        let m = Operand::Mem(MemOperand::default());
        assert!(m.is_mem() && m.as_mem().is_some() && m.as_reg().is_none());
    }
}
