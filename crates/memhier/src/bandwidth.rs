//! Multi-core bandwidth-saturation model.
//!
//! A single core can only keep a limited number of outstanding cache-line
//! transfers in flight, so per-core bandwidth is far below the socket
//! limit; aggregate bandwidth grows roughly linearly with cores until the
//! memory interface saturates. This latency–concurrency model backs the
//! "measured bandwidth" rows of Table I and the utilization estimates of
//! the store benchmark.

use uarch::Machine;

/// Sustained load-only bandwidth (GB/s) at `cores` active cores, using a
/// smooth saturation curve `B(n) = B_sat · (1 − exp(−n·b₁/B_sat))` which
/// matches the linear small-`n` regime (slope = per-core bandwidth b₁) and
/// the measured socket plateau.
pub fn sustained_bandwidth_gbs(machine: &Machine, cores: u32) -> f64 {
    let cfg = crate::policy::WaConfig::for_machine(machine);
    let b_sat = machine.memory.measured_bw_gbs();
    let b1 = cfg.per_core_load_bw_gbs;
    let n = cores.clamp(1, machine.cores) as f64;
    b_sat * (1.0 - (-n * b1 / b_sat).exp())
}

/// Bandwidth efficiency at full socket: measured / theoretical (Table I:
/// 87 % GCS, 90 % SPR, 78 % Genoa — the paper's §II comparison).
pub fn full_socket_efficiency(machine: &Machine) -> f64 {
    sustained_bandwidth_gbs(machine, machine.cores) / machine.memory.theor_bw_gbs
}

/// Number of cores needed to reach a given fraction of the sustained
/// socket bandwidth.
pub fn cores_to_reach(machine: &Machine, fraction: f64) -> u32 {
    let target = machine.memory.measured_bw_gbs() * fraction.clamp(0.0, 0.999);
    (1..=machine.cores)
        .find(|&n| sustained_bandwidth_gbs(machine, n) >= target)
        .unwrap_or(machine.cores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch::Machine;

    #[test]
    fn saturates_to_measured_socket_bandwidth() {
        for m in uarch::all_machines() {
            let full = sustained_bandwidth_gbs(&m, m.cores);
            let expected = m.memory.measured_bw_gbs();
            assert!(
                (full - expected).abs() / expected < 0.05,
                "{}: {full} vs {expected}",
                m.arch.label()
            );
        }
    }

    #[test]
    fn monotone_in_cores() {
        let m = Machine::golden_cove();
        let mut prev = 0.0;
        for n in 1..=m.cores {
            let b = sustained_bandwidth_gbs(&m, n);
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn single_core_is_far_from_saturation() {
        for m in uarch::all_machines() {
            let one = sustained_bandwidth_gbs(&m, 1);
            assert!(one < 0.2 * m.memory.measured_bw_gbs(), "{}", m.arch.label());
        }
    }

    #[test]
    fn efficiency_ordering_matches_paper() {
        // Paper §II: SPR 90 % > GCS 87 % > Genoa 78 %.
        let spr = full_socket_efficiency(&Machine::golden_cove());
        let gcs = full_socket_efficiency(&Machine::neoverse_v2());
        let genoa = full_socket_efficiency(&Machine::zen4());
        assert!(
            spr > gcs && gcs > genoa,
            "spr={spr} gcs={gcs} genoa={genoa}"
        );
        assert!((spr - 0.90).abs() < 0.05);
        assert!((gcs - 0.87).abs() < 0.05);
        assert!((genoa - 0.78).abs() < 0.05);
    }

    #[test]
    fn cores_to_reach_is_sensible() {
        let m = Machine::golden_cove();
        let half = cores_to_reach(&m, 0.5);
        let ninety = cores_to_reach(&m, 0.9);
        assert!(half < ninety);
        assert!(ninety <= m.cores);
    }
}
