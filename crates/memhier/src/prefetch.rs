//! Hardware stream prefetcher model.
//!
//! All three machines prefetch sequential streams into L2 aggressively —
//! it is the reason a single core reaches tens of GB/s on load streams
//! despite a memory latency of > 100 ns. The model tracks a small table of
//! streams; once a stream is confirmed (two consecutive lines in the same
//! direction) every further access prefetches a configurable distance
//! ahead.

use crate::cache::Access;
use crate::hierarchy::Hierarchy;

/// One tracked stream.
#[derive(Debug, Clone, Copy)]
struct Stream {
    /// Last demand line address seen (in line units).
    last_line: u64,
    /// +1 or −1.
    direction: i64,
    /// Consecutive hits in `direction`.
    confidence: u32,
    /// Highest line already prefetched (in line units, direction-relative).
    prefetched_until: i64,
    /// LRU stamp.
    lru: u64,
}

/// Prefetcher statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Prefetch requests issued (lines).
    pub issued: u64,
    /// Demand accesses that hit a line this prefetcher brought in.
    pub hits: u64,
    /// Demand accesses observed.
    pub demands: u64,
}

impl PrefetchStats {
    /// Fraction of demand accesses covered by prefetches.
    pub fn coverage(&self) -> f64 {
        if self.demands == 0 {
            0.0
        } else {
            self.hits as f64 / self.demands as f64
        }
    }
}

/// A stream prefetcher sitting in front of a cache hierarchy level.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    streams: Vec<Stream>,
    max_streams: usize,
    /// Lines prefetched ahead of the demand stream.
    pub distance: u32,
    /// Confidence needed before prefetching starts.
    pub threshold: u32,
    line_bytes: u64,
    clock: u64,
    /// Line addresses currently considered prefetched (bounded set).
    inflight: std::collections::HashSet<u64>,
    pub stats: PrefetchStats,
}

impl StreamPrefetcher {
    pub fn new(max_streams: usize, distance: u32, line_bytes: u64) -> Self {
        StreamPrefetcher {
            streams: Vec::new(),
            max_streams,
            distance,
            threshold: 2,
            line_bytes,
            clock: 0,
            inflight: std::collections::HashSet::new(),
            stats: PrefetchStats::default(),
        }
    }

    /// Observe a demand access; returns the line addresses to prefetch.
    pub fn observe(&mut self, addr: u64) -> Vec<u64> {
        self.clock += 1;
        self.stats.demands += 1;
        let line = addr / self.line_bytes;
        if self.inflight.remove(&line) {
            self.stats.hits += 1;
        }

        // Find a stream this access continues (within ±2 lines).
        let mut out = Vec::new();
        let clock = self.clock;
        if let Some(s) = self.streams.iter_mut().find(|s| {
            let delta = line as i64 - s.last_line as i64;
            delta != 0 && delta.abs() <= 2 && delta.signum() == s.direction
        }) {
            s.last_line = line;
            s.confidence += 1;
            s.lru = clock;
            if s.confidence >= self.threshold {
                // Prefetch up to `distance` lines ahead.
                let target = line as i64 + s.direction * self.distance as i64;
                let mut next = s.prefetched_until;
                if (target - next) * s.direction > 0 {
                    while next != target {
                        next += s.direction;
                        if next >= 0 {
                            out.push(next as u64);
                        }
                    }
                    s.prefetched_until = target;
                }
            }
            for &l in &out {
                if self.inflight.len() < 1 << 16 {
                    self.inflight.insert(l);
                }
            }
            self.stats.issued += out.len() as u64;
            return out.iter().map(|l| l * self.line_bytes).collect();
        }

        // New stream: try continuing direction guess from neighbours, else
        // allocate fresh with unknown direction (+1 default).
        if self.streams.len() >= self.max_streams {
            // Evict LRU.
            if let Some(pos) = self
                .streams
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.lru)
                .map(|(i, _)| i)
            {
                self.streams.remove(pos);
            }
        }
        self.streams.push(Stream {
            last_line: line,
            direction: 1,
            confidence: 1,
            prefetched_until: line as i64,
            lru: clock,
        });
        Vec::new()
    }
}

/// Drive a load stream through a hierarchy with a prefetcher in front of
/// L2: prefetched lines are installed in L2 (and below) ahead of demand.
/// Returns the prefetcher statistics and the resulting memory traffic.
pub fn run_prefetched_load_stream(
    h: &mut Hierarchy,
    pf: &mut StreamPrefetcher,
    start: u64,
    lines: u64,
) -> PrefetchStats {
    let line = h.line_bytes();
    for i in 0..lines {
        let addr = start + i * line;
        for pf_addr in pf.observe(addr) {
            // Prefetch installs into L2 and lower levels only.
            h.prefetch_into_l2(pf_addr);
        }
        h.access(addr, Access::Load);
    }
    pf.stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::Hierarchy;

    #[test]
    fn sequential_stream_gets_high_coverage() {
        let mut pf = StreamPrefetcher::new(8, 8, 64);
        for i in 0..1000u64 {
            pf.observe(i * 64);
        }
        assert!(
            pf.stats.coverage() > 0.9,
            "coverage {}",
            pf.stats.coverage()
        );
        assert!(pf.stats.issued >= 990);
    }

    #[test]
    fn random_stream_gets_no_coverage() {
        let mut pf = StreamPrefetcher::new(8, 8, 64);
        let mut x: u64 = 12345;
        for _ in 0..1000 {
            // xorshift
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            pf.observe((x % (1 << 24)) * 64);
        }
        assert!(
            pf.stats.coverage() < 0.05,
            "coverage {}",
            pf.stats.coverage()
        );
    }

    #[test]
    fn descending_streams_are_tracked() {
        let mut pf = StreamPrefetcher::new(8, 4, 64);
        // Teach direction −1: accesses going down.
        let base = 1_000_000u64;
        let mut covered = 0;
        for i in 0..200u64 {
            let addr = (base - i) * 64;
            // Direction defaults to +1; a descending stream re-allocates
            // until the ±2 window with matching sign catches it — so seed
            // manually by checking coverage over a long run.
            let _ = pf.observe(addr);
            covered = pf.stats.hits;
        }
        let _ = covered; // descending streams need direction detection:
                         // with the default +1 guess they never confirm, coverage ≈ 0. This
                         // documents the limitation (real prefetchers detect both).
        assert!(pf.stats.coverage() <= 1.0);
    }

    #[test]
    fn multiple_interleaved_streams() {
        let mut pf = StreamPrefetcher::new(8, 8, 64);
        for i in 0..500u64 {
            pf.observe(i * 64); // stream A
            pf.observe((1 << 22) + i * 64); // stream B
            pf.observe((1 << 23) + i * 64); // stream C
        }
        assert!(
            pf.stats.coverage() > 0.85,
            "coverage {}",
            pf.stats.coverage()
        );
    }

    #[test]
    fn stream_table_capacity_limits_tracking() {
        let mut small = StreamPrefetcher::new(2, 8, 64);
        // 6 interleaved streams overwhelm a 2-entry table.
        for i in 0..300u64 {
            for s in 0..6u64 {
                small.observe((s << 24) + i * 64);
            }
        }
        assert!(
            small.stats.coverage() < 0.4,
            "coverage {}",
            small.stats.coverage()
        );
    }

    #[test]
    fn prefetched_stream_hits_l2() {
        let mut h = Hierarchy::synthetic(4 << 10, 64 << 10, 256 << 10, 64);
        let mut pf = StreamPrefetcher::new(8, 16, 64);
        let stats = run_prefetched_load_stream(&mut h, &mut pf, 0, 4096);
        assert!(stats.coverage() > 0.9);
        // Demand misses at L2 are rare once the prefetcher is warm: most
        // L1 misses find their line already in L2.
        let l2 = &h.levels[1];
        let l2_demand_miss_rate = l2.stats.load_misses as f64 / l2.stats.loads.max(1) as f64;
        assert!(
            l2_demand_miss_rate < 0.15,
            "L2 demand miss rate {l2_demand_miss_rate}"
        );
    }
}
