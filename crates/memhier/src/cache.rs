//! Set-associative write-back cache with LRU replacement.

/// Kind of access presented to a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Data read.
    Load,
    /// Store that overwrites the full cache line (streaming stores always
    /// do; the automatic line-claim detector keys on this).
    StoreFullLine,
    /// Store that modifies part of a line (must read-for-ownership).
    StorePartial,
}

/// What a cache level asked of the next level as a result of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Downstream {
    /// Line fill requested (read miss or RFO).
    pub fill: bool,
    /// Dirty line written back during eviction.
    pub writeback: bool,
    /// Line address of the written-back victim (valid when `writeback`).
    pub writeback_addr: u64,
}

/// Event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub loads: u64,
    pub stores: u64,
    pub load_misses: u64,
    pub store_misses: u64,
    /// Store misses satisfied by claiming the line without a fill.
    pub claims: u64,
    pub writebacks: u64,
}

impl CacheStats {
    pub fn misses(&self) -> u64 {
        self.load_misses + self.store_misses
    }
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Line {
    pub(crate) tag: u64,
    pub(crate) valid: bool,
    pub(crate) dirty: bool,
    /// LRU stamp; larger = more recent.
    pub(crate) lru: u64,
}

/// The geometry a cache construction actually realizes: the number of
/// sets is rounded *down* to a power of two, which can silently shrink
/// the effective capacity below the declared size (by up to ~2×). Expose
/// it so callers — and the `M007` lint — can see the distortion instead
/// of discovering it in skewed miss rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    pub sets: u64,
    pub assoc: usize,
    pub line_bytes: u64,
}

impl Geometry {
    /// Effective capacity after set rounding.
    pub fn capacity_bytes(&self) -> u64 {
        self.sets * self.assoc as u64 * self.line_bytes
    }

    /// Effective capacity in cache lines.
    pub fn capacity_lines(&self) -> u64 {
        self.sets * self.assoc as u64
    }
}

/// The geometry [`Cache::new`] would realize for a declared size. The
/// declared size is representable exactly iff
/// `capacity_bytes() == size_bytes`.
pub fn realized_geometry(size_bytes: u64, assoc: usize, line_bytes: u64) -> Geometry {
    let num_lines = (size_bytes / line_bytes).max(assoc as u64);
    let raw_sets = (num_lines / assoc as u64).max(1);
    // Round *down* to a power of two so the set-index mask works.
    let sets = if raw_sets.is_power_of_two() {
        raw_sets
    } else {
        raw_sets.next_power_of_two() / 2
    };
    Geometry {
        sets,
        assoc,
        line_bytes,
    }
}

/// One set-associative cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<Line>>,
    line_bytes: u64,
    set_shift: u32,
    set_mask: u64,
    clock: u64,
    /// Whether full-line store misses claim the line without a fill
    /// (write-allocate evasion by cache-line claim).
    pub line_claim: bool,
    pub stats: CacheStats,
}

impl Cache {
    /// Create a cache of `size_bytes` with `assoc` ways and `line_bytes`
    /// lines. `size_bytes` is rounded down to a whole number of sets —
    /// see [`realized_geometry`] for the effective shape.
    pub fn new(size_bytes: u64, assoc: usize, line_bytes: u64) -> Cache {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let num_sets = realized_geometry(size_bytes, assoc, line_bytes).sets;
        Cache {
            sets: vec![
                vec![
                    Line {
                        tag: 0,
                        valid: false,
                        dirty: false,
                        lru: 0
                    };
                    assoc
                ];
                num_sets as usize
            ],
            line_bytes,
            set_shift: line_bytes.trailing_zeros(),
            set_mask: num_sets - 1,
            clock: 0,
            line_claim: false,
            stats: CacheStats::default(),
        }
    }

    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    fn set_of(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr >> self.set_shift;
        (
            (line_addr & self.set_mask) as usize,
            line_addr >> self.sets.len().trailing_zeros(),
        )
    }

    /// Reconstruct the byte address of a line from its set and tag.
    fn addr_of(&self, set_idx: usize, tag: u64) -> u64 {
        let set_bits = self.sets.len().trailing_zeros();
        ((tag << set_bits) | set_idx as u64) << self.set_shift
    }

    /// Perform an access; returns what was requested downstream.
    pub fn access(&mut self, addr: u64, kind: Access) -> Downstream {
        self.clock += 1;
        let clock = self.clock;
        let (set_idx, tag) = self.set_of(addr);
        let set = &mut self.sets[set_idx];
        let is_store = kind != Access::Load;
        if is_store {
            self.stats.stores += 1;
        } else {
            self.stats.loads += 1;
        }

        // Hit?
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = clock;
            if is_store {
                line.dirty = true;
            }
            return Downstream::default();
        }

        // Miss: account, then find a victim.
        if is_store {
            self.stats.store_misses += 1;
        } else {
            self.stats.load_misses += 1;
        }
        let victim_idx = (0..set.len())
            .min_by_key(|&w| if set[w].valid { set[w].lru } else { 0 })
            .expect("cache has at least one way");
        let victim = &mut set[victim_idx];
        let mut down = Downstream::default();
        if victim.valid && victim.dirty {
            down.writeback = true;
            down.writeback_addr = {
                let tag = victim.tag;
                // Borrow ends before we call addr_of via a scoped copy.
                tag
            };
            self.stats.writebacks += 1;
        }
        // Fill or claim.
        let claim = self.line_claim && kind == Access::StoreFullLine;
        if claim {
            self.stats.claims += 1;
        } else {
            down.fill = true;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: is_store,
            lru: clock,
        };
        if down.writeback {
            down.writeback_addr = self.addr_of(set_idx, down.writeback_addr);
        }
        down
    }

    /// Insert a clean line (prefetch fill) without touching the demand
    /// counters. Returns `(was_already_present, displaced_dirty_victim)`.
    pub fn prefetch_insert(&mut self, addr: u64) -> (bool, Option<u64>) {
        self.clock += 1;
        let clock = self.clock;
        let (set_idx, tag) = self.set_of(addr);
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = clock;
            return (true, None);
        }
        let victim_idx = (0..set.len())
            .min_by_key(|&w| if set[w].valid { set[w].lru } else { 0 })
            .expect("cache has at least one way");
        let victim = set[victim_idx];
        set[victim_idx] = Line {
            tag,
            valid: true,
            dirty: false,
            lru: clock,
        };
        let displaced = (victim.valid && victim.dirty).then(|| {
            self.stats.writebacks += 1;
            self.addr_of(set_idx, victim.tag)
        });
        (false, displaced)
    }

    /// Insert a written-back line from an upper level: allocate it dirty
    /// *without* fetching from below (a writeback carries the full line).
    /// Returns the address of a dirty victim this insertion displaced, if
    /// any.
    pub fn writeback_insert(&mut self, addr: u64) -> Option<u64> {
        self.clock += 1;
        let clock = self.clock;
        let (set_idx, tag) = self.set_of(addr);
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.dirty = true;
            line.lru = clock;
            return None;
        }
        let victim_idx = (0..set.len())
            .min_by_key(|&w| if set[w].valid { set[w].lru } else { 0 })
            .expect("cache has at least one way");
        let victim = set[victim_idx];
        set[victim_idx] = Line {
            tag,
            valid: true,
            dirty: true,
            lru: clock,
        };
        if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            Some(self.addr_of(set_idx, victim.tag))
        } else {
            None
        }
    }

    /// Flush all dirty lines, counting writebacks. Returns how many lines
    /// were written back.
    pub fn flush(&mut self) -> u64 {
        let mut wb = 0;
        for set in &mut self.sets {
            for line in set.iter_mut() {
                if line.valid && line.dirty {
                    wb += 1;
                }
                line.valid = false;
                line.dirty = false;
            }
        }
        self.stats.writebacks += wb;
        wb
    }

    /// Number of ways.
    pub fn assoc(&self) -> usize {
        self.sets[0].len()
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Number of sets (u64, for address arithmetic).
    pub fn sets(&self) -> u64 {
        self.sets.len() as u64
    }

    /// Realized geometry of this cache.
    pub fn geometry(&self) -> Geometry {
        Geometry {
            sets: self.sets(),
            assoc: self.assoc(),
            line_bytes: self.line_bytes,
        }
    }

    /// Effective capacity in bytes after set rounding.
    pub fn capacity_bytes(&self) -> u64 {
        self.geometry().capacity_bytes()
    }

    /// Effective capacity in cache lines.
    pub fn capacity_lines(&self) -> u64 {
        self.geometry().capacity_lines()
    }

    /// Return the cache to its just-constructed state (cold lines, zeroed
    /// counters) without reallocating the set arrays.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            for line in set.iter_mut() {
                *line = Line {
                    tag: 0,
                    valid: false,
                    dirty: false,
                    lru: 0,
                };
            }
        }
        self.clock = 0;
        self.stats = CacheStats::default();
    }

    /// Copy the full line state into `buf` (reused across snapshots).
    pub(crate) fn snapshot_into(&self, buf: &mut Vec<Line>) {
        buf.clear();
        for set in &self.sets {
            buf.extend_from_slice(set);
        }
    }

    /// Does the current state equal `snap` advanced by `shift_lines` line
    /// addresses? `shift_lines` must be a multiple of the set count, so the
    /// shift moves every line by a whole tag increment within its own set.
    ///
    /// Equality is up to everything future accesses cannot observe:
    /// absolute LRU stamps (replacement only compares stamps *within* a
    /// set) and the way a line happens to occupy (lookups scan all ways;
    /// the victim is picked by stamp, not position — and way assignment
    /// genuinely rotates when fills-per-period isn't a multiple of the
    /// associativity). So each set is compared as its sequence of
    /// `(valid, dirty, tag)` ordered by the victim-selection key.
    pub(crate) fn matches_shifted(
        &self,
        snap: &[Line],
        shift_lines: u64,
        rank_cur: &mut Vec<usize>,
        rank_old: &mut Vec<usize>,
    ) -> bool {
        let assoc = self.assoc();
        if snap.len() != self.sets.len() * assoc {
            return false;
        }
        debug_assert!(shift_lines.is_multiple_of(self.sets()));
        let tag_shift = shift_lines / self.sets();
        for (si, set) in self.sets.iter().enumerate() {
            let old = &snap[si * assoc..(si + 1) * assoc];
            lru_rank(set, rank_cur);
            lru_rank(old, rank_old);
            for (&wc, &wo) in rank_cur.iter().zip(rank_old.iter()) {
                let (cur, o) = (&set[wc], &old[wo]);
                if cur.valid != o.valid || cur.dirty != o.dirty {
                    return false;
                }
                if cur.valid && cur.tag != o.tag + tag_shift {
                    return false;
                }
            }
        }
        true
    }

    /// Present a whole constant-stride stream to this level alone,
    /// taking the exact steady-state fast path when the stride is a
    /// multiple of the line size (see [`crate::stream`]). `stats` end up
    /// bit-identical to calling [`Self::access`] per element; downstream
    /// requests are discarded either way.
    pub fn access_stream(
        &mut self,
        p: crate::stream::StreamPattern,
        cfg: crate::stream::StreamConfig,
    ) -> crate::stream::StreamOutcome {
        let mut scratch = crate::stream::MemScratch::default();
        crate::stream::run_stream(self, p, cfg, &mut scratch)
    }

    /// Diagnostic twin of `matches_shifted`: first mismatch, described.
    #[cfg(test)]
    pub(crate) fn debug_mismatch(&self, snap: &[Line], shift_lines: u64) -> Option<String> {
        let assoc = self.assoc();
        let tag_shift = shift_lines / self.sets();
        let mut ra = Vec::new();
        let mut rb = Vec::new();
        for (si, set) in self.sets.iter().enumerate() {
            let old = &snap[si * assoc..(si + 1) * assoc];
            lru_rank(set, &mut ra);
            lru_rank(old, &mut rb);
            for (k, (&wc, &wo)) in ra.iter().zip(rb.iter()).enumerate() {
                let (cur, o) = (&set[wc], &old[wo]);
                if cur.valid != o.valid {
                    return Some(format!(
                        "set {si} rank {k}: valid {} vs {}",
                        cur.valid, o.valid
                    ));
                }
                if cur.dirty != o.dirty {
                    return Some(format!(
                        "set {si} rank {k}: dirty {} vs {}",
                        cur.dirty, o.dirty
                    ));
                }
                if cur.valid && cur.tag != o.tag + tag_shift {
                    return Some(format!(
                        "set {si} rank {k}: tag {} vs {}+{tag_shift}",
                        cur.tag, o.tag
                    ));
                }
            }
        }
        None
    }

    /// Advance every valid tag by `shift_lines / sets` tag units: the
    /// teleport that makes the post-extrapolation state identical to what
    /// per-access simulation would have produced (LRU stamps keep their
    /// order, which is all replacement and `flush` ever observe).
    pub(crate) fn shift_tags(&mut self, shift_lines: u64) {
        debug_assert!(shift_lines.is_multiple_of(self.sets()));
        let tag_shift = shift_lines / self.sets();
        for set in &mut self.sets {
            for line in set.iter_mut() {
                if line.valid {
                    line.tag += tag_shift;
                }
            }
        }
    }
}

/// Way indices of `lines` sorted by the victim-selection key
/// (`if valid { lru } else { 0 }`); the sort is stable, so ties among
/// invalid ways break by index exactly like the victim `min_by_key` scan.
fn lru_rank(lines: &[Line], out: &mut Vec<usize>) {
    out.clear();
    out.extend(0..lines.len());
    out.sort_by_key(|&w| if lines[w].valid { lines[w].lru } else { 0 });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 8 sets × 2 ways × 64 B = 1 KiB.
        Cache::new(1024, 2, 64)
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.assoc(), 2);
        assert_eq!(c.num_sets(), 8);
        assert_eq!(c.line_bytes(), 64);
    }

    #[test]
    fn load_hit_after_fill() {
        let mut c = small();
        let d = c.access(0x1000, Access::Load);
        assert!(d.fill && !d.writeback);
        let d = c.access(0x1000, Access::Load);
        assert!(!d.fill);
        assert_eq!(c.stats.load_misses, 1);
        assert_eq!(c.stats.loads, 2);
    }

    #[test]
    fn store_miss_allocates_and_writes_back() {
        let mut c = small();
        // Store to a line → RFO fill; evicting it later → writeback.
        let d = c.access(0x0, Access::StoreFullLine);
        assert!(d.fill);
        // Two more lines in the same set (stride = sets × line = 512 B).
        let d = c.access(512, Access::StoreFullLine);
        assert!(d.fill && !d.writeback);
        let d = c.access(1024, Access::StoreFullLine);
        assert!(d.fill && d.writeback, "LRU dirty line must be written back");
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn line_claim_avoids_fill() {
        let mut c = small();
        c.line_claim = true;
        let d = c.access(0x0, Access::StoreFullLine);
        assert!(!d.fill, "claimed line must not be fetched");
        assert_eq!(c.stats.claims, 1);
        // Partial stores still fetch.
        let d = c.access(0x40, Access::StorePartial);
        assert!(d.fill);
    }

    #[test]
    fn lru_keeps_recently_used() {
        let mut c = small();
        c.access(0x0, Access::Load); // way A
        c.access(512, Access::Load); // way B
        c.access(0x0, Access::Load); // refresh A
        c.access(1024, Access::Load); // evicts B
        assert!(
            !c.access(0x0, Access::Load).fill,
            "A must still be resident"
        );
        assert!(c.access(512, Access::Load).fill, "B must have been evicted");
    }

    #[test]
    fn flush_counts_dirty_lines() {
        let mut c = small();
        c.access(0x0, Access::StoreFullLine);
        c.access(0x40, Access::StoreFullLine);
        c.access(0x80, Access::Load);
        assert_eq!(c.flush(), 2);
        // After flush everything misses again.
        assert!(c.access(0x0, Access::Load).fill);
    }

    #[test]
    fn streaming_store_ratio_is_two_with_wa() {
        // Write a region 4× the cache size: every line → 1 fill + 1
        // writeback → traffic ratio 2.
        let mut c = small();
        let lines = 4 * 1024 / 64;
        let mut fills = 0;
        let mut wbs = 0;
        for i in 0..lines {
            let d = c.access(i * 64, Access::StoreFullLine);
            fills += d.fill as u64;
            wbs += d.writeback as u64;
        }
        wbs += c.flush();
        assert_eq!(fills, lines);
        assert_eq!(wbs, lines);
    }

    #[test]
    fn streaming_store_ratio_is_one_with_claim() {
        let mut c = small();
        c.line_claim = true;
        let lines = 4 * 1024 / 64;
        let mut fills = 0;
        let mut wbs = 0;
        for i in 0..lines {
            let d = c.access(i * 64, Access::StoreFullLine);
            fills += d.fill as u64;
            wbs += d.writeback as u64;
        }
        wbs += c.flush();
        assert_eq!(fills, 0);
        assert_eq!(wbs, lines);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Invariants: misses ≤ accesses, writebacks ≤ store misses + claims
        /// + flush count; a second pass over a cache-resident working set
        /// never misses.
        #[test]
        fn stats_invariants(addrs in proptest::collection::vec(0u64..1 << 20, 1..500)) {
            let mut c = Cache::new(16 * 1024, 4, 64);
            for &a in &addrs {
                let kind = if a % 3 == 0 { Access::Load } else { Access::StoreFullLine };
                c.access(a, kind);
            }
            prop_assert!(c.stats.misses() <= c.stats.accesses());
            prop_assert!(c.stats.claims == 0);
        }

        #[test]
        fn resident_set_fully_hits_second_pass(start in 0u64..1024) {
            let mut c = Cache::new(16 * 1024, 4, 64);
            // 64 lines = 4 KiB ≪ 16 KiB cache.
            let base = start * 64;
            for i in 0..64u64 { c.access(base + i * 64, Access::Load); }
            let misses_before = c.stats.load_misses;
            for i in 0..64u64 { c.access(base + i * 64, Access::Load); }
            prop_assert_eq!(c.stats.load_misses, misses_before);
        }
    }
}
