//! Cache and memory-hierarchy simulator with write-allocate–evasion
//! mechanisms — the substrate behind the paper's §III case study (Fig. 4)
//! and the bandwidth rows of Table I.
//!
//! The crate provides:
//!
//! * [`cache`] — a set-associative, write-back/write-allocate cache with
//!   LRU replacement and full event counting;
//! * [`hierarchy`] — a private L1/L2 + shared-slice L3 stack per core with
//!   a memory-traffic ledger;
//! * [`policy`] — the three write-allocate–evasion mechanisms: automatic
//!   *cache-line claim* (Neoverse V2 / many Arm cores), Intel's
//!   bandwidth-gated *SpecI2M* RFO→I2M promotion, and *non-temporal
//!   stores* through write-combining buffers (x86 and Arm);
//! * [`storebench`] — the store-only benchmark of Fig. 4: memory traffic /
//!   stored volume vs. active cores, standard and NT variants;
//! * [`stream`] — the exact streaming fast path: once a constant-stride
//!   stream reaches its steady per-set cycle, stats advance in closed
//!   form, bit-identical to the per-access path (kept as the oracle
//!   behind [`stream::StreamConfig::reference`]);
//! * [`bandwidth`] — the multi-core bandwidth-saturation model used for
//!   the measured-bandwidth rows of Table I.

pub mod bandwidth;
pub mod cache;
pub mod hierarchy;
pub mod policy;
pub mod prefetch;
pub mod storebench;
pub mod stream;

pub use cache::{realized_geometry, Access, Cache, CacheStats, Geometry};
pub use hierarchy::{Hierarchy, Traffic};
pub use policy::{FixedPoint, StoreKind, WaConfig, WaMode};
pub use storebench::{store_traffic_ratio, StorePoint};
pub use stream::{MemScratch, StreamConfig, StreamOutcome, StreamPattern};
