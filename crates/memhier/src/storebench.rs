//! The store-only benchmark of Fig. 4: ratio of actual memory traffic to
//! stored data volume vs. number of active cores.
//!
//! Per sweep point the benchmark
//!
//! 1. simulates one core's store stream through the cache hierarchy
//!    ([`crate::Hierarchy`]) with the machine's write-allocate mode, giving
//!    the *base* reads/writes per stored line (cores run disjoint streams,
//!    so one simulated core is exact for all of them);
//! 2. computes the memory-interface utilization of each ccNUMA domain from
//!    the number of active cores and the per-core achievable traffic;
//! 3. applies bandwidth-gated SpecI2M promotion (Golden Cove) as a
//!    fixed-point iteration — promoted RFOs reduce traffic, which reduces
//!    utilization, which reduces promotion;
//! 4. aggregates over domains (cores are pinned compactly, filling one
//!    domain before the next, as the paper's benchmarks do).

use crate::cache::Access;
use crate::hierarchy::Hierarchy;
use crate::policy::{StoreKind, WaConfig, WaMode};
use uarch::Machine;

/// One point of the Fig. 4 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorePoint {
    pub cores: u32,
    /// Memory traffic / stored volume (1.0 = perfect WA evasion, 2.0 =
    /// full write-allocate).
    pub ratio: f64,
    /// Aggregate store bandwidth utilization across used domains (0..1).
    pub utilization: f64,
}

/// Base per-line traffic of a single-core store stream (in lines).
#[derive(Debug, Clone, Copy)]
struct BasePerLine {
    reads: f64,
    writes: f64,
}

/// Simulate one core's store-only stream (working set ≫ caches) and return
/// reads/writes per stored line.
fn single_core_base(machine: &Machine, cfg: &WaConfig, kind: StoreKind, cores: u32) -> BasePerLine {
    let mut h = Hierarchy::from_machine(machine, machine.cores);
    if cfg.mode == WaMode::AutoClaim {
        h.enable_line_claim();
    }
    let line = h.line_bytes();
    // Stream 4× the per-core L3 slice (or at least 8 MiB) to be safely
    // memory-resident, mirroring the paper's 40 GB working set.
    let slice_bytes: u64 = machine
        .caches
        .iter()
        .map(|c| {
            if c.shared {
                c.size_kib * 1024 / machine.cores as u64
            } else {
                c.size_kib * 1024
            }
        })
        .sum();
    let total = (4 * slice_bytes).max(8 << 20);
    let lines = total / line;
    match kind {
        StoreKind::Standard => {
            for i in 0..lines {
                h.access(i * line, Access::StoreFullLine);
            }
            h.flush();
        }
        StoreKind::NonTemporal => {
            let residual = cfg.nt_residual_at(cores);
            for i in 0..lines {
                h.nt_store_line(i, residual);
            }
        }
    }
    BasePerLine {
        reads: h.mem.read_bytes as f64 / (lines * line) as f64,
        writes: h.mem.write_bytes as f64 / (lines * line) as f64,
    }
}

/// Traffic ratio for `cores` active cores using standard or NT stores.
pub fn store_traffic_ratio(machine: &Machine, cores: u32, kind: StoreKind) -> StorePoint {
    let cfg = WaConfig::for_arch(machine.arch);
    let cores = cores.clamp(1, machine.cores);
    let base = single_core_base(machine, &cfg, kind, cores);

    // Distribute cores compactly over ccNUMA domains.
    let mut remaining = cores;
    let mut total_traffic = 0.0;
    let mut total_stored = 0.0;
    let mut util_acc = 0.0;
    let mut domains_used = 0u32;
    while remaining > 0 {
        let in_domain = remaining.min(cfg.cores_per_domain);
        remaining -= in_domain;
        domains_used += 1;

        // Fixed point: promotion fraction ←→ utilization.
        let mut fraction = 0.0f64;
        let mut utilization = 0.0f64;
        for _ in 0..32 {
            let reads = base.reads * (1.0 - fraction);
            let per_line_traffic = reads + base.writes; // in lines
                                                        // Offered traffic if cores ran unthrottled.
            let offered = in_domain as f64 * cfg.per_core_traffic_gbs;
            utilization = (offered / cfg.domain_bw_gbs).min(1.0);
            // Promotion only applies to standard write-allocate streams.
            let new_fraction = if kind == StoreKind::Standard && base.reads > 0.0 {
                cfg.speci2m_fraction(utilization)
            } else {
                0.0
            };
            if (new_fraction - fraction).abs() < 1e-9 {
                fraction = new_fraction;
                let _ = per_line_traffic;
                break;
            }
            fraction = new_fraction;
        }
        let reads = base.reads * (1.0 - fraction);
        total_traffic += in_domain as f64 * (reads + base.writes);
        total_stored += in_domain as f64;
        util_acc += utilization;
    }

    StorePoint {
        cores,
        ratio: total_traffic / total_stored,
        utilization: util_acc / domains_used as f64,
    }
}

/// Full Fig. 4 sweep for one machine: standard and (for x86) NT variants at
/// each core count.
pub fn fig4_sweep(machine: &Machine, counts: &[u32]) -> Vec<(u32, f64, Option<f64>)> {
    counts
        .iter()
        .map(|&n| {
            let std = store_traffic_ratio(machine, n, StoreKind::Standard);
            let nt = match machine.arch {
                // The paper shows NT variants for the two x86 machines.
                uarch::Arch::GoldenCove | uarch::Arch::Zen4 => {
                    Some(store_traffic_ratio(machine, n, StoreKind::NonTemporal).ratio)
                }
                uarch::Arch::NeoverseV2 => None,
            };
            (n, std.ratio, nt)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch::Machine;

    #[test]
    fn gcs_evades_wa_automatically() {
        let m = Machine::neoverse_v2();
        for n in [1, 8, 36, 72] {
            let p = store_traffic_ratio(&m, n, StoreKind::Standard);
            assert!((p.ratio - 1.0).abs() < 0.05, "n={n} ratio={}", p.ratio);
        }
    }

    #[test]
    fn genoa_standard_stores_pay_full_wa() {
        let m = Machine::zen4();
        for n in [1, 24, 96] {
            let p = store_traffic_ratio(&m, n, StoreKind::Standard);
            assert!((p.ratio - 2.0).abs() < 0.05, "n={n} ratio={}", p.ratio);
        }
    }

    #[test]
    fn genoa_nt_stores_are_perfect() {
        let m = Machine::zen4();
        for n in [1, 48, 96] {
            let p = store_traffic_ratio(&m, n, StoreKind::NonTemporal);
            assert!((p.ratio - 1.0).abs() < 0.01, "n={n} ratio={}", p.ratio);
        }
    }

    #[test]
    fn spr_speci2m_kicks_in_at_high_core_counts() {
        let m = Machine::golden_cove();
        let low = store_traffic_ratio(&m, 1, StoreKind::Standard);
        let high = store_traffic_ratio(&m, 13, StoreKind::Standard);
        // Starts at full WA...
        assert!((low.ratio - 2.0).abs() < 0.05, "low={}", low.ratio);
        // ...and is reduced by at most 25 % when the domain saturates.
        assert!(high.ratio < 1.85, "high={}", high.ratio);
        assert!(high.ratio >= 1.70, "high={}", high.ratio);
    }

    #[test]
    fn spr_nt_stores_leave_residual() {
        let m = Machine::golden_cove();
        let one = store_traffic_ratio(&m, 1, StoreKind::NonTemporal);
        assert!(one.ratio < 1.03, "one={}", one.ratio);
        let many = store_traffic_ratio(&m, 13, StoreKind::NonTemporal);
        assert!((many.ratio - 1.1).abs() < 0.03, "many={}", many.ratio);
    }

    #[test]
    fn sweep_produces_monotone_core_counts() {
        let m = Machine::golden_cove();
        let pts = fig4_sweep(&m, &[1, 2, 4, 8, 13, 26, 52]);
        assert_eq!(pts.len(), 7);
        assert!(pts.iter().all(|(_, s, nt)| *s >= 0.9 && nt.unwrap() >= 0.9));
    }

    #[test]
    fn full_domain_aggregation_spr() {
        // 52 cores = 4 full domains; each saturated → same ratio as 13.
        let m = Machine::golden_cove();
        let d1 = store_traffic_ratio(&m, 13, StoreKind::Standard);
        let d4 = store_traffic_ratio(&m, 52, StoreKind::Standard);
        assert!((d1.ratio - d4.ratio).abs() < 0.02);
    }
}
