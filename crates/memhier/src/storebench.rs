//! The store-only benchmark of Fig. 4: ratio of actual memory traffic to
//! stored data volume vs. number of active cores.
//!
//! Per sweep point the benchmark
//!
//! 1. simulates one core's store stream through the cache hierarchy
//!    ([`crate::Hierarchy`]) with the machine's write-allocate mode, giving
//!    the *base* reads/writes per stored line (cores run disjoint streams,
//!    so one simulated core is exact for all of them);
//! 2. computes the memory-interface utilization of each ccNUMA domain from
//!    the number of active cores and the per-core achievable traffic;
//! 3. applies bandwidth-gated SpecI2M promotion (Golden Cove) as a
//!    fixed-point iteration — promoted RFOs reduce traffic, which reduces
//!    utilization, which reduces promotion ([`WaConfig::speci2m_fixed_point`]);
//! 4. aggregates over domains (cores are pinned compactly, filling one
//!    domain before the next, as the paper's benchmarks do).
//!
//! Two fast paths keep full sweeps cheap without changing a single bit of
//! output: the hierarchy stream runs through [`crate::stream`]'s exact
//! steady-state extrapolation (forceable back to the per-access oracle
//! via [`StreamConfig::reference`]), and — since a *standard* store
//! stream's base traffic does not depend on the active-core count — the
//! heavy base simulation is hoisted out of the per-core-count loop in
//! [`sweep_points`]. [`fig4_full`] fans the remaining (machine × kind)
//! tasks out on the rayon pool, order-preservingly, so results are
//! byte-identical at every thread count.

use crate::hierarchy::Hierarchy;
use crate::policy::{StoreKind, WaConfig, WaMode};
use crate::stream::{MemScratch, StreamConfig, StreamOutcome, StreamPattern};
use rayon::prelude::*;
use serde::Serialize;
use uarch::{Arch, Machine};

/// One point of the Fig. 4 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct StorePoint {
    pub cores: u32,
    /// Memory traffic / stored volume (1.0 = perfect WA evasion, 2.0 =
    /// full write-allocate).
    pub ratio: f64,
    /// Aggregate store bandwidth utilization across used domains (0..1).
    pub utilization: f64,
}

/// Base per-line traffic of a single-core store stream (in lines).
#[derive(Debug, Clone, Copy)]
struct BasePerLine {
    reads: f64,
    writes: f64,
}

struct PoolEntry {
    arch: Arch,
    sharers: u32,
    hier: Hierarchy,
}

/// Reusable state for repeated sweep points: one hierarchy per
/// (machine, sharers) — reset, not reallocated, between streams — plus
/// the stream driver's snapshot buffers.
#[derive(Default)]
pub struct SweepScratch {
    pool: Vec<PoolEntry>,
    stream: MemScratch,
    /// Stream-driver outcome of the most recent base simulation (useful
    /// for asserting that extrapolation actually engaged).
    pub last_outcome: StreamOutcome,
}

fn pooled<'a>(pool: &'a mut Vec<PoolEntry>, machine: &Machine, sharers: u32) -> &'a mut Hierarchy {
    if let Some(pos) = pool
        .iter()
        .position(|e| e.arch == machine.arch && e.sharers == sharers)
    {
        let e = &mut pool[pos];
        e.hier.reset();
        return &mut e.hier;
    }
    pool.push(PoolEntry {
        arch: machine.arch,
        sharers,
        hier: Hierarchy::from_machine(machine, sharers),
    });
    &mut pool.last_mut().expect("just pushed").hier
}

/// Simulate one core's store-only stream (working set ≫ caches) and return
/// reads/writes per stored line.
fn single_core_base(
    machine: &Machine,
    cfg: &WaConfig,
    kind: StoreKind,
    cores: u32,
    scfg: StreamConfig,
    scratch: &mut SweepScratch,
) -> BasePerLine {
    let _span = obs::enabled().then(|| {
        obs::counter("storebench.base_sims", 1);
        obs::span(&format!(
            "storebench.base {} {}",
            machine.arch.label(),
            kind.label()
        ))
    });
    let h = pooled(&mut scratch.pool, machine, machine.cores);
    h.set_line_claim(cfg.mode == WaMode::AutoClaim);
    let line = h.line_bytes();
    // Stream 4× the per-core L3 slice (or at least 8 MiB) to be safely
    // memory-resident, mirroring the paper's 40 GB working set.
    let slice_bytes: u64 = machine
        .caches
        .iter()
        .map(|c| {
            if c.shared {
                c.size_kib * 1024 / machine.cores as u64
            } else {
                c.size_kib * 1024
            }
        })
        .sum();
    let total = (4 * slice_bytes).max(8 << 20);
    let lines = total / line;
    match kind {
        StoreKind::Standard => {
            scratch.last_outcome = h.access_stream_with_scratch(
                StreamPattern::store_lines(line, lines),
                scfg,
                &mut scratch.stream,
            );
            h.flush();
        }
        StoreKind::NonTemporal => {
            let residual = cfg.nt_residual_at(cores);
            h.nt_store_stream(lines, residual, scfg);
            scratch.last_outcome = StreamOutcome::default();
        }
    }
    BasePerLine {
        reads: h.mem.read_bytes as f64 / (lines * line) as f64,
        writes: h.mem.write_bytes as f64 / (lines * line) as f64,
    }
}

/// Distribute `cores` compactly over ccNUMA domains and aggregate the
/// per-domain fixed points into one sweep point.
fn aggregate(cfg: &WaConfig, base: BasePerLine, cores: u32, kind: StoreKind) -> StorePoint {
    let mut remaining = cores;
    let mut total_traffic = 0.0;
    let mut total_stored = 0.0;
    let mut util_acc = 0.0;
    let mut domains_used = 0u32;
    while remaining > 0 {
        let in_domain = remaining.min(cfg.cores_per_domain);
        remaining -= in_domain;
        domains_used += 1;

        // Promotion only applies to standard write-allocate streams.
        let promote = kind == StoreKind::Standard && base.reads > 0.0;
        let fp = cfg.speci2m_fixed_point(in_domain, promote);
        let reads = base.reads * (1.0 - fp.fraction);
        total_traffic += in_domain as f64 * (reads + base.writes);
        total_stored += in_domain as f64;
        util_acc += fp.utilization;
    }

    StorePoint {
        cores,
        ratio: total_traffic / total_stored,
        utilization: util_acc / domains_used as f64,
    }
}

/// Traffic ratio for `cores` active cores using standard or NT stores.
pub fn store_traffic_ratio(machine: &Machine, cores: u32, kind: StoreKind) -> StorePoint {
    let mut scratch = SweepScratch::default();
    store_traffic_ratio_with(machine, cores, kind, StreamConfig::default(), &mut scratch)
}

/// [`store_traffic_ratio`] with an explicit stream config and reusable
/// scratch. With `scfg.reference` this is exactly the original
/// access-at-a-time pipeline (one base simulation per call).
pub fn store_traffic_ratio_with(
    machine: &Machine,
    cores: u32,
    kind: StoreKind,
    scfg: StreamConfig,
    scratch: &mut SweepScratch,
) -> StorePoint {
    let cfg = WaConfig::for_machine(machine);
    let cores = cores.clamp(1, machine.cores);
    let base = single_core_base(machine, &cfg, kind, cores, scfg, scratch);
    aggregate(&cfg, base, cores, kind)
}

/// Sweep one (machine, kind) over `counts`. For standard stores the base
/// simulation does not depend on the active-core count (only NT streams
/// consult it, via the residual ramp), so it is computed once and shared —
/// bit-identical to calling [`store_traffic_ratio`] per count.
pub fn sweep_points(
    machine: &Machine,
    counts: &[u32],
    kind: StoreKind,
    scfg: StreamConfig,
    scratch: &mut SweepScratch,
) -> Vec<StorePoint> {
    let cfg = WaConfig::for_machine(machine);
    // One span per (machine, kind) sweep; the per-stream counters under
    // it come from `crate::stream`. Inert unless the recorder is on.
    let _span = obs::enabled().then(|| {
        obs::counter("storebench.sweeps", 1);
        obs::counter("storebench.points", counts.len() as u64);
        obs::span(&format!(
            "storebench.sweep {} {}",
            machine.name,
            kind.label()
        ))
    });
    match kind {
        StoreKind::Standard => {
            let base = single_core_base(machine, &cfg, kind, 1, scfg, scratch);
            counts
                .iter()
                .map(|&n| aggregate(&cfg, base, n.clamp(1, machine.cores), kind))
                .collect()
        }
        StoreKind::NonTemporal => counts
            .iter()
            .map(|&n| {
                let n = n.clamp(1, machine.cores);
                let base = single_core_base(machine, &cfg, kind, n, scfg, scratch);
                aggregate(&cfg, base, n, kind)
            })
            .collect(),
    }
}

/// Whether the paper shows an NT-store variant for this architecture.
pub fn nt_applicable(arch: Arch) -> bool {
    matches!(arch, Arch::GoldenCove | Arch::Zen4)
}

/// The core counts Fig. 4 samples for one machine.
pub fn fig4_core_counts(machine: &Machine) -> Vec<u32> {
    (1..=machine.cores)
        .filter(|n| *n == 1 || n % 4 == 0 || *n == machine.cores || *n == 13)
        .collect()
}

/// Full Fig. 4 sweep for one machine: standard and (for x86) NT variants at
/// each core count.
pub fn fig4_sweep(machine: &Machine, counts: &[u32]) -> Vec<(u32, f64, Option<f64>)> {
    let mut scratch = SweepScratch::default();
    let scfg = StreamConfig::default();
    let std = sweep_points(machine, counts, StoreKind::Standard, scfg, &mut scratch);
    let nt = nt_applicable(machine.arch)
        .then(|| sweep_points(machine, counts, StoreKind::NonTemporal, scfg, &mut scratch));
    counts
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, std[i].ratio, nt.as_ref().map(|v| v[i].ratio)))
        .collect()
}

/// One machine of the full Fig. 4 sweep.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct Fig4Machine {
    pub chip: &'static str,
    pub arch: &'static str,
    pub standard: Vec<StorePoint>,
    pub nt: Option<Vec<StorePoint>>,
}

/// The whole Fig. 4 sweep (every machine, standard + NT) at the default
/// core counts, run in parallel on the rayon pool.
pub fn fig4_full(machines: &[Machine], scfg: StreamConfig) -> Vec<Fig4Machine> {
    let counts: Vec<Vec<u32>> = machines.iter().map(fig4_core_counts).collect();
    fig4_full_with(machines, &counts, scfg)
}

/// [`fig4_full`] with explicit per-machine core counts. One parallel task
/// per (machine, store kind); the vendored pool's map is order-preserving
/// and each task's result lands in a fixed slot, so the assembled value —
/// and any JSON rendered from it — is byte-identical at every thread
/// count, including `--threads 1`.
pub fn fig4_full_with(
    machines: &[Machine],
    counts: &[Vec<u32>],
    scfg: StreamConfig,
) -> Vec<Fig4Machine> {
    assert_eq!(machines.len(), counts.len());
    let mut tasks: Vec<(usize, StoreKind)> = Vec::new();
    for (mi, m) in machines.iter().enumerate() {
        tasks.push((mi, StoreKind::Standard));
        if nt_applicable(m.arch) {
            tasks.push((mi, StoreKind::NonTemporal));
        }
    }
    let results: Vec<Vec<StorePoint>> = tasks
        .par_iter()
        .map(|&(mi, kind)| {
            let mut scratch = SweepScratch::default();
            sweep_points(&machines[mi], &counts[mi], kind, scfg, &mut scratch)
        })
        .collect();
    let mut out: Vec<Fig4Machine> = machines
        .iter()
        .map(|m| Fig4Machine {
            chip: m.chip,
            arch: m.name,
            standard: Vec::new(),
            nt: None,
        })
        .collect();
    for (&(mi, kind), points) in tasks.iter().zip(results) {
        match kind {
            StoreKind::Standard => out[mi].standard = points,
            StoreKind::NonTemporal => out[mi].nt = Some(points),
        }
    }
    out
}

/// One machine of a [`StoreSweepReport`].
#[derive(Debug, Clone, Serialize)]
pub struct StoreSweepMachine {
    pub chip: &'static str,
    pub arch: &'static str,
    pub points: Vec<StorePoint>,
}

/// Versioned JSON report for `incore-cli storebench --json`: one store
/// kind swept over core counts for one or more machines. Field order is
/// declaration order (stable across runs and thread counts).
#[derive(Debug, Clone, Serialize)]
pub struct StoreSweepReport {
    pub schema_version: u32,
    pub kind: &'static str,
    pub machines: Vec<StoreSweepMachine>,
}

impl StoreSweepReport {
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serializes");
        s.push('\n');
        s
    }
}

/// Build a [`StoreSweepReport`], fanning machines out on the rayon pool.
pub fn sweep_report(
    machines: &[Machine],
    counts: &[Vec<u32>],
    kind: StoreKind,
    scfg: StreamConfig,
) -> StoreSweepReport {
    assert_eq!(machines.len(), counts.len());
    let idx: Vec<usize> = (0..machines.len()).collect();
    let rows: Vec<StoreSweepMachine> = idx
        .par_iter()
        .map(|&i| {
            let mut scratch = SweepScratch::default();
            StoreSweepMachine {
                chip: machines[i].chip,
                arch: machines[i].name,
                points: sweep_points(&machines[i], &counts[i], kind, scfg, &mut scratch),
            }
        })
        .collect();
    StoreSweepReport {
        schema_version: 1,
        kind: kind.label(),
        machines: rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch::Machine;

    #[test]
    fn gcs_evades_wa_automatically() {
        let m = Machine::neoverse_v2();
        for n in [1, 8, 36, 72] {
            let p = store_traffic_ratio(&m, n, StoreKind::Standard);
            assert!((p.ratio - 1.0).abs() < 0.05, "n={n} ratio={}", p.ratio);
        }
    }

    #[test]
    fn genoa_standard_stores_pay_full_wa() {
        let m = Machine::zen4();
        for n in [1, 24, 96] {
            let p = store_traffic_ratio(&m, n, StoreKind::Standard);
            assert!((p.ratio - 2.0).abs() < 0.05, "n={n} ratio={}", p.ratio);
        }
    }

    #[test]
    fn genoa_nt_stores_are_perfect() {
        let m = Machine::zen4();
        for n in [1, 48, 96] {
            let p = store_traffic_ratio(&m, n, StoreKind::NonTemporal);
            assert!((p.ratio - 1.0).abs() < 0.01, "n={n} ratio={}", p.ratio);
        }
    }

    #[test]
    fn spr_speci2m_kicks_in_at_high_core_counts() {
        let m = Machine::golden_cove();
        let low = store_traffic_ratio(&m, 1, StoreKind::Standard);
        let high = store_traffic_ratio(&m, 13, StoreKind::Standard);
        // Starts at full WA...
        assert!((low.ratio - 2.0).abs() < 0.05, "low={}", low.ratio);
        // ...and is reduced by at most 25 % when the domain saturates.
        assert!(high.ratio < 1.85, "high={}", high.ratio);
        assert!(high.ratio >= 1.70, "high={}", high.ratio);
    }

    #[test]
    fn spr_nt_stores_leave_residual() {
        let m = Machine::golden_cove();
        let one = store_traffic_ratio(&m, 1, StoreKind::NonTemporal);
        assert!(one.ratio < 1.03, "one={}", one.ratio);
        let many = store_traffic_ratio(&m, 13, StoreKind::NonTemporal);
        assert!((many.ratio - 1.1).abs() < 0.03, "many={}", many.ratio);
    }

    #[test]
    fn sweep_produces_monotone_core_counts() {
        let m = Machine::golden_cove();
        let pts = fig4_sweep(&m, &[1, 2, 4, 8, 13, 26, 52]);
        assert_eq!(pts.len(), 7);
        assert!(pts.iter().all(|(_, s, nt)| *s >= 0.9 && nt.unwrap() >= 0.9));
    }

    #[test]
    fn full_domain_aggregation_spr() {
        // 52 cores = 4 full domains; each saturated → same ratio as 13.
        let m = Machine::golden_cove();
        let d1 = store_traffic_ratio(&m, 13, StoreKind::Standard);
        let d4 = store_traffic_ratio(&m, 52, StoreKind::Standard);
        assert!((d1.ratio - d4.ratio).abs() < 0.02);
    }

    fn point_bits(p: &StorePoint) -> (u32, u64, u64) {
        (p.cores, p.ratio.to_bits(), p.utilization.to_bits())
    }

    #[test]
    fn hoisted_sweep_matches_reference_pipeline_bitwise() {
        // The fast pipeline (steady-state extrapolation + hoisted base +
        // pooled hierarchy) against the original per-count per-access
        // pipeline, compared bit for bit.
        let m = Machine::golden_cove();
        let counts = [1u32, 13, 52];
        for kind in [StoreKind::Standard, StoreKind::NonTemporal] {
            let mut scratch = SweepScratch::default();
            let fast = sweep_points(&m, &counts, kind, StreamConfig::default(), &mut scratch);
            if kind == StoreKind::Standard {
                assert!(
                    scratch.last_outcome.extrapolated > 0,
                    "steady state never detected on the SPR store stream"
                );
            }
            let reference: Vec<StorePoint> = counts
                .iter()
                .map(|&n| {
                    let mut s = SweepScratch::default();
                    store_traffic_ratio_with(&m, n, kind, StreamConfig::reference(), &mut s)
                })
                .collect();
            for (f, r) in fast.iter().zip(&reference) {
                assert_eq!(point_bits(f), point_bits(r), "kind {:?}", kind);
            }
        }
    }

    #[test]
    fn fig4_full_is_identical_at_every_thread_count() {
        let m = Machine::neoverse_v2();
        let counts = vec![vec![1u32, 8, 72]];
        let machines = vec![m];
        let default_pool = fig4_full_with(&machines, &counts, StreamConfig::default());
        let one = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("pool builds")
            .install(|| fig4_full_with(&machines, &counts, StreamConfig::default()));
        assert_eq!(default_pool, one);
    }

    #[test]
    fn speci2m_fixed_point_converges_for_all_spr_core_counts() {
        let m = Machine::golden_cove();
        let cfg = WaConfig::for_arch(m.arch);
        for n in 1..=m.cores {
            let mut remaining = n;
            while remaining > 0 {
                let in_domain = remaining.min(cfg.cores_per_domain);
                remaining -= in_domain;
                let fp = cfg.speci2m_fixed_point(in_domain, true);
                assert!(fp.converged, "n={n} in_domain={in_domain} did not converge");
                assert!(fp.iterations <= 32);
                assert!((0.0..=0.25 + 1e-12).contains(&fp.fraction));
                assert!((0.0..=1.0).contains(&fp.utilization));
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Shrinking the utilization headroom (raising the offered
        /// per-core traffic, hence the domain utilization) can only hold
        /// or lower the traffic ratio: SpecI2M promotion is monotone in
        /// utilization and promotion only removes reads.
        #[test]
        fn ratio_monotone_nonincreasing_as_headroom_shrinks(
            t1_centis in 0u32..3000,
            t2_centis in 0u32..3000,
            in_domain in 1u32..14,
        ) {
            let (t1, t2) = (t1_centis as f64 / 100.0, t2_centis as f64 / 100.0);
            let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            let base = BasePerLine { reads: 1.0, writes: 1.0 };
            let mk = |traffic: f64| WaConfig {
                per_core_traffic_gbs: traffic,
                ..WaConfig::for_arch(uarch::Arch::GoldenCove)
            };
            let p_lo = aggregate(&mk(lo), base, in_domain, StoreKind::Standard);
            let p_hi = aggregate(&mk(hi), base, in_domain, StoreKind::Standard);
            prop_assert!(p_lo.utilization <= p_hi.utilization + 1e-12);
            prop_assert!(p_hi.ratio <= p_lo.ratio + 1e-12);
        }
    }
}
