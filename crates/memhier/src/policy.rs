//! Write-allocate–evasion policies and machine-specific memory parameters.

use uarch::Arch;

/// How a machine's cache hierarchy treats full-line store misses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WaMode {
    /// Plain write-allocate: every store miss fetches the line (RFO).
    WriteAllocate,
    /// Automatic cache-line claim: the core detects a full-line overwrite
    /// and claims the line without reading it (Arm CPUs incl. Neoverse V2).
    AutoClaim,
    /// Intel's SpecI2M: the fabric promotes RFO to I2M (claim) only when
    /// the memory interface is close to saturation.
    SpecI2M {
        /// Utilization (0..1 of sustained bandwidth) at which promotion
        /// begins.
        onset: f64,
        /// Maximum fraction of write-allocate fills that get promoted
        /// (paper: SpecI2M removes at most ~25 % of the WA traffic).
        max_fraction: f64,
    },
}

/// Whether the store stream uses standard or non-temporal stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    Standard,
    NonTemporal,
}

impl StoreKind {
    /// Stable machine-readable label (used in JSON reports).
    pub fn label(&self) -> &'static str {
        match self {
            StoreKind::Standard => "standard",
            StoreKind::NonTemporal => "nt",
        }
    }
}

/// Converged state of the SpecI2M promotion ←→ utilization fixed point
/// for one ccNUMA domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedPoint {
    /// Promotion fraction at the fixed point.
    pub fraction: f64,
    /// Domain utilization at the fixed point (0..1 of sustained BW).
    pub utilization: f64,
    /// Iterations spent (1 when promotion is off or gated out).
    pub iterations: u32,
    /// Whether the 1e-9 convergence test passed within the cap.
    pub converged: bool,
}

/// Per-machine memory-path parameters for the store benchmark and the
/// bandwidth model.
#[derive(Debug, Clone, Copy)]
pub struct WaConfig {
    pub arch: Arch,
    pub mode: WaMode,
    /// Cores per ccNUMA domain (SNC-4 on SPR → 13).
    pub cores_per_domain: u32,
    /// Sustained bandwidth of one ccNUMA domain in GB/s.
    pub domain_bw_gbs: f64,
    /// Memory traffic one core can keep in flight on a store-only stream
    /// (GB/s of *traffic*, i.e. including write-allocate reads).
    pub per_core_traffic_gbs: f64,
    /// Memory traffic one core can generate on a load-only stream (GB/s),
    /// used by the bandwidth-scaling model.
    pub per_core_load_bw_gbs: f64,
    /// Residual fraction of write-allocate traffic that NT stores fail to
    /// eliminate once many streams compete for write-combining buffers
    /// (paper: ~10 % on SPR, 0 on Genoa).
    pub nt_residual: f64,
    /// Number of concurrent streams at which the NT residual is fully
    /// developed (below: proportional ramp).
    pub nt_residual_onset_cores: u32,
}

impl WaConfig {
    /// The configuration for each of the paper's machines.
    pub fn for_arch(arch: Arch) -> WaConfig {
        match arch {
            // GCS: next-to-optimal automatic WA evasion; one NUMA domain.
            Arch::NeoverseV2 => WaConfig {
                arch,
                mode: WaMode::AutoClaim,
                cores_per_domain: 72,
                domain_bw_gbs: 467.0,
                per_core_traffic_gbs: 30.0,
                per_core_load_bw_gbs: 32.0,
                nt_residual: 0.0,
                nt_residual_onset_cores: 1,
            },
            // SPR in SNC-4: 13 cores per domain; SpecI2M gated on
            // bandwidth saturation; NT stores leave ~10 % residual.
            Arch::GoldenCove => WaConfig {
                arch,
                mode: WaMode::SpecI2M {
                    onset: 0.85,
                    max_fraction: 0.25,
                },
                cores_per_domain: 13,
                domain_bw_gbs: 273.0 / 4.0,
                per_core_traffic_gbs: 9.0,
                per_core_load_bw_gbs: 20.0,
                nt_residual: 0.10,
                nt_residual_onset_cores: 3,
            },
            // Genoa: no automatic mechanism — NT stores are the only way,
            // but they work perfectly.
            Arch::Zen4 => WaConfig {
                arch,
                mode: WaMode::WriteAllocate,
                cores_per_domain: 96,
                domain_bw_gbs: 360.0,
                per_core_traffic_gbs: 28.0,
                per_core_load_bw_gbs: 24.0,
                nt_residual: 0.0,
                nt_residual_onset_cores: 1,
            },
        }
    }

    /// The configuration for an arbitrary machine model.
    ///
    /// The three family models return exactly [`WaConfig::for_arch`] —
    /// several of those numbers (per-core traffic limits, SNC-4 domain
    /// bandwidth) are *measured* quantities the paper reports, not
    /// derivable from the machine description, and the bit-identity of
    /// the shipped models depends on them staying put. Derived registry
    /// models (different core count, NUMA layout, or memory subsystem)
    /// keep the family's per-core behaviour but rescale the domain
    /// topology and bandwidth from their own `cores`, `numa_domains`, and
    /// measured memory bandwidth.
    pub fn for_machine(m: &uarch::Machine) -> WaConfig {
        let mut cfg = Self::for_arch(m.arch);
        let base = uarch::all_machines()
            .into_iter()
            .find(|b| b.arch == m.arch)
            .expect("every Arch has a family model");
        let same_topology = m.cores == base.cores && m.numa_domains == base.numa_domains;
        let same_memory = m.memory.theor_bw_gbs == base.memory.theor_bw_gbs
            && m.memory.efficiency == base.memory.efficiency;
        if same_topology && same_memory {
            return cfg;
        }
        let domains = m.numa_domains.max(1);
        cfg.cores_per_domain = (m.cores / domains).max(1);
        // Scale the measured per-domain bandwidth by the machines'
        // sustained-bandwidth ratio so the family's calibration (fraction
        // of theoretical peak actually reached per domain) carries over.
        let base_sustained = base.memory.measured_bw_gbs() / base.numa_domains.max(1) as f64;
        let sustained = m.memory.measured_bw_gbs() / domains as f64;
        cfg.domain_bw_gbs *= sustained / base_sustained;
        cfg
    }

    /// SpecI2M promotion fraction at a given utilization of the sustained
    /// domain bandwidth. Zero for the other modes.
    pub fn speci2m_fraction(&self, utilization: f64) -> f64 {
        match self.mode {
            WaMode::SpecI2M {
                onset,
                max_fraction,
            } => {
                if utilization <= onset {
                    0.0
                } else {
                    let x = ((utilization - onset) / (1.0 - onset)).clamp(0.0, 1.0);
                    max_fraction * x
                }
            }
            _ => 0.0,
        }
    }

    /// Iterate the SpecI2M promotion fraction against the domain
    /// utilization it induces for `in_domain` active cores, capped at 32
    /// iterations. `promote` gates promotion (standard write-allocate
    /// streams with a non-zero read base only). Under the current traffic
    /// model the utilization does not feed back on the fraction, so this
    /// converges in at most two iterations — the cap guards models where
    /// it does.
    pub fn speci2m_fixed_point(&self, in_domain: u32, promote: bool) -> FixedPoint {
        let mut fraction = 0.0f64;
        let mut utilization = 0.0f64;
        let mut iterations = 0u32;
        let mut converged = false;
        for _ in 0..32 {
            iterations += 1;
            // Offered traffic if cores ran unthrottled.
            let offered = in_domain as f64 * self.per_core_traffic_gbs;
            utilization = (offered / self.domain_bw_gbs).min(1.0);
            let new_fraction = if promote {
                self.speci2m_fraction(utilization)
            } else {
                0.0
            };
            if (new_fraction - fraction).abs() < 1e-9 {
                fraction = new_fraction;
                converged = true;
                break;
            }
            fraction = new_fraction;
        }
        FixedPoint {
            fraction,
            utilization,
            iterations,
            converged,
        }
    }

    /// Residual WA fraction of an NT-store stream at `cores` active cores
    /// in a domain.
    pub fn nt_residual_at(&self, cores: u32) -> f64 {
        if self.nt_residual == 0.0 {
            return 0.0;
        }
        if cores >= self.nt_residual_onset_cores {
            self.nt_residual
        } else {
            // Very small core counts keep their WC buffers: tiny residual.
            self.nt_residual * (cores.saturating_sub(1)) as f64
                / self.nt_residual_onset_cores.max(1) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_match_paper_structure() {
        let gcs = WaConfig::for_arch(Arch::NeoverseV2);
        assert_eq!(gcs.mode, WaMode::AutoClaim);
        assert_eq!(gcs.cores_per_domain, 72);

        let spr = WaConfig::for_arch(Arch::GoldenCove);
        assert!(matches!(spr.mode, WaMode::SpecI2M { .. }));
        assert_eq!(spr.cores_per_domain, 13);
        assert!(spr.nt_residual > 0.0);

        let genoa = WaConfig::for_arch(Arch::Zen4);
        assert_eq!(genoa.mode, WaMode::WriteAllocate);
        assert_eq!(genoa.nt_residual, 0.0);
    }

    #[test]
    fn speci2m_gating() {
        let spr = WaConfig::for_arch(Arch::GoldenCove);
        assert_eq!(spr.speci2m_fraction(0.2), 0.0);
        assert_eq!(spr.speci2m_fraction(0.85), 0.0);
        assert!((spr.speci2m_fraction(1.0) - 0.25).abs() < 1e-12);
        let mid = spr.speci2m_fraction(0.95);
        assert!(mid > 0.0 && mid < 0.25);
        // Non-SpecI2M machines never promote.
        assert_eq!(WaConfig::for_arch(Arch::Zen4).speci2m_fraction(1.0), 0.0);
        assert_eq!(
            WaConfig::for_arch(Arch::NeoverseV2).speci2m_fraction(1.0),
            0.0
        );
    }

    #[test]
    fn nt_residual_ramp() {
        let spr = WaConfig::for_arch(Arch::GoldenCove);
        assert_eq!(spr.nt_residual_at(1), 0.0);
        assert!(spr.nt_residual_at(2) < 0.10);
        assert!((spr.nt_residual_at(3) - 0.10).abs() < 1e-12);
        assert!((spr.nt_residual_at(13) - 0.10).abs() < 1e-12);
        assert_eq!(WaConfig::for_arch(Arch::Zen4).nt_residual_at(50), 0.0);
    }
}
