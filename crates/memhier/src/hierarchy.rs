//! Per-core cache stack (L1 → L2 → L3 slice) with a memory-traffic ledger.

use crate::cache::{Access, Cache};
use crate::stream::{self, MemScratch, StreamConfig, StreamOutcome, StreamPattern};
use uarch::Machine;

/// Bytes exchanged with main memory.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Traffic {
    pub read_bytes: u64,
    pub write_bytes: u64,
}

impl Traffic {
    pub fn total(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }
}

/// A core-private view of the cache hierarchy: L1 and L2 private, plus a
/// per-core slice of the shared L3 (streaming workloads from different
/// cores use disjoint addresses, so slicing is exact for them).
#[derive(Debug, Clone)]
pub struct Hierarchy {
    pub levels: Vec<Cache>,
    line_bytes: u64,
    /// Main-memory traffic generated so far.
    pub mem: Traffic,
}

impl Hierarchy {
    /// Build from a machine description, dividing the shared L3 by
    /// `sharers`.
    pub fn from_machine(machine: &Machine, sharers: u32) -> Hierarchy {
        let mut levels = Vec::new();
        for c in &machine.caches {
            let size = if c.shared {
                (c.size_kib * 1024) / sharers.max(1) as u64
            } else {
                c.size_kib * 1024
            };
            levels.push(Cache::new(size, c.assoc as usize, c.line_bytes as u64));
        }
        let line = machine
            .caches
            .first()
            .map(|c| c.line_bytes as u64)
            .unwrap_or(64);
        Hierarchy {
            levels,
            line_bytes: line,
            mem: Traffic::default(),
        }
    }

    /// Build a small synthetic hierarchy (for tests).
    pub fn synthetic(l1: u64, l2: u64, l3: u64, line: u64) -> Hierarchy {
        Hierarchy {
            levels: vec![
                Cache::new(l1, 4, line),
                Cache::new(l2, 8, line),
                Cache::new(l3, 16, line),
            ],
            line_bytes: line,
            mem: Traffic::default(),
        }
    }

    /// Enable automatic cache-line claim at every level (Arm-style).
    pub fn enable_line_claim(&mut self) {
        for l in &mut self.levels {
            l.line_claim = true;
        }
    }

    /// Set line-claim at every level (both directions; used when a
    /// hierarchy is pooled and reused across configurations).
    pub fn set_line_claim(&mut self, on: bool) {
        for l in &mut self.levels {
            l.line_claim = on;
        }
    }

    /// Return the hierarchy to its just-constructed state without
    /// reallocating the per-set arrays — the scratch/arena half of the
    /// streaming fast path: repeated `single_core_base` calls reuse one
    /// hierarchy per (machine, sharers) instead of rebuilding ~10⁵ lines.
    pub fn reset(&mut self) {
        for l in &mut self.levels {
            l.reset();
        }
        self.mem = Traffic::default();
    }

    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Present an access to the hierarchy; misses propagate downward and
    /// dirty evictions write back into the next level (allocating there
    /// without a memory read — a writeback carries the whole line), with
    /// cascades ultimately reaching main memory.
    pub fn access(&mut self, addr: u64, kind: Access) {
        let mut k = kind;
        for i in 0..self.levels.len() {
            let down = self.levels[i].access(addr, k);
            if down.writeback {
                self.writeback_into(i + 1, down.writeback_addr);
            }
            if !down.fill {
                return; // satisfied at this level
            }
            // A miss propagates as a *read* fill: only the level where the
            // store semantically happens (the first one) holds the dirty
            // data; lower levels receive clean copies. Dirty data travels
            // downward exclusively via writebacks.
            k = Access::Load;
        }
        // Missed the last level: memory read (line fill / RFO).
        self.mem.read_bytes += self.line_bytes;
    }

    /// Deposit a written-back line into level `level` (or memory), chasing
    /// any displaced dirty victims further down.
    fn writeback_into(&mut self, level: usize, addr: u64) {
        let mut level = level;
        let mut addr = addr;
        loop {
            if level >= self.levels.len() {
                self.mem.write_bytes += self.line_bytes;
                return;
            }
            match self.levels[level].writeback_insert(addr) {
                Some(victim) => {
                    addr = victim;
                    level += 1;
                }
                None => return,
            }
        }
    }

    /// Install a prefetched line into L2 (and the levels below it) without
    /// touching L1 — the standard L2-stream-prefetcher behaviour. Prefetch
    /// fills do not perturb the demand hit/miss counters. Charges a memory
    /// read if the line was not already cached anywhere below L1.
    pub fn prefetch_into_l2(&mut self, addr: u64) {
        let mut filled_from_memory = self.levels.len() > 1;
        for i in 1..self.levels.len() {
            let (present, displaced) = self.levels[i].prefetch_insert(addr);
            if let Some(victim) = displaced {
                self.writeback_into(i + 1, victim);
            }
            if present {
                filled_from_memory = false;
                break;
            }
        }
        if filled_from_memory {
            self.mem.read_bytes += self.line_bytes;
        }
    }

    /// Present a whole constant-stride stream, taking the exact
    /// steady-state fast path when the pattern allows it (see
    /// [`crate::stream`]). Counters and final cache state are
    /// bit-identical to issuing each access through [`Self::access`];
    /// pass `StreamConfig { reference: true }` to force that oracle loop.
    pub fn access_stream(&mut self, p: StreamPattern, cfg: StreamConfig) -> StreamOutcome {
        let mut scratch = MemScratch::default();
        self.access_stream_with_scratch(p, cfg, &mut scratch)
    }

    /// [`Self::access_stream`] with caller-owned snapshot buffers, so
    /// sweeps that issue many streams allocate nothing per stream.
    pub fn access_stream_with_scratch(
        &mut self,
        p: StreamPattern,
        cfg: StreamConfig,
        scratch: &mut MemScratch,
    ) -> StreamOutcome {
        stream::run_stream(self, p, cfg, scratch)
    }

    /// Non-temporal store stream of `lines` lines: closed form for the
    /// ledger the per-line loop produces (a write per line plus a read
    /// for every ⌈1/residual⌉-th line, counting line 0). Bit-identical
    /// to calling [`Self::nt_store_line`] for `0..lines`; the oracle
    /// loop is retained behind `cfg.reference`.
    pub fn nt_store_stream(&mut self, lines: u64, residual_wa: f64, cfg: StreamConfig) {
        if cfg.reference {
            for i in 0..lines {
                self.nt_store_line(i, residual_wa);
            }
            return;
        }
        self.mem.write_bytes += lines * self.line_bytes;
        if residual_wa > 0.0 && lines > 0 {
            let period = (1.0 / residual_wa).round() as u64;
            if period > 0 {
                self.mem.read_bytes += lines.div_ceil(period) * self.line_bytes;
            }
        }
    }

    /// Non-temporal store: bypasses the hierarchy entirely through the
    /// write-combining buffers; `residual_wa` ∈ [0,1] is the fraction of
    /// lines whose WC buffer was evicted early and which therefore still
    /// perform a read-modify-write.
    ///
    /// `index` identifies the line within the stream so that the residual
    /// is applied deterministically (every ⌈1/residual⌉-th line).
    pub fn nt_store_line(&mut self, index: u64, residual_wa: f64) {
        self.mem.write_bytes += self.line_bytes;
        if residual_wa > 0.0 {
            let period = (1.0 / residual_wa).round() as u64;
            if period > 0 && index.is_multiple_of(period) {
                self.mem.read_bytes += self.line_bytes;
            }
        }
    }

    /// Flush all levels, charging final writebacks to memory.
    pub fn flush(&mut self) {
        let mut wb = 0;
        for l in &mut self.levels {
            wb += l.flush();
        }
        self.mem.write_bytes += wb * self.line_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_stores_without_claim_read_and_write() {
        // 4 KiB L1, 16 KiB L2, 64 KiB L3; stream 1 MiB of full-line stores.
        let mut h = Hierarchy::synthetic(4 << 10, 16 << 10, 64 << 10, 64);
        let lines = (1u64 << 20) / 64;
        for i in 0..lines {
            h.access(i * 64, Access::StoreFullLine);
        }
        h.flush();
        let stored = lines * 64;
        let ratio = h.mem.total() as f64 / stored as f64;
        assert!((ratio - 2.0).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn streaming_stores_with_claim_write_only() {
        let mut h = Hierarchy::synthetic(4 << 10, 16 << 10, 64 << 10, 64);
        h.enable_line_claim();
        let lines = (1u64 << 20) / 64;
        for i in 0..lines {
            h.access(i * 64, Access::StoreFullLine);
        }
        h.flush();
        let stored = lines * 64;
        let ratio = h.mem.total() as f64 / stored as f64;
        assert!((ratio - 1.0).abs() < 0.05, "ratio = {ratio}");
        assert_eq!(h.mem.read_bytes, 0);
    }

    #[test]
    fn nt_stores_bypass() {
        let mut h = Hierarchy::synthetic(4 << 10, 16 << 10, 64 << 10, 64);
        for i in 0..1000 {
            h.nt_store_line(i, 0.0);
        }
        assert_eq!(h.mem.read_bytes, 0);
        assert_eq!(h.mem.write_bytes, 1000 * 64);
    }

    #[test]
    fn nt_residual_charges_reads() {
        let mut h = Hierarchy::synthetic(4 << 10, 16 << 10, 64 << 10, 64);
        for i in 0..1000 {
            h.nt_store_line(i, 0.10);
        }
        let ratio = h.mem.total() as f64 / (1000.0 * 64.0);
        assert!((ratio - 1.1).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn cache_resident_loads_hit_after_warmup() {
        let mut h = Hierarchy::synthetic(4 << 10, 16 << 10, 64 << 10, 64);
        for i in 0..32u64 {
            h.access(i * 64, Access::Load);
        }
        let reads_after_warm = h.mem.read_bytes;
        for _ in 0..10 {
            for i in 0..32u64 {
                h.access(i * 64, Access::Load);
            }
        }
        assert_eq!(h.mem.read_bytes, reads_after_warm);
    }

    #[test]
    fn from_machine_shapes() {
        let m = uarch::Machine::golden_cove();
        let h = Hierarchy::from_machine(&m, 52);
        assert_eq!(h.levels.len(), 3);
        assert_eq!(h.line_bytes(), 64);
    }
}
