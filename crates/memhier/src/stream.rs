//! Exact streaming fast path.
//!
//! The Fig. 4 and bandwidth sweeps push multi-megabyte strided streams
//! through [`crate::Hierarchy`] one access at a time. For a constant
//! stride the hierarchy is *translation invariant*: shifting every
//! address by a multiple of `sets × line_bytes` of every level maps
//! reachable states onto each other without changing any counter
//! delta. So once the warmed-up state at access `i` equals the state at
//! access `i − P` shifted by `P × stride` (where `P` makes `P × stride`
//! a multiple of every level's set span), every subsequent period
//! contributes *exactly* the same stat deltas — and we can add
//! `whole_periods × delta` in closed form, simulate only the tail, and
//! teleport the tags so the final state (including the dirty-line
//! census that [`crate::Hierarchy::flush`] takes) behaves exactly like
//! the per-access path's. "Equals" here is observational: absolute LRU
//! stamps and which way a line occupies are invisible to every future
//! access (replacement compares stamps within a set; lookups scan all
//! ways), and way assignment genuinely rotates between periods, so the
//! detector compares each set as its victim-key-ordered sequence of
//! `(valid, dirty, tag)`. Every counter — `CacheStats`, `Traffic` — is
//! bit-identical to the per-access path.
//!
//! The per-access path is retained behind [`StreamConfig::reference`]
//! as the oracle; `tests/memhier_equivalence.rs` and `bench::membench`
//! assert bit-equality on every run.

use crate::cache::{Access, Cache, CacheStats, Line};
use crate::hierarchy::{Hierarchy, Traffic};

/// A constant-stride access stream: `count` accesses of `kind` at
/// `start, start + stride, …`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamPattern {
    pub start: u64,
    pub stride: u64,
    pub count: u64,
    pub kind: Access,
}

impl StreamPattern {
    /// Sequential full-line stores over `lines` lines of `line_bytes`
    /// each — the pattern the write-allocate benchmarks issue.
    pub fn store_lines(line_bytes: u64, lines: u64) -> StreamPattern {
        StreamPattern {
            start: 0,
            stride: line_bytes,
            count: lines,
            kind: Access::StoreFullLine,
        }
    }

    fn addr(&self, i: u64) -> u64 {
        self.start + i * self.stride
    }
}

/// Options for [`crate::Hierarchy::access_stream`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamConfig {
    /// Force the per-access oracle path (no steady-state extrapolation).
    pub reference: bool,
}

impl StreamConfig {
    pub fn reference() -> StreamConfig {
        StreamConfig { reference: true }
    }
}

/// What the stream driver did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamOutcome {
    /// The fast path was eligible for this pattern (stride a multiple of
    /// every line size). `false` means the oracle loop ran.
    pub fast_path: bool,
    /// Accesses whose effect was applied in closed form instead of being
    /// simulated (0 if the stream ended before steady state was seen).
    pub extrapolated: u64,
}

/// Reusable snapshot buffers so repeated streams allocate nothing.
#[derive(Debug, Default)]
pub struct MemScratch {
    lines: Vec<Vec<Line>>,
    stats: Vec<CacheStats>,
    mem: Traffic,
    rank_cur: Vec<usize>,
    rank_old: Vec<usize>,
}

/// The two shapes the driver runs against: a full hierarchy or a lone
/// cache level. Only what the steady-state machinery needs.
pub(crate) trait StreamSink {
    fn access_one(&mut self, addr: u64, kind: Access);
    fn num_levels(&self) -> usize;
    fn level(&self, i: usize) -> &Cache;
    fn level_mut(&mut self, i: usize) -> &mut Cache;
    fn mem(&self) -> Traffic;
    fn mem_add_scaled(&mut self, delta: Traffic, k: u64);
}

impl StreamSink for Hierarchy {
    fn access_one(&mut self, addr: u64, kind: Access) {
        self.access(addr, kind);
    }
    fn num_levels(&self) -> usize {
        self.levels.len()
    }
    fn level(&self, i: usize) -> &Cache {
        &self.levels[i]
    }
    fn level_mut(&mut self, i: usize) -> &mut Cache {
        &mut self.levels[i]
    }
    fn mem(&self) -> Traffic {
        self.mem
    }
    fn mem_add_scaled(&mut self, delta: Traffic, k: u64) {
        self.mem.read_bytes += delta.read_bytes * k;
        self.mem.write_bytes += delta.write_bytes * k;
    }
}

impl StreamSink for Cache {
    fn access_one(&mut self, addr: u64, kind: Access) {
        self.access(addr, kind);
    }
    fn num_levels(&self) -> usize {
        1
    }
    fn level(&self, _i: usize) -> &Cache {
        self
    }
    fn level_mut(&mut self, _i: usize) -> &mut Cache {
        self
    }
    fn mem(&self) -> Traffic {
        Traffic::default()
    }
    fn mem_add_scaled(&mut self, _delta: Traffic, _k: u64) {}
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

fn sub_stats(a: CacheStats, b: CacheStats) -> CacheStats {
    CacheStats {
        loads: a.loads - b.loads,
        stores: a.stores - b.stores,
        load_misses: a.load_misses - b.load_misses,
        store_misses: a.store_misses - b.store_misses,
        claims: a.claims - b.claims,
        writebacks: a.writebacks - b.writebacks,
    }
}

fn add_stats_scaled(into: &mut CacheStats, d: CacheStats, k: u64) {
    into.loads += d.loads * k;
    into.stores += d.stores * k;
    into.load_misses += d.load_misses * k;
    into.store_misses += d.store_misses * k;
    into.claims += d.claims * k;
    into.writebacks += d.writebacks * k;
}

fn take_snapshot<S: StreamSink>(sink: &S, s: &mut MemScratch) {
    let n = sink.num_levels();
    s.lines.resize_with(n, Vec::new);
    s.stats.clear();
    for i in 0..n {
        sink.level(i).snapshot_into(&mut s.lines[i]);
        s.stats.push(sink.level(i).stats);
    }
    s.mem = sink.mem();
}

fn matches_snapshot<S: StreamSink>(sink: &S, s: &mut MemScratch, period_bytes: u64) -> bool {
    for i in 0..sink.num_levels() {
        let l = sink.level(i);
        let shift_lines = period_bytes / l.line_bytes();
        if !l.matches_shifted(&s.lines[i], shift_lines, &mut s.rank_cur, &mut s.rank_old) {
            return false;
        }
    }
    true
}

/// Run `p` against `sink`, extrapolating once a steady period is seen.
/// Bit-identical to issuing every access through `access_one`.
///
/// When the [`obs`] recorder is on, the per-level counter deltas and the
/// fast-path-vs-oracle attribution of this one stream are emitted after
/// the run; the disabled cost is a single atomic load.
pub(crate) fn run_stream<S: StreamSink>(
    sink: &mut S,
    p: StreamPattern,
    cfg: StreamConfig,
    s: &mut MemScratch,
) -> StreamOutcome {
    if !obs::enabled() {
        return run_stream_inner(sink, p, cfg, s);
    }
    let _span = obs::span("memhier:stream");
    let pre: Vec<CacheStats> = (0..sink.num_levels())
        .map(|i| sink.level(i).stats)
        .collect();
    let pre_mem = sink.mem();
    let out = run_stream_inner(sink, p, cfg, s);
    obs::counter("mem.stream.calls", 1);
    obs::counter(
        if out.fast_path {
            "mem.stream.fast_path"
        } else {
            "mem.stream.oracle"
        },
        1,
    );
    obs::counter("mem.stream.accesses", p.count);
    obs::counter("mem.stream.extrapolated", out.extrapolated);
    for (i, before) in pre.iter().enumerate() {
        let d = sub_stats(sink.level(i).stats, *before);
        let l = i + 1;
        obs::counter(&format!("mem.l{l}.loads"), d.loads);
        obs::counter(&format!("mem.l{l}.stores"), d.stores);
        obs::counter(&format!("mem.l{l}.load_misses"), d.load_misses);
        obs::counter(&format!("mem.l{l}.store_misses"), d.store_misses);
        obs::counter(&format!("mem.l{l}.claims"), d.claims);
        obs::counter(&format!("mem.l{l}.writebacks"), d.writebacks);
    }
    obs::counter("mem.read_bytes", sink.mem().read_bytes - pre_mem.read_bytes);
    obs::counter(
        "mem.write_bytes",
        sink.mem().write_bytes - pre_mem.write_bytes,
    );
    out
}

fn run_stream_inner<S: StreamSink>(
    sink: &mut S,
    p: StreamPattern,
    cfg: StreamConfig,
    s: &mut MemScratch,
) -> StreamOutcome {
    let eligible = !cfg.reference
        && p.stride > 0
        && sink.num_levels() > 0
        && (0..sink.num_levels()).all(|i| p.stride.is_multiple_of(sink.level(i).line_bytes()));
    if !eligible {
        for i in 0..p.count {
            sink.access_one(p.addr(i), p.kind);
        }
        return StreamOutcome {
            fast_path: false,
            extrapolated: 0,
        };
    }
    // Smallest P (in accesses) such that P × stride is a multiple of
    // every level's set span — set spans are powers of two, so the lcm
    // of the per-level periods is just their max.
    let period = (0..sink.num_levels())
        .map(|i| {
            let l = sink.level(i);
            let span = l.sets() * l.line_bytes();
            span / gcd(p.stride, span)
        })
        .max()
        .expect("at least one level");
    // Don't bother comparing before every line can have been touched
    // once: each access claims at most one new line per level, so the
    // state cannot be periodic before `capacity` accesses.
    let capacity: u64 = (0..sink.num_levels())
        .map(|i| sink.level(i).capacity_lines())
        .sum();
    let warm = capacity + period;
    let period_bytes = period * p.stride;
    let mut have_snapshot_at = u64::MAX;
    let mut i = 0u64;
    while i < p.count {
        sink.access_one(p.addr(i), p.kind);
        i += 1;
        if !i.is_multiple_of(period) || i < warm || p.count - i < 2 * period {
            continue;
        }
        if have_snapshot_at == i - period && matches_snapshot(sink, s, period_bytes) {
            let remaining = p.count - i;
            let whole = remaining / period;
            let tail = remaining % period;
            // Per-period deltas, captured before the tail runs.
            let dstats: Vec<CacheStats> = (0..sink.num_levels())
                .map(|l| sub_stats(sink.level(l).stats, s.stats[l]))
                .collect();
            let dmem = Traffic {
                read_bytes: sink.mem().read_bytes - s.mem.read_bytes,
                write_bytes: sink.mem().write_bytes - s.mem.write_bytes,
            };
            // The tail is simulated with its *true* addresses from the
            // current state; the skipped whole periods commute with it
            // because per-access deltas are now P-periodic.
            for j in 0..tail {
                sink.access_one(p.addr(i + j), p.kind);
            }
            for (l, d) in dstats.iter().enumerate() {
                add_stats_scaled(&mut sink.level_mut(l).stats, *d, whole);
            }
            sink.mem_add_scaled(dmem, whole);
            for l in 0..sink.num_levels() {
                let shift_lines = whole * (period_bytes / sink.level(l).line_bytes());
                sink.level_mut(l).shift_tags(shift_lines);
            }
            return StreamOutcome {
                fast_path: true,
                extrapolated: whole * period,
            };
        }
        take_snapshot(sink, s);
        have_snapshot_at = i;
    }
    StreamOutcome {
        fast_path: true,
        extrapolated: 0,
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;

    #[test]
    #[ignore]
    fn diagnose_spr_steady_state() {
        let m = uarch::Machine::golden_cove();
        let mut h = Hierarchy::from_machine(&m, m.cores);
        let line = h.line_bytes();
        let p = StreamPattern::store_lines(line, 300_000);
        let mut s = MemScratch::default();
        let period: u64 = (0..h.num_levels())
            .map(|i| {
                let l = h.level(i);
                let span = l.sets() * l.line_bytes();
                span / gcd(p.stride, span)
            })
            .max()
            .unwrap();
        let capacity: u64 = (0..h.num_levels())
            .map(|i| h.level(i).capacity_lines())
            .sum();
        eprintln!("period={period} capacity={capacity}");
        let period_bytes = period * p.stride;
        let mut have = false;
        for i in 0..p.count {
            h.access(p.addr(i), p.kind);
            let i = i + 1;
            if !i.is_multiple_of(period) || i < capacity + period {
                continue;
            }
            if have {
                let mut all_ok = true;
                for l in 0..h.num_levels() {
                    let lv = h.level(l);
                    let shift_lines = period_bytes / lv.line_bytes();
                    let detail = lv.debug_mismatch(&s.lines[l], shift_lines);
                    if let Some(d) = detail {
                        all_ok = false;
                        eprintln!("i={i}: level {l}: {d}");
                    }
                }
                if all_ok {
                    eprintln!("i={i}: MATCH");
                    return;
                }
                if i > capacity + 6 * period {
                    eprintln!("giving up at i={i}");
                    return;
                }
            }
            take_snapshot(&h, &mut s);
            have = true;
        }
    }
}
