//! Write-allocate evasion case study (paper §III, Fig. 4): run the
//! store-only benchmark through the cache/memory simulator across core
//! counts and plot the memory-traffic ratio as an ASCII chart.
//!
//! ```sh
//! cargo run --release --example wa_evasion
//! ```

use memhier::{store_traffic_ratio, StoreKind};

fn spark(ratio: f64) -> String {
    // 1.0 → empty bar, 2.0 → full bar of 40 chars.
    let frac = ((ratio - 1.0).clamp(0.0, 1.0) * 40.0).round() as usize;
    format!("[{}{}]", "█".repeat(frac), " ".repeat(40 - frac))
}

fn main() {
    println!("Ratio of memory traffic to stored data volume (1.0 = perfect WA evasion, 2.0 = full write-allocate)\n");
    for machine in uarch::all_machines() {
        println!(
            "--- {} ({} cores/socket) ---",
            machine.arch.chip(),
            machine.cores
        );
        let counts: Vec<u32> = (0..)
            .map(|i| 1 << i)
            .take_while(|&n| n < machine.cores)
            .chain([machine.cores / 4, machine.cores / 2, machine.cores])
            .filter(|&n| n >= 1)
            .collect::<std::collections::BTreeSet<u32>>()
            .into_iter()
            .collect();

        for kind in [StoreKind::Standard, StoreKind::NonTemporal] {
            if kind == StoreKind::NonTemporal && machine.isa != isa::Isa::X86 {
                continue; // the paper shows NT variants for the x86 machines
            }
            let label = match kind {
                StoreKind::Standard => "standard stores",
                StoreKind::NonTemporal => "NT stores     ",
            };
            println!("  {label}");
            for &n in &counts {
                let p = store_traffic_ratio(&machine, n, kind);
                println!("    {:>3} cores  {}  {:.3}", n, spark(p.ratio), p.ratio);
            }
        }
        // One-line verdict per machine, matching the paper's findings.
        let full = store_traffic_ratio(&machine, machine.cores, StoreKind::Standard).ratio;
        let verdict = match machine.arch {
            uarch::Arch::NeoverseV2 => "automatic cache-line claim: next-to-optimal WA evasion".to_string(),
            uarch::Arch::GoldenCove => format!(
                "SpecI2M removes ≤25% of WA traffic, and only near bandwidth saturation (full-socket ratio {full:.2})"
            ),
            uarch::Arch::Zen4 => "no automatic mechanism — NT stores are the only (but perfect) WA evasion".to_string(),
        };
        println!("  → {verdict}\n");
    }
}
