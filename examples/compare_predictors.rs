//! Head-to-head of the two predictors against the simulated hardware over
//! a slice of the validation corpus — a miniature Fig. 3.
//!
//! ```sh
//! cargo run --release --example compare_predictors [GCS|SPR|Genoa]
//! ```

fn main() {
    let want = std::env::args().nth(1);
    let machines: Vec<uarch::Machine> = uarch::all_machines()
        .into_iter()
        .filter(|m| {
            want.as_deref()
                .is_none_or(|w| m.arch.chip().eq_ignore_ascii_case(w))
        })
        .collect();
    if machines.is_empty() {
        eprintln!("unknown machine; use GCS, SPR, or Genoa");
        std::process::exit(2);
    }

    for machine in machines {
        println!("=== {} ===", machine.arch.label());
        println!(
            "{:<44} {:>8} {:>8} {:>8} {:>9} {:>9}",
            "variant", "sim", "OSACA", "MCA", "RPE(OSA)", "RPE(MCA)"
        );
        let mut osaca_rpes = Vec::new();
        let mut mca_rpes = Vec::new();
        for v in kernels::variants_for(machine.arch) {
            // Keep the demo readable: -O3 only.
            if v.opt != kernels::OptLevel::O3 {
                continue;
            }
            let k = kernels::generate_kernel(&v, &machine);
            let sim = exec::cycles_per_iteration(&machine, &k);
            let osaca = incore::analyze(&machine, &k).prediction;
            let mca = mca::predict(&machine, &k).cycles_per_iter;
            let ro = (sim - osaca) / sim;
            let rm = (sim - mca) / sim;
            osaca_rpes.push(ro);
            mca_rpes.push(rm);
            println!(
                "{:<44} {:>8.2} {:>8.2} {:>8.2} {:>+8.1}% {:>+8.1}%",
                format!("{} / {}", v.kernel.name(), v.compiler.name()),
                sim,
                osaca,
                mca,
                ro * 100.0,
                rm * 100.0
            );
        }
        let optimistic = |rs: &[f64]| rs.iter().filter(|r| **r >= 0.0).count() * 100 / rs.len();
        println!(
            "→ optimistic predictions: OSACA {}% (a lower bound should be ~100%), MCA {}%\n",
            optimistic(&osaca_rpes),
            optimistic(&mca_rpes)
        );
    }
}
