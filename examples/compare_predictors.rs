//! Head-to-head of the predictors against the simulated hardware over a
//! slice of the validation corpus — a miniature Fig. 3, driven entirely
//! through the unified `uarch::Predictor` trait: add a backend to the
//! `predictors` vector and it shows up in every column and summary.
//!
//! ```sh
//! cargo run --release --example compare_predictors [GCS|SPR|Genoa]
//! ```

use uarch::Predictor;

fn main() {
    let want = std::env::args().nth(1);
    let machines: Vec<uarch::Machine> = uarch::all_machines()
        .into_iter()
        .filter(|m| {
            want.as_deref()
                .is_none_or(|w| m.arch.chip().eq_ignore_ascii_case(w))
        })
        .collect();
    if machines.is_empty() {
        eprintln!("unknown machine; use GCS, SPR, or Genoa");
        std::process::exit(2);
    }

    let predictors: Vec<Box<dyn Predictor>> = vec![
        Box::new(incore::InCoreModel::new()),
        Box::new(mca::McaBaseline),
    ];
    let reference = exec::CoreSimulator::default();

    for machine in machines {
        println!("=== {} ===", machine.arch.label());
        print!("{:<44} {:>8}", "variant", reference.name());
        for p in &predictors {
            print!(" {:>8} {:>9}", p.name(), format!("RPE({})", p.name()));
        }
        println!();
        let mut rpes: Vec<Vec<f64>> = vec![Vec::new(); predictors.len()];
        for v in kernels::variants_for(machine.arch) {
            // Keep the demo readable: -O3 only.
            if v.opt != kernels::OptLevel::O3 {
                continue;
            }
            let k = kernels::generate_kernel(&v, &machine);
            let sim = reference.predict(&machine, &k).cycles_per_iter;
            print!(
                "{:<44} {:>8.2}",
                format!("{} / {}", v.kernel.name(), v.compiler.name()),
                sim
            );
            for (p, acc) in predictors.iter().zip(&mut rpes) {
                let cy = p.predict(&machine, &k).cycles_per_iter;
                let r = engine::rpe(sim, cy);
                acc.push(r);
                print!(" {:>8.2} {:>+8.1}%", cy, r * 100.0);
            }
            println!();
        }
        print!("→ optimistic predictions:");
        for (p, acc) in predictors.iter().zip(&rpes) {
            print!(
                " {} {:.0}%",
                p.name(),
                engine::summarize(acc).optimistic_fraction * 100.0
            );
        }
        println!(" (a lower bound should be ~100%)\n");
    }
}
