//! Full-pipeline stencil study: generate the Jacobi 3D 7-point kernel the
//! way each compiler would, run the in-core model and the simulator, then
//! compose the ECM model and Roofline ceilings — the workflow the paper
//! motivates for stencil codes.
//!
//! ```sh
//! cargo run --release --example stencil_analysis
//! ```

use kernels::{gen_cfg, generate_kernel, Compiler, OptLevel, StreamKernel, Variant};

fn main() {
    let kernel = StreamKernel::Jacobi3D7;
    let vol = kernels::volume::volume(kernel);
    println!(
        "kernel: {} — {} B loaded, {} B stored, {} flops per update\n",
        kernel.name(),
        vol.load_bytes,
        vol.store_bytes,
        vol.flops
    );

    for machine in uarch::all_machines() {
        println!("=== {} ({}) ===", machine.arch.label(), machine.part);
        println!(
            "{:<22} {:>9} {:>9} {:>9} {:>9}",
            "variant", "model", "sim", "RPE", "Gflop/s*"
        );
        for compiler in kernels::Compiler::for_arch(machine.arch) {
            for opt in [OptLevel::O1, OptLevel::O3] {
                let v = Variant {
                    kernel,
                    compiler: *compiler,
                    opt,
                    arch: machine.arch,
                };
                let k = generate_kernel(&v, &machine);
                let a = incore::analyze(&machine, &k);
                let sim = exec::cycles_per_iteration(&machine, &k);
                // Scalar updates per assembly-loop iteration.
                let cfg = gen_cfg(&v, &machine);
                let elems = if cfg.width == 0 {
                    1.0
                } else {
                    cfg.width as f64 / 64.0
                };
                let updates = elems * cfg.unroll.max(1) as f64;
                let ext = k.dominant_ext();
                let f = node::freq::sustained_freq_ghz(&machine, ext, 1);
                let gflops = updates * vol.flops as f64 / sim * f;
                println!(
                    "{:<22} {:>9.2} {:>9.2} {:>8.1}% {:>9.2}",
                    format!("{} {}", compiler.name(), opt.name()),
                    a.prediction,
                    sim,
                    (sim - a.prediction) / sim * 100.0,
                    gflops
                );
            }
        }

        // ECM composition for the best variant (first compiler at -O3),
        // with the machine's write-allocate behaviour folded in: GCS
        // evades WA automatically, the x86 machines pay it.
        let wa = match machine.arch {
            uarch::Arch::NeoverseV2 => 1.0,
            _ => 2.0,
        };
        let v = Variant {
            kernel,
            compiler: Compiler::for_arch(machine.arch)[0],
            opt: OptLevel::O3,
            arch: machine.arch,
        };
        let ecm = node::ecm_for_kernel(&machine, &v, wa);
        println!(
            "ECM [cy/CL]: T_core {:.1} | L1-L2 {:.1} | L2-L3 {:.1} | L3-Mem {:.1} → in-memory {:.1}, saturates at {} cores",
            ecm.t_core, ecm.t_l1_l2, ecm.t_l2_l3, ecm.t_l3_mem, ecm.t_mem, ecm.saturation_cores()
        );

        // Chip-level Roofline at this kernel's intensity.
        let roof = node::roofline_gflops(&machine, vol.intensity(wa));
        println!(
            "Roofline: I = {:.3} flop/B → {:.0} Gflop/s ({}), peak {:.0}, balance {:.2} flop/B\n",
            roof.intensity,
            roof.p_gflops,
            if roof.memory_bound {
                "memory-bound"
            } else {
                "compute-bound"
            },
            roof.p_peak_gflops,
            node::roofline::machine_balance(&machine)
        );
    }
    println!("* single-core Gflop/s at the sustained single-core frequency, L1-resident data");
}
