//! Quickstart: analyze an assembly loop kernel on all three machine models.
//!
//! ```sh
//! cargo run --release --example quickstart [path/to/kernel.s]
//! ```
//!
//! Without an argument, a built-in AVX-512 STREAM-triad loop (x86) and its
//! NEON counterpart are analyzed. With a path, the file is parsed and
//! analyzed on every machine whose ISA matches.

use incore::Report;

const X86_TRIAD: &str = r#"
# a[i] = b[i] + s * c[i]   (AVX-512)
.L2:
    vmovupd   (%rdx,%rax), %zmm1
    vmovupd   (%rsi,%rax), %zmm2
    vfmadd231pd %zmm15, %zmm1, %zmm2
    vmovupd   %zmm2, (%rdi,%rax)
    addq      $64, %rax
    cmpq      %rcx, %rax
    jne       .L2
"#;

const A64_TRIAD: &str = r#"
// a[i] = b[i] + s * c[i]   (NEON)
.L2:
    ldr   q1, [x2, x4]
    ldr   q2, [x1, x4]
    fmla  v2.2d, v1.2d, v28.2d
    str   q2, [x0, x4]
    add   x4, x4, #16
    cmp   x4, x5
    b.ne  .L2
"#;

fn main() {
    let arg = std::env::args().nth(1);
    let user = arg.map(|p| std::fs::read_to_string(&p).expect("read input file"));

    for machine in uarch::all_machines() {
        let src = match (&user, machine.isa) {
            (Some(s), _) => s.clone(),
            (None, isa::Isa::X86) => X86_TRIAD.to_string(),
            (None, isa::Isa::AArch64) => A64_TRIAD.to_string(),
        };
        let kernel = match isa::parse_kernel(&src, machine.isa) {
            Ok(k) if !k.instructions.is_empty() => k,
            _ => continue, // wrong ISA for this machine
        };
        let analysis = incore::analyze(&machine, &kernel);
        println!("{}", Report::new(&machine, &analysis).render());

        // Cross-check the optimistic bound against the cycle-level
        // simulator ("the hardware").
        let measured = exec::cycles_per_iteration(&machine, &kernel);
        println!(
            "simulated measurement: {measured:.2} cy/iter  (model lower bound {:.2}, RPE {:+.1}%)\n",
            analysis.prediction,
            (measured - analysis.prediction) / measured * 100.0
        );
    }
}
